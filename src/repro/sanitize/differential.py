"""The differential pass-sanitizer.

Static checks prove properties; this module *observes* them.  In
differential mode the pass manager (and the pipeline's stage driver)
snapshots a function before each pass, runs both versions through the
reference interpreter on auto-generated argument/memory fixtures, and
emits an error diagnostic **naming the offending pass** the moment
observable behaviour diverges — return value, memory written through
pointer arguments, or global contents.  A future miscompile therefore
surfaces as a pinpointed lint finding instead of a wrong number three
stages later.

Fixture generation is deliberately deterministic (no randomness): pointer
parameters get small filled buffers, integer parameters get a spread of
trip-count-ish values, and one fixture deliberately misaligns the buffers
to drive the run-time-check fallback path.  A fixture whose *baseline*
run faults is inconclusive and skipped; a fixture where only the
transformed function faults is a divergence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError, SimulationError
from repro.ir.function import Function, Module
from repro.ir.rtl import Load, Reg, Store
from repro.sanitize.diagnostics import DiagnosticSink, Location

BUFFER_BYTES = 96
MAX_FIXTURE_STEPS = 2_000_000

# (alignment nudge for pointer buffers, integer argument value)
_DEFAULT_VARIANTS: Tuple[Tuple[int, int], ...] = (
    (0, 8),   # aligned, trip count a multiple of every unroll factor
    (0, 5),   # aligned, odd trip count: exercises remainder handling
    (2, 6),   # misaligned buffers: exercises the fallback loop
)


def clone_function(func: Function) -> Function:
    """Deep-copy ``func``: fresh blocks and instructions, shared regs."""
    copy = Function(func.name, list(func.params))
    for block in func.blocks:
        copy.add_block(block.label, [i.clone() for i in block.instrs])
    copy.frame_slots = dict(func.frame_slots)
    copy._next_reg = func._next_reg
    copy._next_label = func._next_label
    if hasattr(func, "param_kinds"):
        copy.param_kinds = list(func.param_kinds)
    return copy


def param_kinds(func: Function) -> List[str]:
    """``'ptr'``/``'int'`` per parameter.

    The MiniC front end records the declared kinds on the function
    (``param_kinds``); for hand-built IR we fall back to a flow-
    insensitive taint pass: a parameter whose value can flow into a
    load/store base register is pointer-like.
    """
    declared = getattr(func, "param_kinds", None)
    if declared is not None and len(declared) == len(func.params):
        return list(declared)

    derives: Dict[int, set] = {
        p.index: {p.index} for p in func.params
    }
    changed = True
    while changed:
        changed = False
        for instr in func.iter_instrs():
            sources: set = set()
            for reg in instr.uses():
                sources |= derives.get(reg.index, set())
            if not sources:
                continue
            for reg in instr.defs():
                known = derives.setdefault(reg.index, set())
                if not sources <= known:
                    known |= sources
                    changed = True
    pointer_params: set = set()
    for instr in func.iter_instrs():
        if isinstance(instr, (Load, Store)):
            pointer_params |= derives.get(instr.base.index, set())
    return [
        "ptr" if p.index in pointer_params else "int"
        for p in func.params
    ]


@dataclass
class Fixture:
    """One auto-generated call: argument kinds plus variant knobs."""

    kinds: List[str]
    offset: int
    int_value: int

    def describe(self) -> str:
        args = ", ".join(
            f"buf(offset={self.offset})" if kind == "ptr"
            else str(self.int_value)
            for kind in self.kinds
        )
        return f"({args})"


def make_fixtures(
    func: Function,
    variants: Sequence[Tuple[int, int]] = _DEFAULT_VARIANTS,
) -> List[Fixture]:
    kinds = param_kinds(func)
    return [
        Fixture(kinds, offset, int_value)
        for offset, int_value in variants
    ]


@dataclass
class Outcome:
    """Observable behaviour of one fixture run."""

    status: str                       # 'ok' | exception class name
    value: Optional[int] = None
    buffers: Tuple[bytes, ...] = ()
    globals_: Tuple[Tuple[str, bytes], ...] = ()

    def diverges_from(self, other: "Outcome") -> Optional[str]:
        """Human description of the first difference, or ``None``."""
        if self.status != other.status:
            return f"status {self.status} vs {other.status}"
        if self.value != other.value:
            return f"return value {self.value} vs {other.value}"
        for position, (mine, theirs) in enumerate(
            zip(self.buffers, other.buffers)
        ):
            if mine != theirs:
                byte = next(
                    i for i, (x, y) in enumerate(zip(mine, theirs))
                    if x != y
                )
                return (
                    f"pointer argument #{position} differs at byte "
                    f"{byte} ({mine[byte]:#04x} vs {theirs[byte]:#04x})"
                )
        for (name, mine), (_, theirs) in zip(
            self.globals_, other.globals_
        ):
            if mine != theirs:
                return f"global {name!r} contents differ"
        return None


def run_fixture(
    module: Module,
    func_name: str,
    machine,
    fixture: Fixture,
    trace_hook=None,
) -> Outcome:
    """Execute one fixture in a fresh interpreter; never raises for
    simulation faults (they become the outcome's status).

    ``trace_hook`` is forwarded to the interpreter (one call per
    executed Load/Store); the alias-consistency checker uses it to
    audit the static engine's claims against concrete addresses.
    """
    from repro.sim.interp import Interpreter

    interp = Interpreter(
        module, machine, simulate_caches=False,
        max_steps=MAX_FIXTURE_STEPS,
        trace_hook=trace_hook,
    )
    buffers: List[Tuple[int, int]] = []  # (address, size)
    args: List[int] = []
    for position, kind in enumerate(fixture.kinds):
        if kind == "ptr":
            addr = interp.memory.alloc(
                BUFFER_BYTES, align=8, offset=fixture.offset
            )
            fill = bytes(
                (13 + 7 * position + 3 * i) & 0xFF
                for i in range(BUFFER_BYTES)
            )
            interp.memory.write_bytes(addr, fill)
            buffers.append((addr, BUFFER_BYTES))
            args.append(addr)
        else:
            args.append(fixture.int_value)
    try:
        value = interp.call(func_name, *args)
    except SimulationError as exc:
        return Outcome(status=type(exc).__name__)
    except ReproError as exc:
        return Outcome(status=type(exc).__name__)
    return Outcome(
        status="ok",
        value=value,
        buffers=tuple(
            interp.memory.read_bytes(addr, size)
            for addr, size in buffers
        ),
        globals_=tuple(
            (name, interp.memory.read_bytes(
                interp.global_addrs[name], var.size
            ))
            for name, var in module.globals.items()
        ),
    )


def _module_with(module: Module, func: Function) -> Module:
    """A view of ``module`` with ``func`` substituted in."""
    view = Module(module.name)
    view.functions = dict(module.functions)
    view.functions[func.name] = func
    view.globals = module.globals
    return view


class DifferentialSanitizer:
    """Snapshot/compare driver used by the pass manager and pipeline."""

    def __init__(
        self,
        module: Module,
        machine,
        sink: DiagnosticSink,
        variants: Sequence[Tuple[int, int]] = _DEFAULT_VARIANTS,
    ):
        self.module = module
        self.machine = machine
        self.sink = sink
        self.variants = variants
        # Fixtures and baselines are keyed by function name; fixtures
        # are derived once from the *first* snapshot so both versions
        # run identical inputs.
        self._fixtures: Dict[str, List[Fixture]] = {}

    def snapshot(self, func: Function) -> Function:
        if func.name not in self._fixtures:
            self._fixtures[func.name] = make_fixtures(
                func, self.variants
            )
        return clone_function(func)

    def compare(
        self, snapshot: Function, func: Function, pass_name: str
    ) -> bool:
        """Run both versions; emit a diagnostic on divergence.

        Returns ``True`` when behaviour matched on every conclusive
        fixture.
        """
        agreed = True
        before_module = _module_with(self.module, snapshot)
        after_module = _module_with(self.module, func)
        for fixture in self._fixtures[func.name]:
            before = run_fixture(
                before_module, func.name, self.machine, fixture
            )
            if before.status != "ok":
                continue  # inconclusive: no baseline behaviour
            after = run_fixture(
                after_module, func.name, self.machine, fixture
            )
            difference = before.diverges_from(after)
            if difference is not None:
                agreed = False
                self.sink.error(
                    "differential",
                    f"pass changed observable behaviour on fixture "
                    f"{fixture.describe()}: {difference}",
                    location=Location(func.name),
                    provenance=pass_name,
                    hint="the named pass miscompiled this function; "
                         "re-run with the pass disabled to confirm",
                )
        return agreed
