"""Checker registry.

A checker is a callable ``check(func, module, machine, sink) -> None``
that appends :class:`repro.sanitize.diagnostics.Diagnostic` values to the
sink.  Checkers self-register under a stable id via the :func:`checker`
decorator; the lint CLI selects them by id (``--checks a,b,c``).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import ReproError
from repro.ir.function import Function, Module
from repro.sanitize.diagnostics import DiagnosticSink

CheckerFn = Callable[[Function, Optional[Module], object, DiagnosticSink],
                     None]

_CHECKERS: Dict[str, CheckerFn] = {}


def checker(check_id: str, description: str) -> Callable[[CheckerFn],
                                                         CheckerFn]:
    """Register ``fn`` as the checker behind ``check_id``."""

    def decorate(fn: CheckerFn) -> CheckerFn:
        if check_id in _CHECKERS:
            raise ReproError(f"duplicate checker id {check_id!r}")
        fn.check_id = check_id
        fn.description = description
        _CHECKERS[check_id] = fn
        return fn

    return decorate


def checker_ids() -> List[str]:
    """All registered checker ids, sorted."""
    return sorted(_CHECKERS)


def get_checkers(names: Optional[Sequence[str]] = None) -> List[CheckerFn]:
    """Resolve ``names`` (default: all) to checker callables."""
    if names is None:
        return [_CHECKERS[check_id] for check_id in checker_ids()]
    resolved: List[CheckerFn] = []
    for name in names:
        try:
            resolved.append(_CHECKERS[name])
        except KeyError:
            raise ReproError(
                f"unknown checker {name!r}; known: "
                f"{', '.join(checker_ids())}"
            ) from None
    return resolved


def run_checkers(
    module: Module,
    machine,
    checks: Optional[Sequence[str]] = None,
    sink: Optional[DiagnosticSink] = None,
) -> DiagnosticSink:
    """Run the selected checkers over every function of ``module``."""
    sink = sink if sink is not None else DiagnosticSink()
    selected = get_checkers(checks)
    for func in module:
        for check in selected:
            check(func, module, machine, sink)
    return sink
