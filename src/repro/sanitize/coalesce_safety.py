"""``coalesce-safety``: re-audit every widened access after the fact.

The coalescer's own hazard analysis (:mod:`repro.coalesce.hazards`,
Figure 4) decides what is safe *before* transforming.  This checker is an
independent re-implementation of the same rules applied *after* the
transformation, used as a cross-check: if the two ever disagree, one of
them has a bug and the disagreement surfaces as a first-class diagnostic
instead of a silent miscompile.

An access is audited when it carries the coalescer's ``coalesced`` note
or matches the widening signature (a wide load feeding :class:`Extract`
instructions, a wide store fed by an :class:`Insert` chain).  For each
audited access:

* **alignment** (Figure 5, §2.2) — the wide address must be provably
  aligned from the base/offset algebra (frame-slot or global alignment
  propagated through the address computation, loop increments that are
  multiples of the wide width) *or* guarded by a dominating run-time
  ``(base + start) & (wide - 1) == 0`` test whose aligned arm dominates
  the access;
* **same-partition hazards** (Figure 4) — no overlapping same-base store
  between a wide load and its extracts; no overlapping same-base load or
  store between an insert chain and its wide store;
* **base invariance** — the base register must not be redefined between
  the group's first and last memory operation;
* **cross-partition traffic** — memory operations on another base inside
  the group's span need a run-time overlap check; if the surrounding loop
  is entered unconditionally (no guard chain at all) this is an error,
  otherwise a note pointing at the required check.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.cfgutil import predecessors, reachable_labels
from repro.analysis.dominators import dominates, immediate_dominators
from repro.analysis.loops import Loop, find_loops
from repro.analysis.reaching import DefSite, ReachingDefs, \
    reaching_definitions
from repro.ir.function import BasicBlock, Function, Module
from repro.ir.rtl import (
    BinOp,
    CondJump,
    Const,
    Extract,
    FrameAddr,
    GlobalAddr,
    Insert,
    Instr,
    Jump,
    Load,
    Mov,
    Reg,
    Store,
)
from repro.sanitize.diagnostics import DiagnosticSink, Location
from repro.sanitize.registry import checker

_MAX_DEPTH = 12


def _instr_at(func: Function, site: DefSite) -> Instr:
    label, index = site
    return func.block(label).instrs[index]


# ---------------------------------------------------------------------------
# Congruence of a register value modulo the wide width
# ---------------------------------------------------------------------------

def _congruence(
    func: Function,
    module: Optional[Module],
    reaching: ReachingDefs,
    label: str,
    index: int,
    reg_index: int,
    width: int,
    visited: Optional[Set[DefSite]] = None,
    depth: int = 0,
) -> Optional[int]:
    """``value % width`` of ``reg_index`` just before ``label:index``,
    or ``None`` when the algebra cannot prove a residue."""
    if depth > _MAX_DEPTH:
        return None
    visited = visited if visited is not None else set()
    sites = reaching.reaching_at(label, index, reg_index)
    if not sites:
        return None
    residues: Set[int] = set()
    for site in sites:
        if site in visited:
            # A cyclic definition (the IV increment reaching itself)
            # contributes the same residue as the cycle entry; skip it.
            continue
        residue = _site_congruence(
            func, module, reaching, site, reg_index, width,
            visited | {site}, depth + 1,
        )
        if residue is None:
            return None
        residues.add(residue)
    if len(residues) == 1:
        return residues.pop()
    return None


def _site_congruence(
    func: Function,
    module: Optional[Module],
    reaching: ReachingDefs,
    site: DefSite,
    reg_index: int,
    width: int,
    visited: Set[DefSite],
    depth: int,
) -> Optional[int]:
    instr = _instr_at(func, site)
    label, index = site

    def operand(value) -> Optional[int]:
        if isinstance(value, Const):
            return value.value % width
        if isinstance(value, Reg):
            return _congruence(
                func, module, reaching, label, index, value.index,
                width, visited, depth,
            )
        return None

    if isinstance(instr, Mov):
        return operand(instr.src)
    if isinstance(instr, FrameAddr):
        _, align = func.frame_slots.get(instr.slot, (0, 1))
        return 0 if align % width == 0 else None
    if isinstance(instr, GlobalAddr):
        if module is None or instr.name not in module.globals:
            return None
        align = module.globals[instr.name].align
        return 0 if align % width == 0 else None
    if isinstance(instr, BinOp):
        if instr.op in ("add", "sub"):
            a, b = operand(instr.a), operand(instr.b)
            if a is None or b is None:
                return None
            return (a + b if instr.op == "add" else a - b) % width
        if instr.op == "mul":
            for side in (instr.a, instr.b):
                if isinstance(side, Const) and side.value % width == 0:
                    return 0
            return None
        if instr.op == "shl" and isinstance(instr.b, Const):
            if (1 << instr.b.value) % width == 0:
                return 0
            return None
        if instr.op == "and" and isinstance(instr.b, Const):
            if instr.b.value % width == 0:
                return 0
            return None
    return None


# ---------------------------------------------------------------------------
# Run-time alignment guards
# ---------------------------------------------------------------------------

def _base_stable(
    func: Function,
    reaching: ReachingDefs,
    guard: Tuple[str, int],
    access: Tuple[str, int],
    base_index: int,
    width: int,
) -> bool:
    """The base register's residue mod ``width`` is the same at the guard
    and at the access: every definition reaching the access either also
    reached the guard or is a self-increment by a multiple of ``width``."""
    guard_sites = reaching.reaching_at(guard[0], guard[1], base_index)
    access_sites = reaching.reaching_at(access[0], access[1], base_index)
    for site in access_sites:
        if site in guard_sites:
            continue
        instr = _instr_at(func, site)
        if (
            isinstance(instr, BinOp)
            and instr.op in ("add", "sub")
            and instr.dst.index == base_index
            and isinstance(instr.a, Reg)
            and instr.a.index == base_index
            and isinstance(instr.b, Const)
            and instr.b.value % width == 0
        ):
            continue
        return False
    return True


def _has_indirect_guard(
    func: Function,
    idom: Dict[str, Optional[str]],
    access_label: str,
) -> bool:
    """A gather's wide load is aligned by arithmetic the congruence
    walker cannot see: table base aligned (checked or discharged), the
    chunk's lead index divisible by the element count, and the index
    stream adjacent.  The audit accepts the *adjacency probe* branch as
    the guard — it is the chain's last and never-elidable link, so its
    pass arm dominating the access puts the whole chain upstream."""
    walk = idom.get(access_label)
    while walk is not None:
        block = func.block(walk)
        term = block.instrs[-1] if block.instrs else None
        if isinstance(term, CondJump):
            note = term.notes.get("runtime_check") or {}
            if note.get("kind") == "index-adjacency" and dominates(
                idom, term.iffalse, access_label
            ):
                return True
        walk = idom.get(walk)
    return False


def _has_alignment_guard(
    func: Function,
    reaching: ReachingDefs,
    idom: Dict[str, Optional[str]],
    access_label: str,
    access_index: int,
    base_index: int,
    disp: int,
    width: int,
) -> bool:
    """Search the dominator chain for a ``(base + c) & (width-1) == 0``
    test whose aligned arm dominates the access."""
    walk = idom.get(access_label)
    while walk is not None:
        block = func.block(walk)
        term = block.instrs[-1] if block.instrs else None
        if (
            isinstance(term, CondJump)
            and term.rel in ("ne", "eq")
            and isinstance(term.a, Reg)
            and isinstance(term.b, Const)
            and term.b.value == 0
            and term.iftrue != term.iffalse
        ):
            aligned_arm = (
                term.iffalse if term.rel == "ne" else term.iftrue
            )
            if dominates(idom, aligned_arm, access_label):
                offset = _guarded_offset(
                    func, reaching, walk, len(block.instrs) - 1,
                    term.a.index, base_index, width,
                )
                if offset is not None and (disp - offset) % width == 0:
                    if _base_stable(
                        func, reaching,
                        (walk, len(block.instrs) - 1),
                        (access_label, access_index),
                        base_index, width,
                    ):
                        return True
        walk = idom.get(walk)
    return False


def _guarded_offset(
    func: Function,
    reaching: ReachingDefs,
    label: str,
    index: int,
    tested_index: int,
    base_index: int,
    width: int,
) -> Optional[int]:
    """If the tested register is ``(base + c) & mask`` with a mask
    covering the low ``log2(width)`` bits, return ``c``; else ``None``."""
    site = reaching.unique_def_at(label, index, tested_index)
    if site is None:
        return None
    instr = _instr_at(func, site)
    if not (
        isinstance(instr, BinOp)
        and instr.op == "and"
        and isinstance(instr.a, Reg)
        and isinstance(instr.b, Const)
    ):
        return None
    granularity = instr.b.value + 1
    if granularity < width or granularity & (granularity - 1):
        return None
    addr = instr.a
    if addr.index == base_index:
        return 0
    addr_site = reaching.unique_def_at(site[0], site[1], addr.index)
    if addr_site is None:
        return None
    addr_def = _instr_at(func, addr_site)
    if (
        isinstance(addr_def, BinOp)
        and addr_def.op == "add"
        and isinstance(addr_def.a, Reg)
        and addr_def.a.index == base_index
        and isinstance(addr_def.b, Const)
    ):
        return addr_def.b.value
    if (
        isinstance(addr_def, Mov)
        and isinstance(addr_def.src, Reg)
        and addr_def.src.index == base_index
    ):
        return 0
    return None


# ---------------------------------------------------------------------------
# Widened-access discovery
# ---------------------------------------------------------------------------

class _Group:
    """One widened access and its companion field operations."""

    __slots__ = ("kind", "access_index", "first", "last", "instr")

    def __init__(self, kind: str, access_index: int, first: int,
                 last: int, instr: Instr):
        self.kind = kind                # 'load' | 'store'
        self.access_index = access_index
        self.first = first              # first index of the group span
        self.last = last                # last index of the group span
        self.instr = instr


def _find_groups(block: BasicBlock) -> List[_Group]:
    groups: List[_Group] = []
    instrs = block.instrs
    for index, instr in enumerate(instrs):
        if isinstance(instr, Load) and not instr.unaligned \
                and instr.width >= 2:
            extracts: List[int] = []
            for later in range(index + 1, len(instrs)):
                other = instrs[later]
                if isinstance(other, Extract) \
                        and other.src.index == instr.dst.index:
                    extracts.append(later)
                if any(r.index == instr.dst.index
                       for r in other.defs()):
                    break
            if extracts or instr.notes.get("coalesced"):
                groups.append(_Group(
                    "load", index, index,
                    max(extracts) if extracts else index, instr,
                ))
        elif isinstance(instr, Store) and not instr.unaligned \
                and instr.width >= 2:
            first = index
            if isinstance(instr.src, Reg):
                chain_reg = instr.src.index
                inserts: List[int] = []
                for earlier in range(index - 1, -1, -1):
                    other = instrs[earlier]
                    if isinstance(other, Insert) \
                            and other.dst.index == chain_reg:
                        inserts.append(earlier)
                        if isinstance(other.acc, Reg):
                            chain_reg = other.acc.index
                        else:
                            break
                if inserts:
                    first = min(inserts)
                if inserts or instr.notes.get("coalesced"):
                    groups.append(_Group(
                        "store", index, first, index, instr,
                    ))
            elif instr.notes.get("coalesced"):
                groups.append(_Group("store", index, index, index, instr))
    return groups


def _ranges_overlap(a_disp: int, a_width: int, b_disp: int,
                    b_width: int) -> bool:
    return not (a_disp + a_width <= b_disp or b_disp + b_width <= a_disp)


def _loop_of(loops: List[Loop], label: str) -> Optional[Loop]:
    for loop in loops:  # innermost first
        if loop.contains(label):
            return loop
    return None


def _loop_is_guarded(func: Function, loop: Loop) -> bool:
    """Whether any path into the loop passes a conditional branch (the
    coalescer's check chain, or any other guard)."""
    preds = predecessors(func)
    outside = [p for p in preds[loop.header] if p not in loop.blocks]
    work = list(outside)
    seen: Set[str] = set()
    while work:
        label = work.pop()
        if label in seen:
            continue
        seen.add(label)
        block = func.block(label)
        term = block.instrs[-1] if block.instrs else None
        if isinstance(term, CondJump) and term.iftrue != term.iffalse:
            return True
        work.extend(p for p in preds[label] if p not in loop.blocks)
    return False


# ---------------------------------------------------------------------------
# The checker
# ---------------------------------------------------------------------------

@checker(
    "coalesce-safety",
    "widened accesses must satisfy the Figure 4/5 safety rules",
)
def check_coalesce_safety(
    func: Function, module: Optional[Module], machine,
    sink: DiagnosticSink,
) -> None:
    reachable = reachable_labels(func)
    blocks = [b for b in func.blocks if b.label in reachable]
    if not any(
        isinstance(i, (Load, Store)) and i.width >= 2
        for b in blocks for i in b.instrs
    ):
        return

    reaching = reaching_definitions(func)
    idom = immediate_dominators(func)
    loops = find_loops(func)

    for block in blocks:
        for group in _find_groups(block):
            _audit_group(
                func, module, machine, block, group,
                reaching, idom, loops, sink,
            )


def _audit_group(
    func: Function,
    module: Optional[Module],
    machine,
    block: BasicBlock,
    group: _Group,
    reaching: ReachingDefs,
    idom: Dict[str, Optional[str]],
    loops: List[Loop],
    sink: DiagnosticSink,
) -> None:
    access = group.instr
    width = access.width
    base = access.base
    location = Location(func.name, block.label, group.access_index)
    kind = group.kind

    # -- alignment (Figure 5) ------------------------------------------------
    if access.notes.get("coalesced_shape") == "indirect":
        # A gather's base is a data-dependent address no congruence walk
        # can reach; its alignment rests on the generalized check chain,
        # witnessed by the never-elidable adjacency probe.
        if not _has_indirect_guard(func, idom, block.label):
            sink.error(
                "coalesce-safety",
                f"indirect wide {kind} of {width} bytes at "
                f"[r{base.index} + {access.disp}] is not guarded by a "
                f"dominating index-adjacency probe",
                location=location,
                hint="a coalesced gather is valid only behind the "
                     "table-alignment / index-modulus / adjacency "
                     "check chain with an original-loop fallback",
            )
        residue = None
    else:
        residue = _congruence(
            func, module, reaching, block.label, group.access_index,
            base.index, width,
        )
    if residue is not None:
        if (residue + access.disp) % width != 0:
            sink.error(
                "coalesce-safety",
                f"wide {kind} of {width} bytes at [r{base.index} + "
                f"{access.disp}] is provably misaligned (base ≡ "
                f"{residue} mod {width})",
                location=location,
                hint="an aligned access at this address traps; widen "
                     "only tiles starting at a wide-aligned "
                     "displacement",
            )
    elif access.notes.get("coalesced_shape") != "indirect" \
            and not _has_alignment_guard(
        func, reaching, idom, block.label, group.access_index,
        base.index, access.disp, width,
    ):
        sink.error(
            "coalesce-safety",
            f"wide {kind} of {width} bytes at [r{base.index} + "
            f"{access.disp}]: alignment is not provable and no "
            f"dominating run-time alignment check guards it",
            location=location,
            hint="insert a '(base + start) & (wide - 1) == 0' test in "
                 "the loop preheader branching to the original loop "
                 "on failure (Figure 5)",
        )

    # -- intra-block hazards (Figure 4) --------------------------------------
    cross_partition: List[int] = []
    for position in range(group.first, group.last + 1):
        if position == group.access_index:
            continue
        instr = block.instrs[position]

        if position != group.first and any(
            r.index == base.index for r in instr.defs()
        ):
            # The group spans several memory operations only for insert
            # chains and extract fans; the base register must hold one
            # value across the whole span.
            if kind == "store":
                sink.error(
                    "coalesce-safety",
                    f"base register r{base.index} is modified at "
                    f"instruction {position}, between the coalesced "
                    f"fields and the wide store",
                    location=location,
                    hint="the wide store must use the same base value "
                         "the narrow stores did",
                )

        if kind == "load" and isinstance(instr, Extract) \
                and instr.src.index == access.dst.index:
            continue
        if isinstance(instr, Insert):
            continue

        if kind == "load" and any(
            r.index == access.dst.index for r in instr.defs()
        ):
            sink.error(
                "coalesce-safety",
                f"coalesced wide register r{access.dst.index} is "
                f"clobbered at instruction {position} before its last "
                f"extract",
                location=location,
                hint="extracts must read the wide load's value; "
                     "a pass reordered or reused the register",
            )

        if not isinstance(instr, (Load, Store)):
            continue
        same_base = instr.base.index == base.index
        overlap = _ranges_overlap(
            access.disp, width, instr.disp, instr.width
        )
        if kind == "load" and isinstance(instr, Store):
            if same_base and overlap:
                sink.error(
                    "coalesce-safety",
                    f"store at instruction {position} writes into the "
                    f"coalesced word between the wide load and its "
                    f"extracts",
                    location=location,
                    hint="the original narrow loads after that store "
                         "read the new bytes; this widening reads "
                         "stale data (Figure 4 hazard)",
                )
            elif not same_base:
                cross_partition.append(position)
        elif kind == "store":
            if same_base and overlap:
                what = "load of" if isinstance(instr, Load) \
                    else "store into"
                sink.error(
                    "coalesce-safety",
                    f"{what} the coalesced word at instruction "
                    f"{position}, between the narrow fields and the "
                    f"delayed wide store",
                    location=location,
                    hint="delaying the store past this access reorders "
                         "memory traffic (Figure 4 hazard)",
                )
            elif not same_base:
                cross_partition.append(position)

    if cross_partition:
        loop = _loop_of(loops, block.label)
        guarded = loop is not None and _loop_is_guarded(func, loop)
        positions = ", ".join(str(p) for p in cross_partition)
        if guarded:
            sink.note(
                "coalesce-safety",
                f"cross-partition memory operation(s) at instruction(s) "
                f"{positions} inside the coalesced span rely on the "
                f"run-time overlap check guarding this loop",
                location=location,
            )
        else:
            sink.error(
                "coalesce-safety",
                f"cross-partition memory operation(s) at instruction(s) "
                f"{positions} inside the coalesced span, and the loop "
                f"is entered unconditionally — no run-time overlap "
                f"check can have executed",
                location=location,
                hint="coalescing across a possible alias requires the "
                     "DoAliasDetection preheader test (§2.2)",
            )
