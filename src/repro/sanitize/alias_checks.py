"""Checkers auditing the static alias engine (``repro.analysis.alias``).

Two checkers guard the engine's two failure modes:

* ``alias-consistency`` — an *unsound engine*.  The pipeline tags every
  load/store whose base the engine resolved to a named object (frame
  slot or global) with ``notes['memdep_root']``; those whole-object
  claims are what no-alias verdicts between distinct roots rest on.
  This checker re-executes the function on the differential sanitizer's
  fixtures with an interpreter trace hook and reports any annotated
  access whose concrete address leaves the claimed object's storage.
  It audits whatever the compiled module carries — modules compiled
  without ``sanitize``/``differential`` have no annotations and pass
  vacuously.

* ``redundant-runtime-check`` — a *wasteful pipeline*.  Every emitted
  Figure 5 check branch carries ``notes['runtime_check']`` with the
  engine's verdict; ``dischargeable: True`` means the engine proved the
  check unnecessary but it was emitted anyway (check elision disabled,
  e.g. under fault injection — or a pipeline bug dropping the elision).
  This checker flags those branches.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.ir.function import Function, Module
from repro.ir.rtl import CondJump, Instr, Load, Store
from repro.sanitize.diagnostics import DiagnosticSink, Location
from repro.sanitize.registry import checker

#: Fixture variants for the consistency audit: the differential
#: sanitizer's defaults plus large trip counts, because tiled kernels
#: (blockstage-style) never enter their outer loop — and so never touch
#: an annotated reference — unless ``n`` covers at least one whole tile.
#: (alignment nudge, integer argument value); buffers are
#: ``differential.BUFFER_BYTES`` = 96 bytes.
#: A misaligned large variant drives the run-time-check fallback loop,
#: whose (RMW-widened) references carry their own annotations.
_AUDIT_VARIANTS = (
    (0, 8),
    (0, 5),
    (2, 6),
    (0, 64),
    (0, 96),
    (2, 96),
)


def _locate(func: Function, target: Instr) -> Location:
    for block in func.blocks:
        for index, instr in enumerate(block.instrs):
            if instr is target:
                return Location(func.name, block.label, index)
    return Location(func.name)


def _annotated_refs(func: Function) -> List[Instr]:
    return [
        instr
        for block in func.blocks
        for instr in block.instrs
        if isinstance(instr, (Load, Store))
        and "memdep_root" in instr.notes
    ]


@checker(
    "alias-consistency",
    "no-alias claims of the static alias engine hold on concrete runs",
)
def check_alias_consistency(
    func: Function,
    module: Optional[Module],
    machine,
    sink: DiagnosticSink,
) -> None:
    if module is None or not _annotated_refs(func):
        return
    from repro.sanitize.differential import make_fixtures, run_fixture

    # One finding per instruction: (instr, observed addr, lo, hi, note).
    violations: Dict[int, Tuple[Instr, int, int, int, Dict]] = {}

    def audit(name: str, instr, addr: int, slots, global_addrs) -> None:
        if name != func.name or id(instr) in violations:
            return
        note = instr.notes.get("memdep_root")
        if note is None:
            return
        if note["kind"] == "frame":
            base = slots.get(note["name"])
            size = func.frame_slots.get(note["name"], (0, 0))[0]
        else:  # 'global'
            base = global_addrs.get(note["name"])
            var = module.globals.get(note["name"])
            size = var.size if var is not None else 0
        if base is None or not size:
            return
        # Unaligned wide loads (ldq_u-style) legitimately read the whole
        # aligned word *containing* the addressed byte, which may start
        # before a mid-word object — audit just the addressed byte.
        # Widened instructions keep the pre-lowering width in the note.
        span = 1 if instr.unaligned else min(
            instr.width, note.get("width", instr.width)
        )
        if addr < base or addr + span > base + size:
            violations[id(instr)] = (instr, addr, base, base + size, note)

    for fixture in make_fixtures(func, variants=_AUDIT_VARIANTS):
        run_fixture(module, func.name, machine, fixture, trace_hook=audit)

    for instr, addr, lo, hi, note in violations.values():
        sink.error(
            "alias-consistency",
            f"access claimed to stay inside {note['kind']} object "
            f"{note['name']!r} [{lo:#x}, {hi:#x}) touched {addr:#x} "
            f"(loop {note['loop']}) — the alias engine's whole-object "
            "claim is wrong and any no-alias verdict built on it is "
            "unsound",
            location=_locate(func, instr),
            hint="suspect repro.analysis.alias address resolution for "
                 "this base register",
        )


@checker(
    "redundant-runtime-check",
    "runtime checks the alias engine proved unnecessary are not emitted",
)
def check_redundant_runtime_check(
    func: Function,
    module: Optional[Module],
    machine,
    sink: DiagnosticSink,
) -> None:
    for block in func.blocks:
        for index, instr in enumerate(block.instrs):
            if not isinstance(instr, CondJump):
                continue
            note = instr.notes.get("runtime_check")
            if not note or not note.get("dischargeable"):
                continue
            sink.warning(
                "redundant-runtime-check",
                f"{note['kind']} check for loop {note['loop']} was "
                "emitted although the alias engine discharged it "
                "statically",
                location=Location(func.name, block.label, index),
                hint="compile with check elision enabled "
                     "(PipelineConfig.elide_checks; it is disabled "
                     "automatically under fault injection)",
            )
