"""Static-analysis sanitizer suite for RTL.

Three layers above the raise-on-first-error verifier:

* :mod:`repro.sanitize.diagnostics` — findings as values (severity,
  check id, location, pass provenance, fix hint) collected by a
  :class:`DiagnosticSink` instead of raised;
* a checker registry (:mod:`repro.sanitize.registry`) with the built-in
  checkers of :mod:`repro.sanitize.checkers` and
  :mod:`repro.sanitize.coalesce_safety`;
* the differential pass-sanitizer (:mod:`repro.sanitize.differential`),
  which compares snapshots of a function before and after each pass on
  auto-generated fixtures and names the offending pass on divergence.

Entry point::

    from repro.sanitize import lint_module

    sink = lint_module(program.module, program.machine)
    print(sink.render_grouped())
    sink.raise_if_errors()
"""

from repro.sanitize.diagnostics import (
    Diagnostic,
    DiagnosticSink,
    ERROR,
    Location,
    NOTE,
    SEVERITIES,
    WARNING,
)
from repro.sanitize.registry import (
    checker,
    checker_ids,
    get_checkers,
    run_checkers,
)

# Importing the checker modules registers them.
from repro.sanitize import checkers as _checkers  # noqa: F401
from repro.sanitize import coalesce_safety as _coalesce_safety  # noqa: F401
from repro.sanitize import alias_checks as _alias_checks  # noqa: F401

from repro.sanitize.differential import (
    DifferentialSanitizer,
    Fixture,
    clone_function,
    make_fixtures,
    run_fixture,
)

from typing import Optional, Sequence

from repro.ir.function import Module


def lint_module(
    module: Module,
    machine,
    checks: Optional[Sequence[str]] = None,
    sink: Optional[DiagnosticSink] = None,
) -> DiagnosticSink:
    """Run the (selected) checkers over ``module``; returns the sink."""
    return run_checkers(module, machine, checks=checks, sink=sink)


__all__ = [
    "Diagnostic",
    "DiagnosticSink",
    "DifferentialSanitizer",
    "ERROR",
    "Fixture",
    "Location",
    "NOTE",
    "SEVERITIES",
    "WARNING",
    "checker",
    "checker_ids",
    "clone_function",
    "get_checkers",
    "lint_module",
    "make_fixtures",
    "run_checkers",
    "run_fixture",
]
