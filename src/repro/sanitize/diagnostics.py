"""The diagnostics engine: findings as values, not exceptions.

The IR verifier raises on the first structural problem, which is the right
behaviour mid-pipeline (fail at the source) but useless for auditing: a
sanitizer wants *every* finding, ranked by severity, attributed to a
location and to the pass that introduced it.  This module provides the
common currency:

* :class:`Diagnostic` — one finding: severity, the check that produced it,
  a :class:`Location` (function/block/instruction), the provenance (which
  pass ran last), and an optional fix hint;
* :class:`DiagnosticSink` — collects diagnostics instead of raising, with
  severity queries and a :meth:`DiagnosticSink.raise_if_errors` escape
  hatch into :class:`repro.errors.LintError`;
* renderers — ``gcc``-style single-line form plus a grouped report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.errors import LintError

# Severities, most severe first.  Plain strings keep diagnostics trivially
# serializable; the ordering lives here.
ERROR = "error"
WARNING = "warning"
NOTE = "note"

SEVERITIES = (ERROR, WARNING, NOTE)
_RANK = {severity: rank for rank, severity in enumerate(SEVERITIES)}


@dataclass(frozen=True)
class Location:
    """Where a finding points: function, optionally block and instruction."""

    function: str
    block: Optional[str] = None
    index: Optional[int] = None

    def __str__(self) -> str:
        text = self.function
        if self.block is not None:
            text += f"/{self.block}"
        if self.index is not None:
            text += f":{self.index}"
        return text


@dataclass
class Diagnostic:
    """One finding of one checker.

    ``check`` is the registry id of the checker (``coalesce-safety``,
    ``def-before-use``, ...).  ``provenance`` names the pass after which
    the finding appeared — the differential sanitizer fills it in, static
    checkers usually leave it empty.  ``hint`` is a human-oriented
    suggestion of how to fix or silence the finding.
    """

    severity: str
    check: str
    message: str
    location: Optional[Location] = None
    provenance: str = ""
    hint: str = ""

    def __post_init__(self) -> None:
        if self.severity not in _RANK:
            raise ValueError(f"unknown severity {self.severity!r}")

    @property
    def is_error(self) -> bool:
        return self.severity == ERROR

    def render(self) -> str:
        """``gcc``-style single line: ``loc: severity: [check] message``."""
        prefix = f"{self.location}: " if self.location else ""
        text = f"{prefix}{self.severity}: [{self.check}] {self.message}"
        if self.provenance:
            text += f" (after pass '{self.provenance}')"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def __repr__(self) -> str:
        return f"<Diagnostic {self.severity} [{self.check}] {self.message}>"


class DiagnosticSink:
    """Collects diagnostics instead of raising.

    Every checker takes a sink; severity bookkeeping and rendering live
    here so checkers only ever construct :class:`Diagnostic` values.
    """

    def __init__(self) -> None:
        self.diagnostics: List[Diagnostic] = []

    # -- emission -----------------------------------------------------------
    def emit(self, diagnostic: Diagnostic) -> Diagnostic:
        self.diagnostics.append(diagnostic)
        return diagnostic

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        for diagnostic in diagnostics:
            self.emit(diagnostic)

    def error(self, check: str, message: str, **kwargs) -> Diagnostic:
        return self.emit(Diagnostic(ERROR, check, message, **kwargs))

    def warning(self, check: str, message: str, **kwargs) -> Diagnostic:
        return self.emit(Diagnostic(WARNING, check, message, **kwargs))

    def note(self, check: str, message: str, **kwargs) -> Diagnostic:
        return self.emit(Diagnostic(NOTE, check, message, **kwargs))

    # -- queries ------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == WARNING]

    @property
    def has_errors(self) -> bool:
        return any(d.severity == ERROR for d in self.diagnostics)

    def by_check(self, check: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.check == check]

    def counts(self) -> Dict[str, int]:
        """Number of diagnostics per severity (zero entries included)."""
        result = {severity: 0 for severity in SEVERITIES}
        for diagnostic in self.diagnostics:
            result[diagnostic.severity] += 1
        return result

    # -- output -------------------------------------------------------------
    def sorted(self) -> List[Diagnostic]:
        """Stable order: severity first, then location text."""
        return sorted(
            self.diagnostics,
            key=lambda d: (_RANK[d.severity], str(d.location or ""), d.check),
        )

    def render_lines(self) -> List[str]:
        return [d.render() for d in self.sorted()]

    def render_grouped(self) -> str:
        """Group findings by function, then by check, with a summary."""
        by_function: Dict[str, List[Diagnostic]] = {}
        for diagnostic in self.sorted():
            name = diagnostic.location.function if diagnostic.location \
                else "<module>"
            by_function.setdefault(name, []).append(diagnostic)
        sections: List[str] = []
        for name, diagnostics in by_function.items():
            lines = [f"{name}:"]
            lines.extend(f"  {d.render()}" for d in diagnostics)
            sections.append("\n".join(lines))
        counts = self.counts()
        summary = ", ".join(
            f"{counts[severity]} {severity}(s)"
            for severity in SEVERITIES
            if counts[severity]
        ) or "no findings"
        sections.append(summary)
        return "\n".join(sections)

    def raise_if_errors(self) -> None:
        """Raise :class:`LintError` carrying this sink's error findings."""
        if self.has_errors:
            raise LintError(self.errors)
