"""The general-purpose static checkers.

Each checker audits one invariant the pipeline relies on:

* ``def-before-use`` — dataflow over
  :mod:`repro.analysis.reaching`: a register read with no reaching
  definition is garbage (error); a register whose definition reaches
  along only *some* paths may be used uninitialized (warning).
* ``loop-shape`` — unroll and coalesce assume every natural loop has a
  dedicated preheader and a single latch; report loops that do not.
* ``dead-store`` / ``redundant-load`` — the paper's Figure 1 motivation
  reported as lint warnings rather than transformed away.
* ``cfg-consistency`` — cross-checks the production dominator algorithm
  (Cooper-Harvey-Kennedy) against an independent brute-force solution of
  the dominance equations, and flags unreachable blocks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.cfgutil import predecessors, reachable_labels, \
    reverse_postorder
from repro.analysis.dominators import immediate_dominators
from repro.analysis.loops import find_loops
from repro.analysis.reaching import reaching_definitions
from repro.ir.function import Function, Module
from repro.ir.rtl import Call, Jump, Load, Store
from repro.sanitize.diagnostics import DiagnosticSink, Location
from repro.sanitize.registry import checker


# ---------------------------------------------------------------------------
# def-before-use
# ---------------------------------------------------------------------------

def _definitely_assigned(func: Function) -> Dict[str, Set[int]]:
    """Forward must-analysis: registers assigned on *every* path into each
    reachable block (parameters count as assigned at entry)."""
    reachable = reachable_labels(func)
    labels = [b.label for b in func.blocks if b.label in reachable]
    preds = predecessors(func)
    universe: Set[int] = {p.index for p in func.params}
    block_defs: Dict[str, Set[int]] = {}
    for label in labels:
        defs = {
            reg.index
            for instr in func.block(label).instrs
            for reg in instr.defs()
        }
        block_defs[label] = defs
        universe |= defs

    entry = func.entry.label
    assigned_in: Dict[str, Set[int]] = {
        label: set(universe) for label in labels
    }
    assigned_in[entry] = {p.index for p in func.params}
    assigned_out: Dict[str, Set[int]] = {
        label: set(universe) for label in labels
    }
    changed = True
    while changed:
        changed = False
        for label in labels:
            if label == entry:
                into = assigned_in[entry]
            else:
                incoming = [
                    assigned_out[p] for p in preds[label] if p in assigned_out
                ]
                into = set.intersection(*incoming) if incoming \
                    else set(universe)
            out = into | block_defs[label]
            if into != assigned_in[label] or out != assigned_out[label]:
                assigned_in[label] = into
                assigned_out[label] = out
                changed = True
    return assigned_in


@checker(
    "def-before-use",
    "registers must have a reaching definition at every use",
)
def check_def_before_use(
    func: Function, module: Optional[Module], machine, sink: DiagnosticSink
) -> None:
    reaching = reaching_definitions(func)
    assigned_in = _definitely_assigned(func)
    reachable = reachable_labels(func)
    params = {p.index for p in func.params}

    for block in func.blocks:
        if block.label not in reachable:
            continue
        assigned = set(assigned_in[block.label])
        for index, instr in enumerate(block.instrs):
            for reg in instr.uses():
                if reg.index in params or reg.index in assigned:
                    continue
                sites = reaching.reaching_at(
                    block.label, index, reg.index
                )
                location = Location(func.name, block.label, index)
                if not sites:
                    sink.error(
                        "def-before-use",
                        f"r{reg.index} is read but never defined",
                        location=location,
                        hint="every register must be written before it "
                             "is read; a pass probably deleted the "
                             "defining instruction",
                    )
                else:
                    sink.warning(
                        "def-before-use",
                        f"r{reg.index} may be used uninitialized (a "
                        f"path from entry carries no definition)",
                        location=location,
                        hint="initialize the register on every path, "
                             "e.g. in the entry block",
                    )
            for reg in instr.defs():
                assigned.add(reg.index)


# ---------------------------------------------------------------------------
# loop-shape
# ---------------------------------------------------------------------------

@checker(
    "loop-shape",
    "natural loops need a dedicated preheader and a single latch",
)
def check_loop_shape(
    func: Function, module: Optional[Module], machine, sink: DiagnosticSink
) -> None:
    preds = predecessors(func)
    for loop in find_loops(func):
        location = Location(func.name, loop.header)
        if len(loop.latches) != 1:
            sink.warning(
                "loop-shape",
                f"loop at {loop.header} has {len(loop.latches)} latches "
                f"({', '.join(sorted(loop.latches))})",
                location=location,
                hint="unroll and coalesce require a single back edge; "
                     "merge the latches through a common block",
            )
        outside = [
            p for p in preds[loop.header] if p not in loop.blocks
        ]
        dedicated = False
        if len(outside) == 1:
            candidate = func.block(outside[0])
            term = candidate.instrs[-1] if candidate.instrs else None
            dedicated = isinstance(term, Jump) and \
                term.target == loop.header
        if not dedicated:
            sink.warning(
                "loop-shape",
                f"loop at {loop.header} has no dedicated preheader "
                f"({len(outside)} outside predecessor(s))",
                location=location,
                hint="run ensure_preheader before transforming this "
                     "loop; run-time checks need a unique insertion "
                     "point",
            )


# ---------------------------------------------------------------------------
# dead-store / redundant-load
# ---------------------------------------------------------------------------

AccessKey = Tuple[int, int, int]  # (base register, displacement, width)


def _overlaps(a: AccessKey, b: AccessKey) -> bool:
    """Whether two same-base accesses touch common bytes."""
    if a[0] != b[0]:
        return True  # different base: may alias, stay conservative
    return not (a[1] + a[2] <= b[1] or b[1] + b[2] <= a[1])


@checker(
    "redundant-load",
    "a load re-reads bytes already loaded with no intervening store",
)
def check_redundant_load(
    func: Function, module: Optional[Module], machine, sink: DiagnosticSink
) -> None:
    for block in func.blocks:
        # key -> index of the live earlier load
        live: Dict[AccessKey, int] = {}
        for index, instr in enumerate(block.instrs):
            if isinstance(instr, Call):
                live.clear()
                continue
            if isinstance(instr, Store):
                key = (instr.base.index, instr.disp, instr.width)
                live = {
                    k: v for k, v in live.items() if not _overlaps(k, key)
                }
                continue
            if isinstance(instr, Load):
                key = (instr.base.index, instr.disp, instr.width)
                if not instr.unaligned and key in live:
                    sink.warning(
                        "redundant-load",
                        f"load of [r{key[0]} + {key[1]}] repeats the "
                        f"load at instruction {live[key]} with no "
                        f"intervening store",
                        location=Location(func.name, block.label, index),
                        hint="the paper's Figure 1 pattern: reuse the "
                             "previously loaded register, or let "
                             "coalescing fold both into one wide access",
                    )
                elif not instr.unaligned:
                    live[key] = index
            # Any redefinition of a base register invalidates its keys.
            for reg in instr.defs():
                live = {
                    k: v for k, v in live.items() if k[0] != reg.index
                }


@checker(
    "dead-store",
    "a store is overwritten before its bytes are ever read",
)
def check_dead_store(
    func: Function, module: Optional[Module], machine, sink: DiagnosticSink
) -> None:
    for block in func.blocks:
        # key -> index of the store whose bytes are not read yet
        pending: Dict[AccessKey, int] = {}
        for index, instr in enumerate(block.instrs):
            if isinstance(instr, (Call, Load)):
                pending.clear()
                continue
            if isinstance(instr, Store):
                key = (instr.base.index, instr.disp, instr.width)
                if not instr.unaligned and key in pending:
                    sink.warning(
                        "dead-store",
                        f"store to [r{key[0]} + {key[1]}] at instruction "
                        f"{pending[key]} is overwritten here before "
                        f"any read",
                        location=Location(func.name, block.label, index),
                        hint="drop the earlier store, or let store "
                             "coalescing merge the fields into one "
                             "wide store",
                    )
                if not instr.unaligned:
                    # Same-base overlapping but non-identical stores are
                    # not reported (partial overwrite), just retired.
                    pending = {
                        k: v
                        for k, v in pending.items()
                        if k == key or not _overlaps(k, key)
                    }
                    pending[key] = index
                continue
            for reg in instr.defs():
                pending = {
                    k: v for k, v in pending.items() if k[0] != reg.index
                }


# ---------------------------------------------------------------------------
# cfg-consistency
# ---------------------------------------------------------------------------

def _bruteforce_dominators(func: Function) -> Dict[str, Set[str]]:
    """Independent dominator-set solution (iterative set intersection).

    Deliberately *not* derived from :mod:`repro.analysis.dominators` so
    the two implementations cross-check each other.
    """
    reachable = reachable_labels(func)
    order = [l for l in reverse_postorder(func) if l in reachable]
    preds = predecessors(func)
    entry = func.entry.label
    universe = set(order)
    dom: Dict[str, Set[str]] = {
        label: set(universe) for label in order
    }
    dom[entry] = {entry}
    changed = True
    while changed:
        changed = False
        for label in order:
            if label == entry:
                continue
            incoming = [
                dom[p] for p in preds[label] if p in dom
            ]
            new = set.intersection(*incoming) if incoming else set(universe)
            new.add(label)
            if new != dom[label]:
                dom[label] = new
                changed = True
    return dom


@checker(
    "cfg-consistency",
    "dominator tree must agree with the successor sets",
)
def check_cfg_consistency(
    func: Function, module: Optional[Module], machine, sink: DiagnosticSink
) -> None:
    reachable = reachable_labels(func)
    for block in func.blocks:
        if block.label not in reachable:
            sink.warning(
                "cfg-consistency",
                f"block {block.label} is unreachable from the entry",
                location=Location(func.name, block.label),
                hint="simplify_cfg removes dead blocks; leaving them "
                     "in skews the cost model's code layout",
            )

    idom = immediate_dominators(func)
    truth = _bruteforce_dominators(func)

    for label, expected in truth.items():
        # Dominator set implied by the idom tree.
        chain: Set[str] = set()
        walk: Optional[str] = label
        seen: Set[str] = set()
        while walk is not None and walk not in seen:
            seen.add(walk)
            chain.add(walk)
            walk = idom.get(walk)
        if chain != expected:
            missing = sorted(expected - chain)
            spurious = sorted(chain - expected)
            detail = []
            if missing:
                detail.append(f"missing {', '.join(missing)}")
            if spurious:
                detail.append(f"spurious {', '.join(spurious)}")
            sink.error(
                "cfg-consistency",
                f"dominator tree disagrees with the CFG at "
                f"{label} ({'; '.join(detail)})",
                location=Location(func.name, label),
                hint="the immediate-dominator computation and the "
                     "block successor sets are out of sync — likely a "
                     "pass rewired a terminator without keeping the "
                     "block list consistent",
            )
