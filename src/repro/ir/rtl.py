"""RTL instruction and operand classes.

Design notes
------------
The paper's back end (vpo) represents code as *register transfer lists*.  We
model the same level of abstraction with a small set of instruction classes:

* value operands are either virtual registers (:class:`Reg`) or integer
  constants (:class:`Const`);
* memory is accessed only through :class:`Load` and :class:`Store`, whose
  address is always ``base + displacement`` (a register plus a constant) —
  the paper's hazard analysis (`FindBaseAndDisplacementOfAddress`) relies on
  exactly that decomposition;
* byte-field manipulation inside a word uses :class:`Extract` and
  :class:`Insert`, mirroring the DEC Alpha ``EXTxx``/``INSxx`` family the
  paper leans on (Figure 1, lines 14-16);
* control flow is fully explicit: every basic block ends with one of
  :class:`Jump`, :class:`CondJump` or :class:`Ret` and there is no
  fall-through.

Instructions are mutable so passes can rewrite them in place; each exposes
``uses()``/``defs()``/``clone()``/``substitute_uses()`` so generic dataflow
code never needs to know concrete classes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Union

from repro.errors import IRError

# Widths are byte counts.  These are the only access sizes any of the three
# evaluation machines supports.
WIDTHS = (1, 2, 4, 8)

BIN_OPS = frozenset(
    {
        "add", "sub", "mul",
        "div", "divu", "rem", "remu",
        "and", "or", "xor",
        "shl", "shrl", "shra",
    }
)

# Operations for which a op b == b op a; used by CSE and constant folding.
COMMUTATIVE_OPS = frozenset({"add", "mul", "and", "or", "xor"})

# Unary ops: arithmetic negate, bitwise not, and sign/zero extension of the
# low N bytes of a word ("sext2" = sign-extend the low 16 bits).
UN_OPS = frozenset(
    {"neg", "not", "sext1", "sext2", "sext4", "zext1", "zext2", "zext4"}
)

# Branch relations.  The "u" suffix means the comparison treats its operands
# as unsigned machine words.
RELATIONS = ("eq", "ne", "lt", "le", "gt", "ge", "ltu", "leu", "gtu", "geu")

_INVERSE = {
    "eq": "ne", "ne": "eq",
    "lt": "ge", "ge": "lt", "le": "gt", "gt": "le",
    "ltu": "geu", "geu": "ltu", "leu": "gtu", "gtu": "leu",
}

_SWAPPED = {
    "eq": "eq", "ne": "ne",
    "lt": "gt", "gt": "lt", "le": "ge", "ge": "le",
    "ltu": "gtu", "gtu": "ltu", "leu": "geu", "geu": "leu",
}


def invert_relation(rel: str) -> str:
    """Return the relation that holds exactly when ``rel`` does not."""
    return _INVERSE[rel]


def swap_relation(rel: str) -> str:
    """Return the relation ``rel'`` with ``a rel b  ==  b rel' a``."""
    return _SWAPPED[rel]


class Reg:
    """A virtual register.

    Registers are identified by ``index``; ``name`` is a purely cosmetic
    hint preserved by the printer (``r7`` vs ``r7<i>``).  Two ``Reg``
    objects with the same index denote the same storage location.
    """

    __slots__ = ("index", "name")

    def __init__(self, index: int, name: str = ""):
        self.index = index
        self.name = name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Reg) and other.index == self.index

    def __hash__(self) -> int:
        return hash(("reg", self.index))

    def __repr__(self) -> str:
        if self.name:
            return f"r{self.index}<{self.name}>"
        return f"r{self.index}"


class Const:
    """An integer literal operand (a machine-word constant)."""

    __slots__ = ("value",)

    def __init__(self, value: int):
        if not isinstance(value, int):
            raise IRError(f"constant must be an int, got {value!r}")
        self.value = value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Const) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("const", self.value))

    def __repr__(self) -> str:
        return str(self.value)


Operand = Union[Reg, Const]


def _check_operand(value: Operand, what: str) -> Operand:
    if not isinstance(value, (Reg, Const)):
        raise IRError(f"{what} must be a Reg or Const, got {value!r}")
    return value


def _check_reg(value: Reg, what: str) -> Reg:
    if not isinstance(value, Reg):
        raise IRError(f"{what} must be a Reg, got {value!r}")
    return value


def _check_width(width: int) -> int:
    if width not in WIDTHS:
        raise IRError(f"unsupported access width {width!r} (want 1/2/4/8)")
    return width


def _subst(value: Operand, mapping: Dict[Reg, Operand]) -> Operand:
    if isinstance(value, Reg) and value in mapping:
        return mapping[value]
    return value


class Instr:
    """Base class for all RTL instructions.

    Subclasses fill in ``uses``/``defs``/``clone``/``substitute_uses``.
    ``notes`` is a scratch dictionary analyses may use to annotate
    instructions (e.g. the coalescer records partition ids there); clones
    share nothing with the original.
    """

    __slots__ = ("notes",)

    def __init__(self) -> None:
        self.notes: Dict[str, object] = {}

    # -- dataflow interface -------------------------------------------------
    def uses(self) -> List[Reg]:
        """Registers read by this instruction."""
        return []

    def defs(self) -> List[Reg]:
        """Registers written by this instruction."""
        return []

    def clone(self) -> "Instr":
        raise NotImplementedError

    def substitute_uses(self, mapping: Dict[Reg, Operand]) -> None:
        """Rewrite every use of a key register into the mapped operand."""

    def substitute_defs(self, mapping: Dict[Reg, Reg]) -> None:
        """Rewrite every defined register through ``mapping``."""

    # -- classification helpers ---------------------------------------------
    @property
    def is_terminator(self) -> bool:
        return isinstance(self, (Jump, CondJump, Ret))

    @property
    def is_memory(self) -> bool:
        return isinstance(self, (Load, Store))

    def __repr__(self) -> str:  # delegated to the printer to keep one format
        from repro.ir.printer import format_instr

        return format_instr(self)


class Mov(Instr):
    """``dst = src`` — register copy or load-immediate."""

    __slots__ = ("dst", "src")

    def __init__(self, dst: Reg, src: Operand):
        super().__init__()
        self.dst = _check_reg(dst, "Mov.dst")
        self.src = _check_operand(src, "Mov.src")

    def uses(self) -> List[Reg]:
        return [self.src] if isinstance(self.src, Reg) else []

    def defs(self) -> List[Reg]:
        return [self.dst]

    def clone(self) -> "Mov":
        return Mov(self.dst, self.src)

    def substitute_uses(self, mapping: Dict[Reg, Operand]) -> None:
        self.src = _subst(self.src, mapping)

    def substitute_defs(self, mapping: Dict[Reg, Reg]) -> None:
        self.dst = mapping.get(self.dst, self.dst)


class BinOp(Instr):
    """``dst = a <op> b`` for ``op`` in :data:`BIN_OPS`.

    Semantics are machine-word semantics: operands are machine words,
    results wrap modulo the word size.  ``div``/``rem`` are C-style
    (truncate toward zero); ``shrl`` is a logical and ``shra`` an
    arithmetic right shift.
    """

    __slots__ = ("op", "dst", "a", "b")

    def __init__(self, op: str, dst: Reg, a: Operand, b: Operand):
        super().__init__()
        if op not in BIN_OPS:
            raise IRError(f"unknown binary op {op!r}")
        self.op = op
        self.dst = _check_reg(dst, "BinOp.dst")
        self.a = _check_operand(a, "BinOp.a")
        self.b = _check_operand(b, "BinOp.b")

    def uses(self) -> List[Reg]:
        return [x for x in (self.a, self.b) if isinstance(x, Reg)]

    def defs(self) -> List[Reg]:
        return [self.dst]

    def clone(self) -> "BinOp":
        return BinOp(self.op, self.dst, self.a, self.b)

    def substitute_uses(self, mapping: Dict[Reg, Operand]) -> None:
        self.a = _subst(self.a, mapping)
        self.b = _subst(self.b, mapping)

    def substitute_defs(self, mapping: Dict[Reg, Reg]) -> None:
        self.dst = mapping.get(self.dst, self.dst)


class UnOp(Instr):
    """``dst = <op> a`` for ``op`` in :data:`UN_OPS`."""

    __slots__ = ("op", "dst", "a")

    def __init__(self, op: str, dst: Reg, a: Operand):
        super().__init__()
        if op not in UN_OPS:
            raise IRError(f"unknown unary op {op!r}")
        self.op = op
        self.dst = _check_reg(dst, "UnOp.dst")
        self.a = _check_operand(a, "UnOp.a")

    def uses(self) -> List[Reg]:
        return [self.a] if isinstance(self.a, Reg) else []

    def defs(self) -> List[Reg]:
        return [self.dst]

    def clone(self) -> "UnOp":
        return UnOp(self.op, self.dst, self.a)

    def substitute_uses(self, mapping: Dict[Reg, Operand]) -> None:
        self.a = _subst(self.a, mapping)

    def substitute_defs(self, mapping: Dict[Reg, Reg]) -> None:
        self.dst = mapping.get(self.dst, self.dst)


class Load(Instr):
    """``dst = M[base + disp]`` of ``width`` bytes.

    ``signed`` selects sign- vs zero-extension into the full machine word.
    ``unaligned`` marks an Alpha-style ``ldq_u``: the effective address has
    its low ``log2(width)`` bits cleared before the access, so it never
    traps.  Aligned loads trap in the simulator when misaligned, exactly so
    that coalescer safety bugs surface loudly.
    """

    __slots__ = ("dst", "base", "disp", "width", "signed", "unaligned")

    def __init__(
        self,
        dst: Reg,
        base: Reg,
        disp: int,
        width: int,
        signed: bool = True,
        unaligned: bool = False,
    ):
        super().__init__()
        self.dst = _check_reg(dst, "Load.dst")
        self.base = _check_reg(base, "Load.base")
        if not isinstance(disp, int):
            raise IRError(f"Load.disp must be int, got {disp!r}")
        self.disp = disp
        self.width = _check_width(width)
        self.signed = bool(signed)
        self.unaligned = bool(unaligned)

    def uses(self) -> List[Reg]:
        return [self.base]

    def defs(self) -> List[Reg]:
        return [self.dst]

    def clone(self) -> "Load":
        return Load(
            self.dst, self.base, self.disp, self.width, self.signed,
            self.unaligned,
        )

    def substitute_uses(self, mapping: Dict[Reg, Operand]) -> None:
        new_base = _subst(self.base, mapping)
        if not isinstance(new_base, Reg):
            raise IRError("cannot substitute Load.base with a constant")
        self.base = new_base

    def substitute_defs(self, mapping: Dict[Reg, Reg]) -> None:
        self.dst = mapping.get(self.dst, self.dst)


class Store(Instr):
    """``M[base + disp] = src`` of ``width`` bytes (low bytes of ``src``).

    ``unaligned`` marks an Alpha-style ``stq_u``: the effective address has
    its low ``log2(width)`` bits cleared before the access.  It appears only
    in lowered code (read-modify-write narrow stores on the Alpha).
    """

    __slots__ = ("base", "disp", "src", "width", "unaligned")

    def __init__(
        self,
        base: Reg,
        disp: int,
        src: Operand,
        width: int,
        unaligned: bool = False,
    ):
        super().__init__()
        self.base = _check_reg(base, "Store.base")
        if not isinstance(disp, int):
            raise IRError(f"Store.disp must be int, got {disp!r}")
        self.disp = disp
        self.src = _check_operand(src, "Store.src")
        self.width = _check_width(width)
        self.unaligned = bool(unaligned)

    def uses(self) -> List[Reg]:
        regs = [self.base]
        if isinstance(self.src, Reg):
            regs.append(self.src)
        return regs

    def defs(self) -> List[Reg]:
        return []

    def clone(self) -> "Store":
        return Store(
            self.base, self.disp, self.src, self.width, self.unaligned
        )

    def substitute_uses(self, mapping: Dict[Reg, Operand]) -> None:
        new_base = _subst(self.base, mapping)
        if not isinstance(new_base, Reg):
            raise IRError("cannot substitute Store.base with a constant")
        self.base = new_base
        self.src = _subst(self.src, mapping)


class Extract(Instr):
    """``dst = field(src, pos, width)`` — read a byte field out of a word.

    ``pos`` gives the *byte address* whose low ``log2(wordbytes)`` bits
    select the field position inside the word, exactly like the Alpha
    ``EXTxx`` instructions use the low three bits of their shift operand.
    On a little-endian machine byte offset ``k`` is bits ``8k .. 8k+8w-1``;
    on a big-endian machine it counts from the most significant byte.  The
    result is sign- or zero-extended to a full word per ``signed``.
    """

    __slots__ = ("dst", "src", "pos", "width", "signed")

    def __init__(
        self, dst: Reg, src: Reg, pos: Operand, width: int, signed: bool
    ):
        super().__init__()
        self.dst = _check_reg(dst, "Extract.dst")
        self.src = _check_reg(src, "Extract.src")
        self.pos = _check_operand(pos, "Extract.pos")
        self.width = _check_width(width)
        self.signed = bool(signed)

    def uses(self) -> List[Reg]:
        regs = [self.src]
        if isinstance(self.pos, Reg):
            regs.append(self.pos)
        return regs

    def defs(self) -> List[Reg]:
        return [self.dst]

    def clone(self) -> "Extract":
        return Extract(self.dst, self.src, self.pos, self.width, self.signed)

    def substitute_uses(self, mapping: Dict[Reg, Operand]) -> None:
        new_src = _subst(self.src, mapping)
        if not isinstance(new_src, Reg):
            raise IRError("cannot substitute Extract.src with a constant")
        self.src = new_src
        self.pos = _subst(self.pos, mapping)

    def substitute_defs(self, mapping: Dict[Reg, Reg]) -> None:
        self.dst = mapping.get(self.dst, self.dst)


class Insert(Instr):
    """``dst = acc with field(pos, width) := low bytes of src``.

    The dual of :class:`Extract`; models the Alpha ``INSxx``/``MSKxx``
    pair as a single RTL.  Machines without such an instruction (the
    Motorola 88100 and 68030 in the paper) have this expanded by the
    lowering pass into shift/mask/or sequences, which is precisely why
    store coalescing loses on those machines.
    """

    __slots__ = ("dst", "acc", "src", "pos", "width")

    def __init__(
        self, dst: Reg, acc: Operand, src: Operand, pos: Operand, width: int
    ):
        super().__init__()
        self.dst = _check_reg(dst, "Insert.dst")
        self.acc = _check_operand(acc, "Insert.acc")
        self.src = _check_operand(src, "Insert.src")
        self.pos = _check_operand(pos, "Insert.pos")
        self.width = _check_width(width)

    def uses(self) -> List[Reg]:
        return [
            x for x in (self.acc, self.src, self.pos) if isinstance(x, Reg)
        ]

    def defs(self) -> List[Reg]:
        return [self.dst]

    def clone(self) -> "Insert":
        return Insert(self.dst, self.acc, self.src, self.pos, self.width)

    def substitute_uses(self, mapping: Dict[Reg, Operand]) -> None:
        self.acc = _subst(self.acc, mapping)
        self.src = _subst(self.src, mapping)
        self.pos = _subst(self.pos, mapping)

    def substitute_defs(self, mapping: Dict[Reg, Reg]) -> None:
        self.dst = mapping.get(self.dst, self.dst)


class FrameAddr(Instr):
    """``dst = &frame_slot`` — address of a stack slot of the function."""

    __slots__ = ("dst", "slot")

    def __init__(self, dst: Reg, slot: str):
        super().__init__()
        self.dst = _check_reg(dst, "FrameAddr.dst")
        self.slot = slot

    def defs(self) -> List[Reg]:
        return [self.dst]

    def clone(self) -> "FrameAddr":
        return FrameAddr(self.dst, self.slot)

    def substitute_defs(self, mapping: Dict[Reg, Reg]) -> None:
        self.dst = mapping.get(self.dst, self.dst)


class GlobalAddr(Instr):
    """``dst = &global`` — address of a module-level variable."""

    __slots__ = ("dst", "name")

    def __init__(self, dst: Reg, name: str):
        super().__init__()
        self.dst = _check_reg(dst, "GlobalAddr.dst")
        self.name = name

    def defs(self) -> List[Reg]:
        return [self.dst]

    def clone(self) -> "GlobalAddr":
        return GlobalAddr(self.dst, self.name)

    def substitute_defs(self, mapping: Dict[Reg, Reg]) -> None:
        self.dst = mapping.get(self.dst, self.dst)


class Call(Instr):
    """``dst = func(args...)`` with an abstract calling convention.

    Coalescing is an intra-procedural loop optimization, so a precise ABI
    adds nothing; arguments travel as a list of operands and the callee's
    return value lands directly in ``dst`` (or is dropped when ``dst`` is
    ``None``).
    """

    __slots__ = ("dst", "func", "args")

    def __init__(self, dst: Optional[Reg], func: str, args: Iterable[Operand]):
        super().__init__()
        if dst is not None:
            _check_reg(dst, "Call.dst")
        self.dst = dst
        self.func = func
        self.args = [_check_operand(a, "Call arg") for a in args]

    def uses(self) -> List[Reg]:
        return [a for a in self.args if isinstance(a, Reg)]

    def defs(self) -> List[Reg]:
        return [self.dst] if self.dst is not None else []

    def clone(self) -> "Call":
        return Call(self.dst, self.func, list(self.args))

    def substitute_uses(self, mapping: Dict[Reg, Operand]) -> None:
        self.args = [_subst(a, mapping) for a in self.args]

    def substitute_defs(self, mapping: Dict[Reg, Reg]) -> None:
        if self.dst is not None:
            self.dst = mapping.get(self.dst, self.dst)


class Jump(Instr):
    """Unconditional jump to a block label."""

    __slots__ = ("target",)

    def __init__(self, target: str):
        super().__init__()
        self.target = target

    def clone(self) -> "Jump":
        return Jump(self.target)


class CondJump(Instr):
    """``if a <rel> b goto iftrue else goto iffalse``.

    Both arms are explicit; there is no fall-through in this IR, which lets
    passes reorder blocks freely.  Code layout (and its cost) is a concern
    of the block-cost model, not of the IR.
    """

    __slots__ = ("rel", "a", "b", "iftrue", "iffalse")

    def __init__(
        self, rel: str, a: Operand, b: Operand, iftrue: str, iffalse: str
    ):
        super().__init__()
        if rel not in RELATIONS:
            raise IRError(f"unknown relation {rel!r}")
        self.rel = rel
        self.a = _check_operand(a, "CondJump.a")
        self.b = _check_operand(b, "CondJump.b")
        self.iftrue = iftrue
        self.iffalse = iffalse

    def uses(self) -> List[Reg]:
        return [x for x in (self.a, self.b) if isinstance(x, Reg)]

    def clone(self) -> "CondJump":
        return CondJump(self.rel, self.a, self.b, self.iftrue, self.iffalse)

    def substitute_uses(self, mapping: Dict[Reg, Operand]) -> None:
        self.a = _subst(self.a, mapping)
        self.b = _subst(self.b, mapping)


class Ret(Instr):
    """Return from the function, optionally with a value."""

    __slots__ = ("value",)

    def __init__(self, value: Optional[Operand] = None):
        super().__init__()
        if value is not None:
            _check_operand(value, "Ret.value")
        self.value = value

    def uses(self) -> List[Reg]:
        return [self.value] if isinstance(self.value, Reg) else []

    def clone(self) -> "Ret":
        return Ret(self.value)

    def substitute_uses(self, mapping: Dict[Reg, Operand]) -> None:
        if self.value is not None:
            self.value = _subst(self.value, mapping)
