"""Structural well-formedness checks for RTL functions.

The verifier is intentionally strict; the pipeline runs it after every pass
so a transformation bug fails fast instead of surfacing as wrong simulator
output three stages later.

Two consumption modes:

* the classic raising mode (:func:`verify_function` /
  :func:`verify_module` with no sink) raises :class:`IRError` — on the
  *first* problem for a function, on the joined set for a module — which
  is what the pass manager wants;
* sanitizer mode: pass a :class:`repro.sanitize.diagnostics.DiagnosticSink`
  and every problem is reported as one :class:`Diagnostic` with a
  structured location, nothing is raised, and the caller decides.

Either way the problems themselves come from one generator, so the two
modes can never drift apart.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.errors import IRError
from repro.ir.function import Function, Module
from repro.ir.rtl import Call, FrameAddr, GlobalAddr

# (block label or None, instruction index or None, message)
Problem = Tuple[Optional[str], Optional[int], str]


def _function_problems(
    func: Function, module: Optional[Module] = None
) -> Iterator[Problem]:
    """Yield every structural problem of ``func``.

    Checks:
      * at least one block; unique labels;
      * every block non-empty and terminated exactly once (no terminator in
        a body position);
      * all jump targets exist;
      * frame slots referenced by :class:`FrameAddr` exist;
      * globals/functions referenced exist when a module is supplied;
      * no block other than the entry is completely unreachable *and*
        jumped to from nowhere (dead blocks are allowed only if a pass has
        not yet cleaned them; they must still be well-formed).
    """
    if not func.blocks:
        yield None, None, "function has no blocks"
        return

    labels = [b.label for b in func.blocks]
    if len(set(labels)) != len(labels):
        duplicate = next(x for x in labels if labels.count(x) > 1)
        yield None, None, f"duplicate block label {duplicate!r}"
    label_set = set(labels)

    for block in func.blocks:
        if not block.instrs:
            yield block.label, None, "empty block"
            continue
        for position, instr in enumerate(block.instrs):
            is_last = position == len(block.instrs) - 1
            if instr.is_terminator and not is_last:
                yield (
                    block.label, position,
                    f"terminator {instr!r} not at block end",
                )
            if is_last and not instr.is_terminator:
                yield (
                    block.label, position,
                    "block does not end in a terminator "
                    f"(ends with {instr!r})",
                )
            if isinstance(instr, FrameAddr):
                if instr.slot not in func.frame_slots:
                    yield (
                        block.label, position,
                        f"unknown frame slot {instr.slot!r}",
                    )
            if module is not None:
                if isinstance(instr, GlobalAddr):
                    if instr.name not in module.globals:
                        yield (
                            block.label, position,
                            f"unknown global {instr.name!r}",
                        )
                if isinstance(instr, Call):
                    if instr.func not in module.functions:
                        yield (
                            block.label, position,
                            f"call to unknown function {instr.func!r}",
                        )
        if block.instrs and block.instrs[-1].is_terminator:
            for successor in block.successors():
                if successor not in label_set:
                    yield (
                        block.label, None,
                        f"jump to unknown label {successor!r}",
                    )


def _format(func: Function, problem: Problem) -> str:
    block, _, message = problem
    prefix = func.name if block is None else f"{func.name}/{block}"
    return f"{prefix}: {message}"


def _diagnostic(func: Function, problem: Problem):
    from repro.sanitize.diagnostics import Diagnostic, ERROR, Location

    block, index, message = problem
    return Diagnostic(
        ERROR,
        "verify",
        message,
        location=Location(func.name, block, index),
    )


def verify_function(
    func: Function, module: Optional[Module] = None, sink=None
) -> None:
    """Check ``func``; raise :class:`IRError` on the first problem.

    With a ``sink``, collect *all* problems as diagnostics instead of
    raising.
    """
    if sink is not None:
        for problem in _function_problems(func, module):
            sink.emit(_diagnostic(func, problem))
        return
    for problem in _function_problems(func, module):
        from repro.sanitize.diagnostics import Location

        block, index, _ = problem
        raise IRError(
            _format(func, problem),
            location=Location(func.name, block, index),
        )


def verify_module(module: Module, sink=None) -> None:
    """Verify every function of ``module``.

    Without a sink, raises one :class:`IRError` whose message joins every
    per-function problem and whose ``diagnostics`` attribute carries the
    structured findings.  With a sink, collects and returns.
    """
    if sink is not None:
        for func in module:
            verify_function(func, module, sink=sink)
        return
    problems: List[str] = []
    diagnostics = []
    for func in module:
        for problem in _function_problems(func, module):
            problems.append(_format(func, problem))
            diagnostics.append(_diagnostic(func, problem))
    if problems:
        error = IRError("; ".join(problems))
        error.diagnostics = diagnostics
        raise error
