"""Structural well-formedness checks for RTL functions.

The verifier is intentionally strict; the pipeline runs it after every pass
so a transformation bug fails fast instead of surfacing as wrong simulator
output three stages later.
"""

from __future__ import annotations

from typing import List

from repro.errors import IRError
from repro.ir.function import Function, Module
from repro.ir.rtl import Call, FrameAddr, GlobalAddr


def verify_function(func: Function, module: Module = None) -> None:
    """Raise :class:`IRError` if ``func`` is malformed.

    Checks:
      * at least one block; unique labels;
      * every block non-empty and terminated exactly once (no terminator in
        a body position);
      * all jump targets exist;
      * frame slots referenced by :class:`FrameAddr` exist;
      * globals/functions referenced exist when a module is supplied;
      * no block other than the entry is completely unreachable *and*
        jumped to from nowhere (dead blocks are allowed only if a pass has
        not yet cleaned them; they must still be well-formed).
    """
    if not func.blocks:
        raise IRError(f"{func.name}: function has no blocks")

    labels = [b.label for b in func.blocks]
    if len(set(labels)) != len(labels):
        duplicate = next(x for x in labels if labels.count(x) > 1)
        raise IRError(f"{func.name}: duplicate block label {duplicate!r}")
    label_set = set(labels)

    for block in func.blocks:
        if not block.instrs:
            raise IRError(f"{func.name}/{block.label}: empty block")
        for position, instr in enumerate(block.instrs):
            is_last = position == len(block.instrs) - 1
            if instr.is_terminator and not is_last:
                raise IRError(
                    f"{func.name}/{block.label}: terminator "
                    f"{instr!r} not at block end"
                )
            if is_last and not instr.is_terminator:
                raise IRError(
                    f"{func.name}/{block.label}: block does not end "
                    f"in a terminator (ends with {instr!r})"
                )
            if isinstance(instr, FrameAddr):
                if instr.slot not in func.frame_slots:
                    raise IRError(
                        f"{func.name}/{block.label}: unknown frame "
                        f"slot {instr.slot!r}"
                    )
            if module is not None:
                if isinstance(instr, GlobalAddr):
                    if instr.name not in module.globals:
                        raise IRError(
                            f"{func.name}/{block.label}: unknown "
                            f"global {instr.name!r}"
                        )
                if isinstance(instr, Call):
                    if instr.func not in module.functions:
                        raise IRError(
                            f"{func.name}/{block.label}: call to "
                            f"unknown function {instr.func!r}"
                        )
        for successor in block.successors():
            if successor not in label_set:
                raise IRError(
                    f"{func.name}/{block.label}: jump to unknown "
                    f"label {successor!r}"
                )


def verify_module(module: Module) -> None:
    """Verify every function of ``module``; raises :class:`IRError`."""
    problems: List[str] = []
    for func in module:
        try:
            verify_function(func, module)
        except IRError as exc:
            problems.append(str(exc))
    if problems:
        raise IRError("; ".join(problems))
