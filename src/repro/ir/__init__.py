"""vpo-style RTL intermediate representation.

The IR models register transfer lists the way the paper's back end (vpo)
does: a function is a list of basic blocks, each block a list of register
transfers ending in an explicit terminator.  Registers are virtual and
unlimited; a late machine pass may bind them to physical registers.

Public surface:

* :mod:`repro.ir.rtl` — instruction and operand classes.
* :mod:`repro.ir.function` — :class:`BasicBlock`, :class:`Function`,
  :class:`Module`, :class:`GlobalVar`.
* :mod:`repro.ir.printer` / :mod:`repro.ir.parser` — round-trippable text
  format used by tests and examples.
* :mod:`repro.ir.verifier` — structural well-formedness checks.
* :mod:`repro.ir.builder` — convenience builder used by the front end.
"""

from repro.ir.rtl import (
    BIN_OPS,
    COMMUTATIVE_OPS,
    RELATIONS,
    UN_OPS,
    BinOp,
    Call,
    CondJump,
    Const,
    Extract,
    FrameAddr,
    GlobalAddr,
    Insert,
    Instr,
    Jump,
    Load,
    Mov,
    Reg,
    Ret,
    Store,
    UnOp,
    invert_relation,
    swap_relation,
)
from repro.ir.function import BasicBlock, Function, GlobalVar, Module
from repro.ir.printer import format_function, format_instr, format_module
from repro.ir.parser import parse_module
from repro.ir.verifier import verify_function, verify_module
from repro.ir.builder import IRBuilder

__all__ = [
    "BIN_OPS",
    "COMMUTATIVE_OPS",
    "RELATIONS",
    "UN_OPS",
    "BasicBlock",
    "BinOp",
    "Call",
    "CondJump",
    "Const",
    "Extract",
    "FrameAddr",
    "Function",
    "GlobalAddr",
    "GlobalVar",
    "IRBuilder",
    "Insert",
    "Instr",
    "Jump",
    "Load",
    "Module",
    "Mov",
    "Reg",
    "Ret",
    "Store",
    "UnOp",
    "format_function",
    "format_instr",
    "format_module",
    "invert_relation",
    "parse_module",
    "swap_relation",
    "verify_function",
    "verify_module",
]
