"""A small convenience layer for emitting RTL.

The front end's code generator uses this to avoid threading "current
block" state by hand.  The builder always appends to the block selected by
:meth:`IRBuilder.position_at`; helper methods create fresh destination
registers so expression code generation stays one-liner-ish.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import IRError
from repro.ir.function import BasicBlock, Function
from repro.ir.rtl import (
    BinOp,
    Call,
    CondJump,
    Const,
    FrameAddr,
    GlobalAddr,
    Instr,
    Jump,
    Load,
    Mov,
    Operand,
    Reg,
    Ret,
    Store,
    UnOp,
)


class IRBuilder:
    """Append-only instruction emitter bound to one :class:`Function`."""

    def __init__(self, func: Function):
        self.func = func
        self._block: Optional[BasicBlock] = None

    # -- block management ----------------------------------------------------
    def new_block(self, hint: str = "L") -> BasicBlock:
        return self.func.add_block(self.func.new_label(hint))

    def position_at(self, block: BasicBlock) -> None:
        self._block = block

    @property
    def block(self) -> BasicBlock:
        if self._block is None:
            raise IRError("builder has no current block")
        return self._block

    @property
    def terminated(self) -> bool:
        """True when the current block already ends in a terminator."""
        instrs = self.block.instrs
        return bool(instrs) and instrs[-1].is_terminator

    def emit(self, instr: Instr) -> Instr:
        if self.terminated:
            raise IRError(
                f"emitting {instr!r} after terminator in "
                f"{self.block.label}"
            )
        self.block.instrs.append(instr)
        return instr

    # -- value helpers ---------------------------------------------------------
    def const(self, value: int) -> Const:
        return Const(value)

    def mov(self, src: Operand, name: str = "") -> Reg:
        dst = self.func.new_reg(name)
        self.emit(Mov(dst, src))
        return dst

    def mov_to(self, dst: Reg, src: Operand) -> Reg:
        self.emit(Mov(dst, src))
        return dst

    def binop(self, op: str, a: Operand, b: Operand, name: str = "") -> Reg:
        dst = self.func.new_reg(name)
        self.emit(BinOp(op, dst, a, b))
        return dst

    def unop(self, op: str, a: Operand, name: str = "") -> Reg:
        dst = self.func.new_reg(name)
        self.emit(UnOp(op, dst, a))
        return dst

    def load(
        self,
        base: Reg,
        disp: int,
        width: int,
        signed: bool = True,
        name: str = "",
    ) -> Reg:
        dst = self.func.new_reg(name)
        self.emit(Load(dst, base, disp, width, signed))
        return dst

    def store(self, base: Reg, disp: int, src: Operand, width: int) -> None:
        self.emit(Store(base, disp, src, width))

    def frameaddr(self, slot: str, name: str = "") -> Reg:
        dst = self.func.new_reg(name)
        self.emit(FrameAddr(dst, slot))
        return dst

    def globaladdr(self, global_name: str, name: str = "") -> Reg:
        dst = self.func.new_reg(name)
        self.emit(GlobalAddr(dst, global_name))
        return dst

    def call(self, func_name: str, args, want_value: bool) -> Optional[Reg]:
        dst = self.func.new_reg() if want_value else None
        self.emit(Call(dst, func_name, args))
        return dst

    # -- control flow ------------------------------------------------------------
    def jump(self, target: BasicBlock) -> None:
        self.emit(Jump(target.label))

    def branch(
        self,
        rel: str,
        a: Operand,
        b: Operand,
        iftrue: BasicBlock,
        iffalse: BasicBlock,
    ) -> None:
        self.emit(CondJump(rel, a, b, iftrue.label, iffalse.label))

    def ret(self, value: Optional[Operand] = None) -> None:
        self.emit(Ret(value))
