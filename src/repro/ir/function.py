"""Basic blocks, functions, globals and modules.

A :class:`Function` owns its blocks in layout order; the first block is the
entry.  Control-flow successors are derived from each block's terminator,
so there is no separate edge structure to keep in sync — analyses that need
predecessors build them on demand (see :mod:`repro.analysis.cfgutil`).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import IRError
from repro.ir.rtl import CondJump, Instr, Jump, Reg, Ret


class BasicBlock:
    """A labelled straight-line sequence of instructions.

    The final instruction must be a terminator (:class:`Jump`,
    :class:`CondJump` or :class:`Ret`); the verifier enforces this.
    """

    __slots__ = ("label", "instrs")

    def __init__(self, label: str, instrs: Optional[List[Instr]] = None):
        self.label = label
        self.instrs: List[Instr] = list(instrs) if instrs else []

    @property
    def terminator(self) -> Instr:
        if not self.instrs:
            raise IRError(f"block {self.label} is empty")
        term = self.instrs[-1]
        if not term.is_terminator:
            raise IRError(f"block {self.label} lacks a terminator")
        return term

    @property
    def body(self) -> List[Instr]:
        """All instructions except the terminator (if present)."""
        if self.instrs and self.instrs[-1].is_terminator:
            return self.instrs[:-1]
        return list(self.instrs)

    def successors(self) -> List[str]:
        """Labels this block can transfer control to."""
        term = self.terminator
        if isinstance(term, Jump):
            return [term.target]
        if isinstance(term, CondJump):
            if term.iftrue == term.iffalse:
                return [term.iftrue]
            return [term.iftrue, term.iffalse]
        return []  # Ret

    def retarget(self, old: str, new: str) -> None:
        """Replace every successor edge ``old`` with ``new``."""
        term = self.terminator
        if isinstance(term, Jump):
            if term.target == old:
                term.target = new
        elif isinstance(term, CondJump):
            if term.iftrue == old:
                term.iftrue = new
            if term.iffalse == old:
                term.iffalse = new

    def __repr__(self) -> str:
        return f"<BasicBlock {self.label}: {len(self.instrs)} instrs>"


class Function:
    """A compiled function: parameters, frame slots, and basic blocks."""

    def __init__(self, name: str, params: Optional[List[Reg]] = None):
        self.name = name
        self.params: List[Reg] = list(params) if params else []
        self.blocks: List[BasicBlock] = []
        # Frame slots: name -> (size_bytes, align_bytes).  Used for local
        # arrays and address-taken locals.
        self.frame_slots: Dict[str, Tuple[int, int]] = {}
        self._next_reg = max((p.index for p in self.params), default=-1) + 1
        self._next_label = 0

    # -- construction --------------------------------------------------------
    def new_reg(self, name: str = "") -> Reg:
        reg = Reg(self._next_reg, name)
        self._next_reg += 1
        return reg

    def reserve_reg_index(self, index: int) -> None:
        """Ensure future :meth:`new_reg` calls return indices above ``index``."""
        if index >= self._next_reg:
            self._next_reg = index + 1

    def new_label(self, hint: str = "L") -> str:
        label = f"{hint}{self._next_label}"
        self._next_label += 1
        while any(b.label == label for b in self.blocks):
            label = f"{hint}{self._next_label}"
            self._next_label += 1
        return label

    def add_block(
        self, label: str, instrs: Optional[List[Instr]] = None,
        after: Optional[str] = None,
    ) -> BasicBlock:
        if any(b.label == label for b in self.blocks):
            raise IRError(f"duplicate block label {label!r} in {self.name}")
        block = BasicBlock(label, instrs)
        if after is None:
            self.blocks.append(block)
        else:
            index = self.block_index(after) + 1
            self.blocks.insert(index, block)
        return block

    def add_frame_slot(self, name: str, size: int, align: int = 8) -> str:
        """Register a stack slot; returns the (possibly uniquified) name."""
        base = name
        counter = 1
        while name in self.frame_slots:
            name = f"{base}.{counter}"
            counter += 1
        self.frame_slots[name] = (size, align)
        return name

    # -- lookup ---------------------------------------------------------------
    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise IRError(f"function {self.name} has no blocks")
        return self.blocks[0]

    def block(self, label: str) -> BasicBlock:
        for b in self.blocks:
            if b.label == label:
                return b
        raise IRError(f"no block {label!r} in function {self.name}")

    def has_block(self, label: str) -> bool:
        return any(b.label == label for b in self.blocks)

    def block_index(self, label: str) -> int:
        for i, b in enumerate(self.blocks):
            if b.label == label:
                return i
        raise IRError(f"no block {label!r} in function {self.name}")

    def remove_block(self, label: str) -> None:
        self.blocks.pop(self.block_index(label))

    def iter_instrs(self) -> Iterator[Instr]:
        for block in self.blocks:
            yield from block.instrs

    def max_reg_index(self) -> int:
        highest = max((p.index for p in self.params), default=-1)
        for instr in self.iter_instrs():
            for reg in instr.uses() + instr.defs():
                highest = max(highest, reg.index)
        return highest

    def __repr__(self) -> str:
        return f"<Function {self.name}: {len(self.blocks)} blocks>"


class GlobalVar:
    """A module-level variable.

    ``init`` is optional initial contents (bytes); uninitialized globals are
    zero-filled by the simulator, like BSS.
    """

    __slots__ = ("name", "size", "align", "init")

    def __init__(
        self, name: str, size: int, align: int = 8,
        init: Optional[bytes] = None,
    ):
        if size <= 0:
            raise IRError(f"global {name!r} must have positive size")
        if init is not None and len(init) > size:
            raise IRError(f"initializer for {name!r} larger than the var")
        self.name = name
        self.size = size
        self.align = align
        self.init = init

    def __repr__(self) -> str:
        return f"<GlobalVar {self.name}[{self.size}] align={self.align}>"


class Module:
    """A translation unit: functions plus globals."""

    def __init__(self, name: str = "module"):
        self.name = name
        self.functions: Dict[str, Function] = {}
        self.globals: Dict[str, GlobalVar] = {}

    def add_function(self, func: Function) -> Function:
        if func.name in self.functions:
            raise IRError(f"duplicate function {func.name!r}")
        self.functions[func.name] = func
        return func

    def add_global(self, var: GlobalVar) -> GlobalVar:
        if var.name in self.globals:
            raise IRError(f"duplicate global {var.name!r}")
        self.globals[var.name] = var
        return var

    def function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise IRError(f"no function {name!r} in module") from None

    def __iter__(self) -> Iterator[Function]:
        return iter(self.functions.values())

    def __repr__(self) -> str:
        return (
            f"<Module {self.name}: {len(self.functions)} functions, "
            f"{len(self.globals)} globals>"
        )


def clone_blocks(
    func: Function,
    labels: Iterable[str],
    label_map: Dict[str, str],
) -> List[BasicBlock]:
    """Deep-copy the blocks named in ``labels``.

    ``label_map`` maps old labels to the labels the copies should use;
    successor edges *within the copied set* are retargeted to the copies,
    edges that leave the set are preserved.  The copied blocks are returned
    but NOT added to the function; callers decide placement.
    """
    copies: List[BasicBlock] = []
    for label in labels:
        source = func.block(label)
        copy = BasicBlock(label_map[label], [i.clone() for i in source.instrs])
        copies.append(copy)
    for copy in copies:
        term = copy.terminator
        if isinstance(term, Jump):
            term.target = label_map.get(term.target, term.target)
        elif isinstance(term, CondJump):
            term.iftrue = label_map.get(term.iftrue, term.iftrue)
            term.iffalse = label_map.get(term.iffalse, term.iffalse)
    return copies
