"""Parser for the RTL text format produced by :mod:`repro.ir.printer`.

The format is line oriented; ``#`` starts a comment that runs to the end of
the line.  See the printer's module docstring for a full example.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.errors import ParseError
from repro.ir.rtl import (
    BIN_OPS,
    RELATIONS,
    UN_OPS,
    BinOp,
    Call,
    CondJump,
    Const,
    Extract,
    FrameAddr,
    GlobalAddr,
    Insert,
    Jump,
    Load,
    Mov,
    Operand,
    Reg,
    Ret,
    Store,
    UnOp,
)
from repro.ir.function import Function, GlobalVar, Module

_REG_RE = re.compile(r"^r(\d+)$")
_INT_RE = re.compile(r"^-?(?:0[xX][0-9a-fA-F]+|\d+)$")
_ADDR_RE = re.compile(r"^\[\s*r(\d+)\s*(?:([+-])\s*(\d+)\s*)?\]$")
_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):$")
_FUNC_RE = re.compile(r"^func\s+([A-Za-z_]\w*)\s*\(([^)]*)\)\s*\{$")
_GLOBAL_RE = re.compile(
    r"^global\s+([A-Za-z_]\w*)\[(\d+)\](?:\s+align\s+(\d+))?$"
)
_FRAME_RE = re.compile(
    r"^frame\s+([A-Za-z_.][\w.]*)\[(\d+)\](?:\s+align\s+(\d+))?$"
)
_MEM_OP_RE = re.compile(r"^(u?load)\.([1248])([su])$")
_STORE_RE = re.compile(r"^(u?store)\.([1248])$")
_EXT_RE = re.compile(r"^ext\.([1248])([su])$")
_INS_RE = re.compile(r"^ins\.([1248])$")
_CALL_RE = re.compile(r"^call\s+([A-Za-z_]\w*)\s*\(([^)]*)\)$")


def _parse_operand(text: str, line_no: int) -> Operand:
    text = text.strip()
    match = _REG_RE.match(text)
    if match:
        return Reg(int(match.group(1)))
    if _INT_RE.match(text):
        return Const(int(text, 0))
    raise ParseError(f"bad operand {text!r}", line_no)


def _parse_reg(text: str, line_no: int) -> Reg:
    operand = _parse_operand(text, line_no)
    if not isinstance(operand, Reg):
        raise ParseError(f"expected a register, got {text!r}", line_no)
    return operand


def _parse_addr(text: str, line_no: int) -> Tuple[Reg, int]:
    match = _ADDR_RE.match(text.strip())
    if not match:
        raise ParseError(f"bad address {text!r}", line_no)
    base = Reg(int(match.group(1)))
    disp = 0
    if match.group(3) is not None:
        disp = int(match.group(3))
        if match.group(2) == "-":
            disp = -disp
    return base, disp


def _split_args(text: str) -> List[str]:
    text = text.strip()
    if not text:
        return []
    return [part.strip() for part in text.split(",")]


def _parse_rhs(dst: Reg, rhs: str, line_no: int):
    """Parse the right-hand side of a ``rX = ...`` line."""
    rhs = rhs.strip()
    # Call: "call f(a, b)"
    call_match = _CALL_RE.match(rhs)
    if call_match:
        args = [
            _parse_operand(a, line_no)
            for a in _split_args(call_match.group(2))
        ]
        return Call(dst, call_match.group(1), args)

    head, _, rest = rhs.partition(" ")
    mem = _MEM_OP_RE.match(head)
    if mem:
        base, disp = _parse_addr(rest, line_no)
        return Load(
            dst,
            base,
            disp,
            int(mem.group(2)),
            signed=mem.group(3) == "s",
            unaligned=mem.group(1) == "uload",
        )
    ext = _EXT_RE.match(head)
    if ext:
        parts = _split_args(rest)
        if len(parts) != 2 or not parts[1].startswith("pos="):
            raise ParseError(f"bad ext operands {rest!r}", line_no)
        return Extract(
            dst,
            _parse_reg(parts[0], line_no),
            _parse_operand(parts[1][4:], line_no),
            int(ext.group(1)),
            signed=ext.group(2) == "s",
        )
    ins = _INS_RE.match(head)
    if ins:
        parts = _split_args(rest)
        if len(parts) != 3 or not parts[2].startswith("pos="):
            raise ParseError(f"bad ins operands {rest!r}", line_no)
        return Insert(
            dst,
            _parse_operand(parts[0], line_no),
            _parse_operand(parts[1], line_no),
            _parse_operand(parts[2][4:], line_no),
            int(ins.group(1)),
        )
    if head == "frameaddr":
        return FrameAddr(dst, rest.strip())
    if head == "globaladdr":
        return GlobalAddr(dst, rest.strip())
    if head in BIN_OPS:
        parts = _split_args(rest)
        if len(parts) != 2:
            raise ParseError(f"{head} needs two operands", line_no)
        return BinOp(
            head,
            dst,
            _parse_operand(parts[0], line_no),
            _parse_operand(parts[1], line_no),
        )
    if head in UN_OPS:
        return UnOp(head, dst, _parse_operand(rest, line_no))
    # Plain move: "rX = rY" or "rX = 5"
    return Mov(dst, _parse_operand(rhs, line_no))


def _parse_instr(text: str, line_no: int):
    text = text.strip()
    if text.startswith("store.") or text.startswith("ustore."):
        head, _, rest = text.partition(" ")
        match = _STORE_RE.match(head)
        if not match:
            raise ParseError(f"bad store mnemonic {head!r}", line_no)
        addr_text, _, src_text = rest.rpartition(",")
        if not addr_text:
            raise ParseError("store needs an address and a source", line_no)
        base, disp = _parse_addr(addr_text, line_no)
        return Store(
            base,
            disp,
            _parse_operand(src_text, line_no),
            int(match.group(2)),
            unaligned=match.group(1) == "ustore",
        )
    if text.startswith("jump "):
        return Jump(text[5:].strip())
    if text.startswith("br "):
        rest = text[3:].strip()
        rel, _, operands = rest.partition(" ")
        if rel not in RELATIONS:
            raise ParseError(f"unknown relation {rel!r}", line_no)
        parts = _split_args(operands)
        if len(parts) != 4:
            raise ParseError("br needs: rel a, b, iftrue, iffalse", line_no)
        return CondJump(
            rel,
            _parse_operand(parts[0], line_no),
            _parse_operand(parts[1], line_no),
            parts[2],
            parts[3],
        )
    if text == "ret":
        return Ret(None)
    if text.startswith("ret "):
        return Ret(_parse_operand(text[4:], line_no))
    call_match = _CALL_RE.match(text)
    if call_match:
        args = [
            _parse_operand(a, line_no)
            for a in _split_args(call_match.group(2))
        ]
        return Call(None, call_match.group(1), args)
    dst_text, eq, rhs = text.partition("=")
    if eq and _REG_RE.match(dst_text.strip()):
        return _parse_rhs(_parse_reg(dst_text, line_no), rhs, line_no)
    raise ParseError(f"cannot parse instruction {text!r}", line_no)


def parse_module(source: str, name: str = "module") -> Module:
    """Parse a textual module back into IR objects."""
    module = Module(name)
    func: Optional[Function] = None
    current_label: Optional[str] = None

    for line_no, raw in enumerate(source.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("module "):
            module.name = line[7:].strip()
            continue
        global_match = _GLOBAL_RE.match(line)
        if global_match and func is None:
            module.add_global(
                GlobalVar(
                    global_match.group(1),
                    int(global_match.group(2)),
                    int(global_match.group(3) or 8),
                )
            )
            continue
        func_match = _FUNC_RE.match(line)
        if func_match:
            if func is not None:
                raise ParseError("nested func", line_no)
            params = [
                _parse_reg(p, line_no)
                for p in _split_args(func_match.group(2))
            ]
            func = Function(func_match.group(1), params)
            current_label = None
            continue
        if line == "}":
            if func is None:
                raise ParseError("unmatched '}'", line_no)
            func.reserve_reg_index(func.max_reg_index())
            module.add_function(func)
            func = None
            continue
        if func is None:
            raise ParseError(f"statement outside a function: {line!r}", line_no)
        frame_match = _FRAME_RE.match(line)
        if frame_match:
            func.frame_slots[frame_match.group(1)] = (
                int(frame_match.group(2)),
                int(frame_match.group(3) or 8),
            )
            continue
        label_match = _LABEL_RE.match(line)
        if label_match:
            current_label = label_match.group(1)
            func.add_block(current_label)
            continue
        if current_label is None:
            raise ParseError("instruction before any block label", line_no)
        func.block(current_label).instrs.append(_parse_instr(line, line_no))

    if func is not None:
        raise ParseError("missing closing '}'", len(source.splitlines()))
    return module
