"""Textual form of the RTL IR.

The format is designed to round-trip through :mod:`repro.ir.parser`, so
tests and examples can express IR fragments as readable text::

    module dotprod

    global image[250000] align 8

    func dot(r0, r1, r2) {
    entry:
        r3 = 0
        jump loop
    loop:
        r4 = load.2s [r0 + 0]
        r5 = load.2s [r1 + 0]
        r6 = mul r4, r5
        r3 = add r3, r6
        r0 = add r0, 2
        r1 = add r1, 2
        r2 = sub r2, 1
        br gt r2, 0, loop, done
    done:
        ret r3
    }
"""

from __future__ import annotations

from typing import List

from repro.errors import IRError
from repro.ir.rtl import (
    BinOp,
    Call,
    CondJump,
    Const,
    Extract,
    FrameAddr,
    GlobalAddr,
    Insert,
    Instr,
    Jump,
    Load,
    Mov,
    Operand,
    Reg,
    Ret,
    Store,
    UnOp,
)
from repro.ir.function import Function, Module


def format_operand(value: Operand) -> str:
    if isinstance(value, Reg):
        return f"r{value.index}"
    if isinstance(value, Const):
        return str(value.value)
    raise IRError(f"cannot format operand {value!r}")


def _addr(base: Reg, disp: int) -> str:
    if disp == 0:
        return f"[{format_operand(base)}]"
    sign = "+" if disp >= 0 else "-"
    return f"[{format_operand(base)} {sign} {abs(disp)}]"


def format_instr(instr: Instr) -> str:
    """Render one instruction in the textual format."""
    if isinstance(instr, Mov):
        return f"{format_operand(instr.dst)} = {format_operand(instr.src)}"
    if isinstance(instr, BinOp):
        return (
            f"{format_operand(instr.dst)} = {instr.op} "
            f"{format_operand(instr.a)}, {format_operand(instr.b)}"
        )
    if isinstance(instr, UnOp):
        return (
            f"{format_operand(instr.dst)} = {instr.op} "
            f"{format_operand(instr.a)}"
        )
    if isinstance(instr, Load):
        mnemonic = "uload" if instr.unaligned else "load"
        sign = "s" if instr.signed else "u"
        return (
            f"{format_operand(instr.dst)} = {mnemonic}.{instr.width}{sign} "
            f"{_addr(instr.base, instr.disp)}"
        )
    if isinstance(instr, Store):
        mnemonic = "ustore" if instr.unaligned else "store"
        return (
            f"{mnemonic}.{instr.width} {_addr(instr.base, instr.disp)}, "
            f"{format_operand(instr.src)}"
        )
    if isinstance(instr, Extract):
        sign = "s" if instr.signed else "u"
        return (
            f"{format_operand(instr.dst)} = ext.{instr.width}{sign} "
            f"{format_operand(instr.src)}, pos={format_operand(instr.pos)}"
        )
    if isinstance(instr, Insert):
        return (
            f"{format_operand(instr.dst)} = ins.{instr.width} "
            f"{format_operand(instr.acc)}, {format_operand(instr.src)}, "
            f"pos={format_operand(instr.pos)}"
        )
    if isinstance(instr, FrameAddr):
        return f"{format_operand(instr.dst)} = frameaddr {instr.slot}"
    if isinstance(instr, GlobalAddr):
        return f"{format_operand(instr.dst)} = globaladdr {instr.name}"
    if isinstance(instr, Call):
        args = ", ".join(format_operand(a) for a in instr.args)
        call = f"call {instr.func}({args})"
        if instr.dst is not None:
            return f"{format_operand(instr.dst)} = {call}"
        return call
    if isinstance(instr, Jump):
        return f"jump {instr.target}"
    if isinstance(instr, CondJump):
        return (
            f"br {instr.rel} {format_operand(instr.a)}, "
            f"{format_operand(instr.b)}, {instr.iftrue}, {instr.iffalse}"
        )
    if isinstance(instr, Ret):
        if instr.value is None:
            return "ret"
        return f"ret {format_operand(instr.value)}"
    raise IRError(f"cannot format instruction {type(instr).__name__}")


def format_function(func: Function) -> str:
    """Render a whole function."""
    params = ", ".join(f"r{p.index}" for p in func.params)
    lines: List[str] = [f"func {func.name}({params}) {{"]
    for slot, (size, align) in sorted(func.frame_slots.items()):
        lines.append(f"    frame {slot}[{size}] align {align}")
    for block in func.blocks:
        lines.append(f"{block.label}:")
        for instr in block.instrs:
            lines.append(f"    {format_instr(instr)}")
    lines.append("}")
    return "\n".join(lines)


def format_module(module: Module) -> str:
    """Render a whole module."""
    lines: List[str] = [f"module {module.name}", ""]
    for var in module.globals.values():
        lines.append(f"global {var.name}[{var.size}] align {var.align}")
    if module.globals:
        lines.append("")
    for func in module:
        lines.append(format_function(func))
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"
