"""Execution substrate: memory, caches, RTL interpreter, cost model.

The paper measured wall-clock time on real DEC Alpha, Motorola 88100 and
Motorola 68030 machines.  We have none of those, so this package provides
the substitute: RTL programs run in a byte-accurate interpreter (or the
faster RTL-to-Python translator) that counts block executions and memory
traffic, and a trace-driven cost model converts those counts into cycles
using each machine's latencies, issue width and caches.
"""

from repro.sim.memory import SimMemory
from repro.sim.cache import DirectMappedCache
from repro.sim.interp import Interpreter, RunStats
from repro.sim.costs import CycleReport, cycle_report
from repro.sim.runner import Simulator

__all__ = [
    "CycleReport",
    "DirectMappedCache",
    "Interpreter",
    "RunStats",
    "SimMemory",
    "Simulator",
    "cycle_report",
]
