"""Execution substrate: memory, caches, RTL interpreter, cost model.

The paper measured wall-clock time on real DEC Alpha, Motorola 88100 and
Motorola 68030 machines.  We have none of those, so this package provides
the substitute: RTL programs run in a byte-accurate interpreter — or one
of two translating engines, including the block-compiling ``compiled``
backend — that counts block executions and memory traffic, and a
trace-driven cost model converts those counts into cycles using each
machine's latencies, issue width and caches.
"""

from repro.sim.memory import SimMemory
from repro.sim.cache import BlockCache, DirectMappedCache, shared_block_cache
from repro.sim.interp import Interpreter, RunStats, layout_code
from repro.sim.costs import CycleReport, cycle_report, instructions_per_second
from repro.sim.runner import (
    SIM_BACKENDS,
    Simulator,
    default_sim_backend,
)
from repro.sim.translate import CompiledEngine, TranslatedEngine

__all__ = [
    "BlockCache",
    "CompiledEngine",
    "CycleReport",
    "DirectMappedCache",
    "Interpreter",
    "RunStats",
    "SIM_BACKENDS",
    "SimMemory",
    "Simulator",
    "TranslatedEngine",
    "cycle_report",
    "default_sim_backend",
    "instructions_per_second",
    "layout_code",
    "shared_block_cache",
]
