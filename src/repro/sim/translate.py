"""RTL-to-Python translation: the simulator's fast engines.

The reference interpreter dispatches instruction objects; the engines
here instead *compile* RTL into specialized Python and let CPython
execute it.  Semantics are identical by construction of the generated
expressions — and by the differential tests (and the CI
``sim-differential`` matrix) that run the engines over the same
programs.

Two compilation granularities:

* :class:`TranslatedEngine` lowers each RTL *function* into one Python
  function: registers become locals, blocks become branches of a
  dispatch loop.  Fastest, but monolithic — nothing is shared between
  modules and a function is retranslated for every engine instance.
* :class:`CompiledEngine` — the ``compiled`` simulator backend — lowers
  each *basic block* once into a straight-line closure with operand
  accessors resolved and memory/cache accounting inlined at translate
  time, caches the compiled block by fingerprint in
  :class:`repro.sim.cache.BlockCache`, and dispatches block-to-block
  with a direct-threaded loop: each closure returns its successor's
  closure, so the driver never consults a label table.

Dynamic counts: the generated code only increments a per-block execution
counter (plus cache probes when cache simulation is on); instruction,
load, store and call totals are recovered afterwards from the static
per-block mix, which is exact because block composition is static.

Signedness without branches: for a word ``v`` stored unsigned,
``(v ^ SIGN) - SIGN`` is its two's-complement value — used for signed
compares, arithmetic shifts and extensions.
"""

from __future__ import annotations

import sys
from typing import Dict, List, Optional, Tuple

from repro.errors import AlignmentTrap, SimulationError, SimulationTimeout
from repro.ir.function import Function, Module
from repro.ir.rtl import (
    BinOp,
    Call,
    CondJump,
    Const,
    Extract,
    FrameAddr,
    GlobalAddr,
    Insert,
    Jump,
    Load,
    Mov,
    Operand,
    Reg,
    Ret,
    Store,
    UnOp,
)
from repro.machine.machine import MachineDescription
from repro.sim.cache import (
    BlockCache,
    CellCountedCache,
    DirectMappedCache,
    shared_block_cache,
)
from repro.sim.interp import RunStats, field_parameters, layout_code
from repro.sim.memory import GUARD_BYTES, SimMemory

_SIGNED_RELS = {"lt": "<", "le": "<=", "gt": ">", "ge": ">="}
_UNSIGNED_RELS = {
    "eq": "==", "ne": "!=", "ltu": "<", "leu": "<=", "gtu": ">",
    "geu": ">=",
}


def _runtime_helpers(machine: MachineDescription) -> Dict[str, object]:
    """Shared runtime bindings for generated code: division with machine
    semantics, trap/fault raisers, field-shift computation."""
    bits = machine.word_bits
    mask = machine.word_mask

    def _sdiv_base(a: int, b: int, want_rem: bool) -> int:
        sign = 1 << (bits - 1)
        sa = (a ^ sign) - sign
        sb = (b ^ sign) - sign
        if sb == 0:
            raise SimulationError("integer division by zero")
        quotient = abs(sa) // abs(sb)
        if (sa < 0) != (sb < 0):
            quotient = -quotient
        if want_rem:
            return (sa - quotient * sb) & mask
        return quotient & mask

    def _udiv_base(a: int, b: int, want_rem: bool) -> int:
        if b == 0:
            raise SimulationError("integer division by zero")
        return (a % b if want_rem else a // b) & mask

    def _trap(addr: int, width: int):
        raise AlignmentTrap(addr, width)

    def _fault(addr: int):
        raise SimulationError(f"bad address {addr:#x}")

    def _fieldshift(pos: int, width: int) -> int:
        shift, _ = field_parameters(machine, pos, width)
        return shift

    def _fell(func_name: str, label: str):
        raise SimulationError(
            f"block {func_name}/{label} fell off the end"
        )

    def _mg(addr: int, width: int):
        """Memory-guard slow path: the generated code folds alignment
        and bounds into one conditional; this re-distinguishes them in
        the interpreter's order (alignment trap first)."""
        if addr % width:
            raise AlignmentTrap(addr, width)
        raise SimulationError(f"bad address {addr:#x}")

    return {
        "_mg": _mg,
        "_div": lambda a, b: _sdiv_base(a, b, False),
        "_rem": lambda a, b: _sdiv_base(a, b, True),
        "_divu": lambda a, b: _udiv_base(a, b, False),
        "_remu": lambda a, b: _udiv_base(a, b, True),
        "_trap": _trap,
        "_fault": _fault,
        "_fieldshift": _fieldshift,
        "_fell": _fell,
        "_SimulationError": SimulationError,
        "_Timeout": SimulationTimeout,
    }


def _static_block_mix(block) -> Tuple[int, int, int, int]:
    """(instructions, loads, stores, calls) — the static composition used
    to reconstruct dynamic totals from per-block execution counts."""
    loads = stores = calls = 0
    for instr in block.instrs:
        kind = type(instr)
        if kind is Load:
            loads += 1
        elif kind is Store:
            stores += 1
        elif kind is Call:
            calls += 1
    return (len(block.instrs), loads, stores, calls)


def _derive_stats(keys, counts, mixes) -> RunStats:
    stats = RunStats()
    for key, count, mix in zip(keys, counts, mixes):
        if count:
            stats.block_counts[key] = count
            stats.instr_count += count * mix[0]
            stats.load_count += count * mix[1]
            stats.store_count += count * mix[2]
            stats.call_count += count * mix[3]
    return stats


class _FunctionTranslator:
    """Emits the Python source for one RTL function."""

    def __init__(self, func: Function, engine: "TranslatedEngine"):
        self.func = func
        self.engine = engine
        self.machine = engine.machine
        self.lines: List[str] = []
        self.bits = self.machine.word_bits
        self.mask = self.machine.word_mask
        self.sign = 1 << (self.bits - 1)

    # -- small emit helpers ---------------------------------------------------
    def emit(self, depth: int, text: str) -> None:
        self.lines.append("    " * depth + text)

    def _reg(self, reg: Reg) -> str:
        return f"r{reg.index}"

    def _value(self, op: Operand) -> str:
        if isinstance(op, Reg):
            return self._reg(op)
        return str(op.value & self.mask)

    def _signed(self, expression: str) -> str:
        return f"(({expression} ^ {self.sign}) - {self.sign})"

    # -- instruction translation -------------------------------------------------
    def _binop(self, instr: BinOp) -> str:
        dst = self._reg(instr.dst)
        a = self._value(instr.a)
        b = self._value(instr.b)
        op = instr.op
        mask = self.mask
        if op in ("add", "sub", "mul"):
            sign = {"add": "+", "sub": "-", "mul": "*"}[op]
            return f"{dst} = ({a} {sign} {b}) & {mask}"
        if op in ("and", "or", "xor"):
            sign = {"and": "&", "or": "|", "xor": "^"}[op]
            return f"{dst} = {a} {sign} {b}"
        if op == "shl":
            return f"{dst} = ({a} << ({b} & {self.bits - 1})) & {mask}"
        if op == "shrl":
            return f"{dst} = {a} >> ({b} & {self.bits - 1})"
        if op == "shra":
            return (
                f"{dst} = ({self._signed(a)} >> ({b} & {self.bits - 1}))"
                f" & {mask}"
            )
        if op in ("div", "rem", "divu", "remu"):
            return f"{dst} = _{op}({a}, {b})"
        raise SimulationError(f"cannot translate op {op!r}")

    def _unop(self, instr: UnOp) -> str:
        dst = self._reg(instr.dst)
        a = self._value(instr.a)
        if instr.op == "neg":
            return f"{dst} = (-{a}) & {self.mask}"
        if instr.op == "not":
            return f"{dst} = (~{a}) & {self.mask}"
        width = int(instr.op[4:])
        low_mask = (1 << (8 * width)) - 1
        if instr.op[0] == "z":
            return f"{dst} = {a} & {low_mask}"
        field_sign = 1 << (8 * width - 1)
        return (
            f"{dst} = ((({a} & {low_mask}) ^ {field_sign}) - {field_sign})"
            f" & {self.mask}"
        )

    def _address(self, base: Reg, disp: int) -> str:
        if disp:
            return f"(({self._reg(base)} + {disp}) & {self.mask})"
        return self._reg(base)

    def _memory_guard(self, depth: int, addr_var: str, width: int,
                      unaligned: bool) -> None:
        if unaligned:
            self.emit(depth, f"{addr_var} &= {~(width - 1) & self.mask}")
        else:
            self.emit(
                depth,
                f"if {addr_var} % {width}: _trap({addr_var}, {width})",
            )
        self.emit(
            depth,
            f"if {addr_var} < {GUARD_BYTES} or "
            f"{addr_var} + {width} > _MEMSIZE: _fault({addr_var})",
        )
        if self.engine.dcache is not None:
            self.emit(depth, f"_dc({addr_var} & {~(width - 1) & self.mask})")

    def _load(self, depth: int, instr: Load) -> None:
        addr_var = "_a"
        self.emit(depth, f"{addr_var} = {self._address(instr.base, instr.disp)}")
        self._memory_guard(depth, addr_var, instr.width, instr.unaligned)
        endian = repr(self.machine.endian)
        raw = (
            f"int.from_bytes(_mem[{addr_var}:{addr_var} + {instr.width}], "
            f"{endian})"
        )
        dst = self._reg(instr.dst)
        if instr.signed and instr.width < self.machine.word_bytes:
            field_sign = 1 << (8 * instr.width - 1)
            self.emit(
                depth,
                f"{dst} = (({raw} ^ {field_sign}) - {field_sign}) & "
                f"{self.mask}",
            )
        elif instr.signed and instr.width == self.machine.word_bytes:
            self.emit(depth, f"{dst} = {raw}")
        else:
            self.emit(depth, f"{dst} = {raw}")

    def _store(self, depth: int, instr: Store) -> None:
        addr_var = "_a"
        self.emit(depth, f"{addr_var} = {self._address(instr.base, instr.disp)}")
        self._memory_guard(depth, addr_var, instr.width, instr.unaligned)
        endian = repr(self.machine.endian)
        width_mask = (1 << (8 * instr.width)) - 1
        self.emit(
            depth,
            f"_mem[{addr_var}:{addr_var} + {instr.width}] = "
            f"(({self._value(instr.src)}) & {width_mask})"
            f".to_bytes({instr.width}, {endian})",
        )

    def _extract(self, depth: int, instr: Extract) -> None:
        dst = self._reg(instr.dst)
        src = self._reg(instr.src)
        field_mask = (1 << (8 * instr.width)) - 1
        if isinstance(instr.pos, Const):
            shift, _ = field_parameters(
                self.machine, instr.pos.value, instr.width
            )
            if shift:
                expression = f"({src} >> {shift}) & {field_mask}"
            else:
                expression = f"{src} & {field_mask}"
        else:
            self.emit(
                depth,
                f"_sh = _fieldshift({self._value(instr.pos)}, "
                f"{instr.width})",
            )
            expression = f"({src} >> _sh) & {field_mask}"
        if instr.signed:
            field_sign = 1 << (8 * instr.width - 1)
            self.emit(
                depth,
                f"{dst} = ((({expression}) ^ {field_sign}) - {field_sign})"
                f" & {self.mask}",
            )
        else:
            self.emit(depth, f"{dst} = {expression}")

    def _insert(self, depth: int, instr: Insert) -> None:
        dst = self._reg(instr.dst)
        acc = self._value(instr.acc)
        src = self._value(instr.src)
        field_mask = (1 << (8 * instr.width)) - 1
        if isinstance(instr.pos, Const):
            shift, _ = field_parameters(
                self.machine, instr.pos.value, instr.width
            )
            hole = ~(field_mask << shift) & self.mask
            field = f"({src} & {field_mask})"
            if shift:
                field = f"({field} << {shift})"
            if acc == "0":
                # Inserting into a zero accumulator: the hole term is
                # identically zero and folds away.
                self.emit(depth, f"{dst} = {field}")
            else:
                self.emit(depth, f"{dst} = ({acc} & {hole}) | {field}")
        else:
            self.emit(
                depth,
                f"_sh = _fieldshift({self._value(instr.pos)}, "
                f"{instr.width})",
            )
            self.emit(
                depth,
                f"{dst} = ({acc} & ~({field_mask} << _sh) & {self.mask})"
                f" | (({src} & {field_mask}) << _sh)",
            )

    def _condition(self, instr: CondJump) -> str:
        a = self._value(instr.a)
        b = self._value(instr.b)
        if instr.rel in _UNSIGNED_RELS:
            return f"{a} {_UNSIGNED_RELS[instr.rel]} {b}"
        return (
            f"{self._signed(a)} {_SIGNED_RELS[instr.rel]} "
            f"{self._signed(b)}"
        )

    # -- function assembly ------------------------------------------------------
    def translate(self) -> str:
        func = self.func
        params = ", ".join(f"r{p.index}" for p in func.params)
        self.emit(0, f"def _fn({params}):")
        used = self._used_registers()
        param_indices = {p.index for p in func.params}
        init = [f"r{i} = 0" for i in sorted(used - param_indices)]
        for chunk_start in range(0, len(init), 8):
            self.emit(1, "; ".join(init[chunk_start:chunk_start + 8]))
        self.emit(1, "_a = 0")
        self.emit(1, "_mark = _MEM.brk")
        slot_vars: Dict[str, str] = {}
        for number, (slot, (size, align)) in enumerate(
            func.frame_slots.items()
        ):
            var = f"_slot{number}"
            slot_vars[slot] = var
            self.emit(1, f"{var} = _MEM.alloc({size}, {align})")
        self.emit(1, "try:")
        self.emit(2, "_bb = 0")
        self.emit(2, "while True:")

        index_of = {b.label: i for i, b in enumerate(func.blocks)}
        for number, block in enumerate(func.blocks):
            keyword = "if" if number == 0 else "elif"
            self.emit(3, f"{keyword} _bb == {number}:")
            counter = self.engine.register_block(func.name, block)
            self.emit(4, f"_bc[{counter}] += 1")
            if self.engine.icache is not None:
                for line in self.engine.block_lines(func.name, block.label):
                    self.emit(4, f"_ic({line})")
            self._emit_step_guard(4, len(block.instrs), block.label)
            for instr in block.instrs:
                self._emit_instr(4, instr, index_of, slot_vars)
        self.emit(3, "else:")
        self.emit(4, "raise _SimulationError('bad block index')")
        self.emit(1, "finally:")
        self.emit(2, "_MEM.reset_brk(_mark)")
        return "\n".join(self.lines)

    def _emit_step_guard(self, depth: int, count: int, label: str) -> None:
        self.emit(depth, f"_steps[0] += {count}")
        self.emit(
            depth,
            "if _steps[0] > _MAXSTEPS: "
            f"raise _Timeout(_steps[0], _MAXSTEPS, "
            f"{self.func.name!r}, {label!r})",
        )

    def _emit_instr(
        self,
        depth: int,
        instr,
        index_of: Dict[str, int],
        slot_vars: Dict[str, str],
    ) -> None:
        if isinstance(instr, Mov):
            self.emit(
                depth, f"{self._reg(instr.dst)} = {self._value(instr.src)}"
            )
        elif isinstance(instr, BinOp):
            self.emit(depth, self._binop(instr))
        elif isinstance(instr, UnOp):
            self.emit(depth, self._unop(instr))
        elif isinstance(instr, Load):
            self._load(depth, instr)
        elif isinstance(instr, Store):
            self._store(depth, instr)
        elif isinstance(instr, Extract):
            self._extract(depth, instr)
        elif isinstance(instr, Insert):
            self._insert(depth, instr)
        elif isinstance(instr, FrameAddr):
            self.emit(
                depth,
                f"{self._reg(instr.dst)} = {slot_vars[instr.slot]}",
            )
        elif isinstance(instr, GlobalAddr):
            addr = self.engine.global_addrs[instr.name]
            self.emit(depth, f"{self._reg(instr.dst)} = {addr}")
        elif isinstance(instr, Call):
            args = ", ".join(self._value(a) for a in instr.args)
            call = f"_F[{instr.func!r}]({args})"
            if instr.dst is None:
                self.emit(depth, call)
            else:
                self.emit(depth, f"_rv = {call}")
                self.emit(
                    depth,
                    f"{self._reg(instr.dst)} = 0 if _rv is None else "
                    f"_rv & {self.mask}",
                )
        elif isinstance(instr, Jump):
            self.emit(depth, f"_bb = {index_of[instr.target]}")
            self.emit(depth, "continue")
        elif isinstance(instr, CondJump):
            self.emit(
                depth,
                f"_bb = {index_of[instr.iftrue]} if "
                f"({self._condition(instr)}) else "
                f"{index_of[instr.iffalse]}",
            )
            self.emit(depth, "continue")
        elif isinstance(instr, Ret):
            if instr.value is None:
                self.emit(depth, "return None")
            else:
                self.emit(depth, f"return {self._value(instr.value)}")
        else:
            raise SimulationError(
                f"cannot translate {type(instr).__name__}"
            )

    def _used_registers(self) -> set:
        used = set()
        for instr in self.func.iter_instrs():
            for reg in instr.uses() + instr.defs():
                used.add(reg.index)
        return used


class _BlockTranslator(_FunctionTranslator):
    """Emits one basic block as a specialized straight-line closure.

    The closure's signature is ``_blk(_r, _slots)``: ``_r`` is the
    activation's register file (a list), ``_slots`` the tuple of frame
    slot addresses.  Registers the block reads before writing are pulled
    into Python locals once on entry; registers it defines are written
    back to ``_r`` once before handing off to a successor (a mid-block
    ``Ret`` skips the write-back — the activation is dead).  The closure
    returns either the successor block's closure (direct threading) or a
    1-tuple carrying the function's return value, which the driver
    distinguishes with a single ``type(x) is tuple`` check.

    Everything that varies between instantiations of the same source —
    the execution-counter cell ``_n``, I-cache line addresses ``_lN``,
    global addresses ``_gN``, successor closures ``_sN``, the
    function/label strings ``_FN``/``_BL`` — is bound through the exec
    namespace, so the emitted source (and therefore the
    :class:`~repro.sim.cache.BlockCache` fingerprint) is shared by every
    structurally identical block.
    """

    def __init__(self, block, func: Function, engine: "CompiledEngine"):
        super().__init__(func, engine)
        self.block = block
        self.slot_index = {
            slot: i for i, slot in enumerate(func.frame_slots)
        }
        #: namespace var -> successor label, for post-compile patching
        self.successors: Dict[str, str] = {}
        self._succ_vars: Dict[str, str] = {}
        #: namespace var -> global name, resolved to addresses at bind time
        self.globals_used: Dict[str, str] = {}
        self._global_vars: Dict[str, str] = {}
        self._defined: List[int] = []

    def _succ(self, label: str) -> str:
        var = self._succ_vars.get(label)
        if var is None:
            var = f"_s{len(self._succ_vars)}"
            self._succ_vars[label] = var
            self.successors[var] = label
        return var

    def _global(self, name: str) -> str:
        var = self._global_vars.get(name)
        if var is None:
            var = f"_g{len(self._global_vars)}"
            self._global_vars[name] = var
            self.globals_used[var] = name
        return var

    def _fill_registers(self) -> List[int]:
        """Registers read before any write in this block (need filling
        from ``_r``); also records the set written (need spilling)."""
        written: set = set()
        fill: set = set()
        for instr in self.block.instrs:
            for reg in instr.uses():
                if reg.index not in written:
                    fill.add(reg.index)
            for reg in instr.defs():
                written.add(reg.index)
        self._defined = sorted(written)
        return sorted(fill)

    def _emit_spill(self, depth: int) -> None:
        spill = [f"_r[{i}] = r{i}" for i in self._defined]
        for start in range(0, len(spill), 8):
            self.emit(depth, "; ".join(spill[start:start + 8]))

    def _addr_expr(self, depth: int, instr) -> str:
        """Emit (or inline) the effective-address computation; returns
        the expression that names the final, width-aligned address."""
        width = instr.width
        if instr.unaligned:
            base = self._address(instr.base, instr.disp)
            self.emit(
                depth, f"_a = {base} & {~(width - 1) & self.mask}"
            )
            return "_a"
        if instr.disp == 0:
            # A bare register is immutable for the rest of this
            # instruction's emission — reference it directly.
            return self._reg(instr.base)
        self.emit(depth, f"_a = {self._address(instr.base, instr.disp)}")
        return "_a"

    def _emit_guard_and_probe(self, depth: int, a: str, width: int,
                              unaligned: bool) -> None:
        """Alignment + bounds in one conditional (the slow path _mg
        re-raises in the interpreter's order), then the inlined D-cache
        tag probe.  By this point the address is width-aligned, so
        shifting by the line size reproduces access(addr & ~(width-1))
        exactly; hits are derived (probes - misses), so the hit path is
        the comparison alone."""
        # _mb{width} is MEMSIZE - width, precomputed in the namespace so
        # the upper-bound test is a single comparison.
        if unaligned or width == 1:
            self.emit(
                depth,
                f"if {a} < {GUARD_BYTES} or {a} > _mb{width}: "
                f"_fault({a})",
            )
        else:
            self.emit(
                depth,
                f"if {a} & {width - 1} or {a} < {GUARD_BYTES} or "
                f"{a} > _mb{width}: _mg({a}, {width})",
            )
        dcache = self.engine.dcache
        if dcache is not None:
            line_bytes = dcache.line_bytes
            lines = dcache.lines
            if line_bytes & (line_bytes - 1) == 0:
                line_expr = f"{a} >> {line_bytes.bit_length() - 1}"
            else:
                line_expr = f"{a} // {line_bytes}"
            if lines & (lines - 1) == 0:
                probe = f"(_lno := {line_expr}) & {lines - 1}"
                index = f"_lno & {lines - 1}"
            else:
                probe = f"(_lno := {line_expr}) % {lines}"
                index = f"_lno % {lines}"
            self.emit(
                depth,
                f"if _dt[{probe}] != _lno: "
                f"_dt[{index}] = _lno; _dm[0] += 1",
            )

    def _load(self, depth: int, instr: Load) -> None:
        a = self._addr_expr(depth, instr)
        self._emit_guard_and_probe(depth, a, instr.width, instr.unaligned)
        width = instr.width
        if width == 1:
            raw = f"_mem[{a}]"
        elif self.engine.mem_view(width) is not None:
            raw = f"_mv{width}[{a} >> {width.bit_length() - 1}]"
        else:
            endian = repr(self.machine.endian)
            raw = (
                f"int.from_bytes(_mem[{a}:{a} + {width}], {endian})"
            )
        dst = self._reg(instr.dst)
        if instr.signed and width < self.machine.word_bytes:
            field_sign = 1 << (8 * width - 1)
            self.emit(
                depth,
                f"{dst} = (({raw} ^ {field_sign}) - {field_sign}) & "
                f"{self.mask}",
            )
        else:
            self.emit(depth, f"{dst} = {raw}")

    def _store(self, depth: int, instr: Store) -> None:
        a = self._addr_expr(depth, instr)
        self._emit_guard_and_probe(depth, a, instr.width, instr.unaligned)
        width = instr.width
        width_mask = (1 << (8 * width)) - 1
        src = self._value(instr.src)
        # Register values are invariantly word-masked, so a full-word
        # store needs no truncation.
        if width == self.machine.word_bytes:
            value = f"({src})"
        else:
            value = f"({src}) & {width_mask}"
        if width == 1:
            self.emit(depth, f"_mem[{a}] = {value}")
        elif self.engine.mem_view(width) is not None:
            self.emit(
                depth,
                f"_mv{width}[{a} >> {width.bit_length() - 1}] = {value}",
            )
        else:
            endian = repr(self.machine.endian)
            self.emit(
                depth,
                f"_mem[{a}:{a} + {width}] = "
                f"({value}).to_bytes({width}, {endian})",
            )

    def _emit_icache_probes(self, depth: int) -> None:
        """Inline direct-mapped I-cache probes: line number and tag
        index are per-block constants bound through the namespace; hits
        are derived (probes - misses), so a hit costs one comparison."""
        line_count = len(
            self.engine.block_lines(self.func.name, self.block.label)
        )
        for i in range(line_count):
            self.emit(
                depth,
                f"if _it[_li{i}] != _ln{i}: "
                f"_it[_li{i}] = _ln{i}; _im[0] += 1",
            )

    def _emit_accounting(self, depth: int, icache: bool = True) -> None:
        """The per-execution prologue, in the interpreter's exact order:
        block count, I-cache line probes, deadline probe, step guard.
        (The interpreter's fault_hook slot is absent by construction —
        the runner falls back to the interpreter whenever a hook is
        installed.)"""
        engine = self.engine
        self.emit(depth, "_n[0] += 1")
        if engine.icache is not None and icache:
            self._emit_icache_probes(depth)
        if engine.cancel is not None:
            self.emit(depth, "_cancel()")
        self.emit(depth, f"_steps[0] += {len(self.block.instrs)}")
        self.emit(
            depth,
            "if _steps[0] > _MAXSTEPS: "
            "raise _Timeout(_steps[0], _MAXSTEPS, _FN, _BL)",
        )

    def _emit_fill(self, depth: int, fill: List[int]) -> None:
        init = [f"r{i} = _r[{i}]" for i in fill]
        for start in range(0, len(init), 8):
            self.emit(depth, "; ".join(init[start:start + 8]))

    def translate(self) -> str:
        block = self.block
        instrs = block.instrs
        terminator = instrs[-1] if instrs else None
        label = block.label
        # A block whose terminator loops straight back to itself runs as
        # an internal ``while True``: registers stay in locals across
        # iterations and the closure-call/fill/spill cost is paid once
        # per loop, not once per iteration.  Accounting still runs every
        # iteration, so all counts stay bit-identical.
        embedded_jumps = any(
            isinstance(i, (Jump, CondJump)) for i in instrs[:-1]
        )
        loop_mode = not embedded_jumps and (
            (isinstance(terminator, Jump) and terminator.target == label)
            or (
                isinstance(terminator, CondJump)
                and label in (terminator.iftrue, terminator.iffalse)
            )
        )
        self.emit(0, "def _blk(_r, _slots):")
        fill = self._fill_registers()
        if loop_mode:
            self._emit_fill(1, fill)
            # When this block's I-cache lines map to distinct tag slots,
            # nothing can evict them between iterations of the self-loop
            # — every probe after the first is a guaranteed hit, and
            # hits are derived, so the probes hoist out of the loop.
            # (Self-conflicting lines — a block bigger than the whole
            # I-cache — keep per-iteration probes.)
            # A Call in the body runs other blocks' probes mid-loop and
            # can evict our lines, so hoisting is only sound without one.
            hoist_icache = False
            has_call = any(isinstance(i, Call) for i in instrs)
            if self.engine.icache is not None and not has_call:
                line_nos = [
                    line // self.engine.icache.line_bytes
                    for line in self.engine.block_lines(
                        self.func.name, label
                    )
                ]
                indices = [n % self.engine.icache.lines for n in line_nos]
                hoist_icache = len(set(indices)) == len(indices)
                if hoist_icache:
                    self._emit_icache_probes(1)
            self.emit(1, "while True:")
            depth = 2
            self._emit_accounting(depth, icache=not hoist_icache)
            for instr in instrs[:-1]:
                self._emit_block_instr(depth, instr, direct_exit=False)
            if isinstance(terminator, Jump) or (
                terminator.iftrue == label and terminator.iffalse == label
            ):
                self.emit(depth, "continue")
            else:
                condition = self._condition(terminator)
                if terminator.iftrue == label:
                    self.emit(depth, f"if ({condition}): continue")
                    exit_label = terminator.iffalse
                else:
                    self.emit(depth, f"if not ({condition}): continue")
                    exit_label = terminator.iftrue
                self._emit_spill(depth)
                self.emit(depth, f"return {self._succ(exit_label)}")
            return "\n".join(self.lines)
        self._emit_accounting(1)
        self._emit_fill(1, fill)
        # Control flow: with the terminator in canonical last position
        # (and no embedded jumps before it) the successor is returned
        # directly; otherwise pending targets accumulate in _nx with
        # last-assignment-wins, exactly like the interpreter's
        # next_label.
        direct = bool(instrs) and isinstance(
            instrs[-1], (Jump, CondJump, Ret)
        ) and not embedded_jumps
        has_nx = not direct and any(
            isinstance(i, (Jump, CondJump)) for i in instrs
        )
        if has_nx:
            self.emit(1, "_nx = None")
        terminated = False
        last_index = len(instrs) - 1
        for index, instr in enumerate(instrs):
            returned = self._emit_block_instr(
                1, instr, direct_exit=direct and index == last_index
            )
            terminated = returned and index == last_index
        if not terminated:
            self._emit_spill(1)
            if has_nx:
                self.emit(1, "if _nx is None: _fell(_FN, _BL)")
                self.emit(1, "return _nx")
            else:
                self.emit(1, "_fell(_FN, _BL)")
        return "\n".join(self.lines)

    def _emit_block_instr(self, depth: int, instr, direct_exit: bool) -> bool:
        """Emit one instruction; returns True when it emitted a return."""
        kind = type(instr)
        if kind is Mov:
            self.emit(
                depth, f"{self._reg(instr.dst)} = {self._value(instr.src)}"
            )
        elif kind is BinOp:
            self.emit(depth, self._binop(instr))
        elif kind is UnOp:
            self.emit(depth, self._unop(instr))
        elif kind is Load:
            self._load(depth, instr)
        elif kind is Store:
            self._store(depth, instr)
        elif kind is Extract:
            self._extract(depth, instr)
        elif kind is Insert:
            self._insert(depth, instr)
        elif kind is FrameAddr:
            self.emit(
                depth,
                f"{self._reg(instr.dst)} = "
                f"_slots[{self.slot_index[instr.slot]}]",
            )
        elif kind is GlobalAddr:
            self.emit(
                depth, f"{self._reg(instr.dst)} = {self._global(instr.name)}"
            )
        elif kind is Call:
            args = ", ".join(self._value(a) for a in instr.args)
            call = f"_D[{instr.func!r}]({args})"
            if instr.dst is None:
                self.emit(depth, call)
            else:
                self.emit(depth, f"_rv = {call}")
                self.emit(
                    depth,
                    f"{self._reg(instr.dst)} = 0 if _rv is None else "
                    f"_rv & {self.mask}",
                )
        elif kind is Jump:
            target = self._succ(instr.target)
            if direct_exit:
                self._emit_spill(depth)
                self.emit(depth, f"return {target}")
                return True
            self.emit(depth, f"_nx = {target}")
        elif kind is CondJump:
            expression = (
                f"{self._succ(instr.iftrue)} if ({self._condition(instr)}) "
                f"else {self._succ(instr.iffalse)}"
            )
            if direct_exit:
                self._emit_spill(depth)
                self.emit(depth, f"return {expression}")
                return True
            self.emit(depth, f"_nx = {expression}")
        elif kind is Ret:
            if instr.value is None:
                self.emit(depth, "return (None,)")
            else:
                self.emit(depth, f"return ({self._value(instr.value)},)")
            return True
        else:
            raise SimulationError(
                f"cannot translate {type(instr).__name__}"
            )
        return False


class TranslatedEngine:
    """Drop-in alternative to :class:`repro.sim.interp.Interpreter`."""

    def __init__(
        self,
        module: Module,
        machine: MachineDescription,
        memory: Optional[SimMemory] = None,
        simulate_caches: bool = True,
        max_steps: int = 200_000_000,
    ):
        self.module = module
        self.machine = machine
        self.memory = memory or SimMemory(endian=machine.endian)
        if self.memory.endian != machine.endian:
            raise SimulationError(
                "memory endianness does not match the machine"
            )
        self.max_steps = max_steps
        self.icache: Optional[DirectMappedCache] = None
        self.dcache: Optional[DirectMappedCache] = None
        if simulate_caches:
            self.icache = DirectMappedCache(machine.icache)
            self.dcache = DirectMappedCache(machine.dcache)

        self.global_addrs: Dict[str, int] = {}
        for var in module.globals.values():
            addr = self.memory.alloc(var.size, var.align)
            if var.init:
                self.memory.write_bytes(addr, var.init)
            self.global_addrs[var.name] = addr

        self._block_keys: List[Tuple[str, str]] = []
        self._block_mix: List[Tuple[int, int, int]] = []
        self._block_counts: List[int] = []
        self._lines = self._layout_code()
        self._steps = [0]
        self._functions: Dict[str, object] = {}
        self._compile_all()

    # -- layout & registration ----------------------------------------------
    def _layout_code(self) -> Dict[Tuple[str, str], List[int]]:
        return layout_code(self.module, self.machine)

    def block_lines(self, func_name: str, label: str) -> List[int]:
        return self._lines[(func_name, label)]

    def register_block(self, func_name: str, block) -> int:
        """Assign a counter slot to a block; returns its index."""
        self._block_keys.append((func_name, block.label))
        self._block_mix.append(_static_block_mix(block))
        self._block_counts.append(0)
        return len(self._block_counts) - 1

    # -- compilation -------------------------------------------------------------
    def _compile_all(self) -> None:
        environment = dict(_runtime_helpers(self.machine))
        environment.update({
            "_MEM": self.memory,
            "_mem": self.memory.data,
            "_MEMSIZE": self.memory.size,
            "_MAXSTEPS": self.max_steps,
            "_steps": self._steps,
            "_bc": self._block_counts,
            "_F": self._functions,
            "_ic": self.icache.access if self.icache else None,
            "_dc": self.dcache.access if self.dcache else None,
        })
        for func in self.module:
            source = _FunctionTranslator(func, self).translate()
            namespace = dict(environment)
            code = compile(source, f"<rtl:{func.name}>", "exec")
            exec(code, namespace)  # noqa: S102 - our own generated code
            self._functions[func.name] = namespace["_fn"]

    # -- public API ---------------------------------------------------------------
    @property
    def stats(self) -> RunStats:
        return _derive_stats(
            self._block_keys, self._block_counts, self._block_mix
        )

    def call(self, name: str, *args: int):
        if name not in self._functions:
            raise SimulationError(f"no function {name!r}")
        func = self.module.function(name)
        if len(args) != len(func.params):
            raise SimulationError(
                f"{name} expects {len(func.params)} args, got {len(args)}"
            )
        mask = self.machine.word_mask
        return self._functions[name](*[a & mask for a in args])


class CompiledEngine:
    """The ``compiled`` simulator backend: direct-threaded cached blocks.

    Each basic block is lowered once into a straight-line closure (see
    :class:`_BlockTranslator`), compiled CPython code objects are cached
    process-wide by source fingerprint in a
    :class:`~repro.sim.cache.BlockCache`, and per-function drivers
    dispatch block-to-block by calling whatever closure the previous one
    returned — no label table, no per-instruction dispatch.

    Parity contract with :class:`repro.sim.interp.Interpreter` (enforced
    by ``tests/test_sim_compiled.py`` and the CI ``sim-differential``
    job): identical simulated memory images and return values, identical
    ``RunStats`` block/instruction/load/store/call counts, identical
    I/D-cache hit/miss sequences, identical ``SimulationTimeout``
    attributes under the step watchdog, and identical ``cancel=``
    deadline probe cadence (once per block, after the I-cache probes).
    ``fault_hook``/``trace_hook`` are deliberately unsupported — the
    runner falls back to the interpreter when either is installed.

    The only tolerated divergence: after an *exception* aborts a block
    mid-flight, derived instruction/load/store totals still count the
    whole aborted block (the interpreter counts up to the faulting
    instruction).  Successful runs are exact.
    """

    def __init__(
        self,
        module: Module,
        machine: MachineDescription,
        memory: Optional[SimMemory] = None,
        simulate_caches: bool = True,
        max_steps: int = 200_000_000,
        cancel=None,
        block_cache: Optional[BlockCache] = None,
    ):
        self.module = module
        self.machine = machine
        self.memory = memory or SimMemory(endian=machine.endian)
        if self.memory.endian != machine.endian:
            raise SimulationError(
                "memory endianness does not match the machine"
            )
        self.max_steps = max_steps
        self.cancel = cancel
        self.icache: Optional[CellCountedCache] = None
        self.dcache: Optional[CellCountedCache] = None
        if simulate_caches:
            self.icache = CellCountedCache(machine.icache)
            self.dcache = CellCountedCache(machine.dcache)

        # Globals are allocated in module order, exactly as the
        # interpreter does, so every simulated address is identical.
        self.global_addrs: Dict[str, int] = {}
        for var in module.globals.values():
            addr = self.memory.alloc(var.size, var.align)
            if var.init:
                self.memory.write_bytes(addr, var.init)
            self.global_addrs[var.name] = addr

        self.block_cache = (
            block_cache if block_cache is not None else shared_block_cache()
        )
        # Word-sized memoryview casts give single-index loads/stores when
        # the target's byte order matches the host's (the views are
        # host-endian by definition); other targets fall back to
        # int.from_bytes/to_bytes on the byte arena.
        self._mviews: Dict[int, object] = {}
        if machine.endian == sys.byteorder:
            flat = memoryview(self.memory.data)
            for width, code in ((2, "H"), (4, "I"), (8, "Q")):
                if self.memory.size % width == 0:
                    self._mviews[width] = flat.cast(code)
        self._lines = layout_code(module, machine)
        self._steps = [0]
        self._block_keys: List[Tuple[str, str]] = []
        self._block_mix: List[Tuple[int, int, int, int]] = []
        self._block_line_counts: List[int] = []
        self._block_cells: List[List[int]] = []
        self._sources: Dict[Tuple[str, str], str] = {}
        self._fingerprints: Dict[Tuple[str, str], str] = {}
        self._drivers: Dict[str, object] = {}
        #: translation-cache traffic attributable to this engine
        self.blocks_translated = 0
        self.block_cache_hits = 0
        self._translate_all()
        if self.icache is not None:
            self.icache.derive_hits = self._icache_probe_total
            self.dcache.derive_hits = self._dcache_probe_total

    # -- layout & registration ----------------------------------------------
    def block_lines(self, func_name: str, label: str) -> List[int]:
        return self._lines[(func_name, label)]

    def block_source(self, func_name: str, label: str) -> str:
        """Generated Python source of one block (debugging/tests)."""
        return self._sources[(func_name, label)]

    def block_fingerprint(self, func_name: str, label: str) -> str:
        return self._fingerprints[(func_name, label)]

    def mem_view(self, width: int):
        """Host-endian memoryview cast for ``width``, or None."""
        return self._mviews.get(width)

    def _register_block(self, func_name: str, block) -> List[int]:
        cell = [0]
        self._block_keys.append((func_name, block.label))
        self._block_mix.append(_static_block_mix(block))
        self._block_line_counts.append(
            len(self._lines[(func_name, block.label)])
        )
        self._block_cells.append(cell)
        return cell

    def _icache_probe_total(self) -> int:
        """Probes issued so far: every execution touches every line."""
        return sum(
            cell[0] * lines
            for cell, lines in zip(
                self._block_cells, self._block_line_counts
            )
        )

    def _dcache_probe_total(self) -> int:
        """Probes issued so far: one per executed load or store."""
        return sum(
            cell[0] * (mix[1] + mix[2])
            for cell, mix in zip(self._block_cells, self._block_mix)
        )

    # -- compilation ---------------------------------------------------------
    def _translate_all(self) -> None:
        environment = dict(_runtime_helpers(self.machine))
        environment.update({
            "_mem": self.memory.data,
            "_MEMSIZE": self.memory.size,
            "_MAXSTEPS": self.max_steps,
            "_steps": self._steps,
            "_D": self._drivers,
            "_cancel": self.cancel,
        })
        # Precomputed bounds checks: _mbW is the largest valid address
        # for a width-W access, so the guard is one comparison per side.
        for width in (1, 2, 4, 8):
            environment[f"_mb{width}"] = self.memory.size - width
        for width, view in self._mviews.items():
            environment[f"_mv{width}"] = view
        if self.icache is not None:
            environment.update({
                "_it": self.icache.tags,
                "_im": self.icache.miss_cell,
                "_dt": self.dcache.tags,
                "_dm": self.dcache.miss_cell,
            })
        for func in self.module:
            self._translate_function(func, environment)

    def _translate_function(self, func: Function, environment: Dict) -> None:
        closures: Dict[str, object] = {}
        patches = []
        for block in func.blocks:
            cell = self._register_block(func.name, block)
            translator = _BlockTranslator(block, func, self)
            source = translator.translate()
            key = (func.name, block.label)
            self._sources[key] = source
            fingerprint = BlockCache.fingerprint(source)
            self._fingerprints[key] = fingerprint
            code = self.block_cache.get(fingerprint)
            if code is None:
                code = compile(source, "<rtl-block>", "exec")
                self.block_cache.put(fingerprint, code)
                self.blocks_translated += 1
            else:
                self.block_cache_hits += 1
            namespace = dict(environment)
            namespace["_n"] = cell
            namespace["_FN"] = func.name
            namespace["_BL"] = block.label
            if self.icache is not None:
                line_bytes = self.icache.line_bytes
                cache_lines = self.icache.lines
                for i, line in enumerate(self.block_lines(*key)):
                    line_no = line // line_bytes
                    namespace[f"_ln{i}"] = line_no
                    namespace[f"_li{i}"] = line_no % cache_lines
            for var, name in translator.globals_used.items():
                namespace[var] = self.global_addrs[name]
            exec(code, namespace)  # noqa: S102 - our own generated code
            closures[block.label] = namespace["_blk"]
            patches.append((namespace, translator.successors))
        # Successor closures can only be bound once every block in the
        # function exists; patch them into each block's namespace now.
        for namespace, successors in patches:
            for var, label in successors.items():
                namespace[var] = closures[label]
        self._drivers[func.name] = self._make_driver(func, closures)

    def _make_driver(self, func: Function, closures: Dict[str, object]):
        memory = self.memory
        entry = closures[func.entry.label]
        param_indices = tuple(p.index for p in func.params)
        nregs = func.max_reg_index() + 1
        slot_specs = tuple(func.frame_slots.values())

        def _driver(*args):
            regs = [0] * nregs
            for index, value in zip(param_indices, args):
                regs[index] = value
            mark = memory.brk
            slots = tuple(
                memory.alloc(size, align) for size, align in slot_specs
            )
            try:
                blk = entry
                while True:
                    result = blk(regs, slots)
                    if type(result) is tuple:
                        return result[0]
                    blk = result
            finally:
                memory.reset_brk(mark)

        return _driver

    # -- public API ----------------------------------------------------------
    @property
    def stats(self) -> RunStats:
        return _derive_stats(
            self._block_keys,
            [cell[0] for cell in self._block_cells],
            self._block_mix,
        )

    def translation_stats(self) -> Dict[str, int]:
        """Blocks translated vs. reused from the process-wide cache."""
        return {
            "blocks": len(self._block_keys),
            "translated": self.blocks_translated,
            "cache_hits": self.block_cache_hits,
        }

    def call(self, name: str, *args: int):
        driver = self._drivers.get(name)
        if driver is None:
            raise SimulationError(f"no function {name!r}")
        func = self.module.function(name)
        if len(args) != len(func.params):
            raise SimulationError(
                f"{name} expects {len(func.params)} args, got {len(args)}"
            )
        mask = self.machine.word_mask
        return driver(*[a & mask for a in args])
