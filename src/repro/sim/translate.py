"""RTL-to-Python translation: the simulator's fast engine.

The reference interpreter dispatches instruction objects; this engine
instead *compiles* each RTL function into a Python function (registers
become Python locals, blocks become branches of a dispatch loop) and lets
CPython execute it.  Semantics are identical by construction of the
generated expressions — and by the differential tests that run both
engines over the same programs.

Dynamic counts: the generated code only increments a per-block execution
counter (plus cache probes when cache simulation is on); instruction,
load and store totals are recovered afterwards from the static per-block
mix, which is exact because block composition is static.

Signedness without branches: for a word ``v`` stored unsigned,
``(v ^ SIGN) - SIGN`` is its two's-complement value — used for signed
compares, arithmetic shifts and extensions.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import AlignmentTrap, SimulationError, SimulationTimeout
from repro.ir.function import Function, Module
from repro.ir.rtl import (
    BinOp,
    Call,
    CondJump,
    Const,
    Extract,
    FrameAddr,
    GlobalAddr,
    Insert,
    Jump,
    Load,
    Mov,
    Operand,
    Reg,
    Ret,
    Store,
    UnOp,
)
from repro.machine.machine import MachineDescription
from repro.sim.cache import DirectMappedCache
from repro.sim.interp import CODE_BASE, RunStats, field_parameters
from repro.sim.memory import GUARD_BYTES, SimMemory

_SIGNED_RELS = {"lt": "<", "le": "<=", "gt": ">", "ge": ">="}
_UNSIGNED_RELS = {
    "eq": "==", "ne": "!=", "ltu": "<", "leu": "<=", "gtu": ">",
    "geu": ">=",
}


class _FunctionTranslator:
    """Emits the Python source for one RTL function."""

    def __init__(self, func: Function, engine: "TranslatedEngine"):
        self.func = func
        self.engine = engine
        self.machine = engine.machine
        self.lines: List[str] = []
        self.bits = self.machine.word_bits
        self.mask = self.machine.word_mask
        self.sign = 1 << (self.bits - 1)

    # -- small emit helpers ---------------------------------------------------
    def emit(self, depth: int, text: str) -> None:
        self.lines.append("    " * depth + text)

    def _reg(self, reg: Reg) -> str:
        return f"r{reg.index}"

    def _value(self, op: Operand) -> str:
        if isinstance(op, Reg):
            return self._reg(op)
        return str(op.value & self.mask)

    def _signed(self, expression: str) -> str:
        return f"(({expression} ^ {self.sign}) - {self.sign})"

    # -- instruction translation -------------------------------------------------
    def _binop(self, instr: BinOp) -> str:
        dst = self._reg(instr.dst)
        a = self._value(instr.a)
        b = self._value(instr.b)
        op = instr.op
        mask = self.mask
        if op in ("add", "sub", "mul"):
            sign = {"add": "+", "sub": "-", "mul": "*"}[op]
            return f"{dst} = ({a} {sign} {b}) & {mask}"
        if op in ("and", "or", "xor"):
            sign = {"and": "&", "or": "|", "xor": "^"}[op]
            return f"{dst} = {a} {sign} {b}"
        if op == "shl":
            return f"{dst} = ({a} << ({b} & {self.bits - 1})) & {mask}"
        if op == "shrl":
            return f"{dst} = {a} >> ({b} & {self.bits - 1})"
        if op == "shra":
            return (
                f"{dst} = ({self._signed(a)} >> ({b} & {self.bits - 1}))"
                f" & {mask}"
            )
        if op in ("div", "rem", "divu", "remu"):
            return f"{dst} = _{op}({a}, {b})"
        raise SimulationError(f"cannot translate op {op!r}")

    def _unop(self, instr: UnOp) -> str:
        dst = self._reg(instr.dst)
        a = self._value(instr.a)
        if instr.op == "neg":
            return f"{dst} = (-{a}) & {self.mask}"
        if instr.op == "not":
            return f"{dst} = (~{a}) & {self.mask}"
        width = int(instr.op[4:])
        low_mask = (1 << (8 * width)) - 1
        if instr.op[0] == "z":
            return f"{dst} = {a} & {low_mask}"
        field_sign = 1 << (8 * width - 1)
        return (
            f"{dst} = ((({a} & {low_mask}) ^ {field_sign}) - {field_sign})"
            f" & {self.mask}"
        )

    def _address(self, base: Reg, disp: int) -> str:
        if disp:
            return f"(({self._reg(base)} + {disp}) & {self.mask})"
        return self._reg(base)

    def _memory_guard(self, depth: int, addr_var: str, width: int,
                      unaligned: bool) -> None:
        if unaligned:
            self.emit(depth, f"{addr_var} &= {~(width - 1) & self.mask}")
        else:
            self.emit(
                depth,
                f"if {addr_var} % {width}: _trap({addr_var}, {width})",
            )
        self.emit(
            depth,
            f"if {addr_var} < {GUARD_BYTES} or "
            f"{addr_var} + {width} > _MEMSIZE: _fault({addr_var})",
        )
        if self.engine.dcache is not None:
            self.emit(depth, f"_dc({addr_var} & {~(width - 1) & self.mask})")

    def _load(self, depth: int, instr: Load) -> None:
        addr_var = "_a"
        self.emit(depth, f"{addr_var} = {self._address(instr.base, instr.disp)}")
        self._memory_guard(depth, addr_var, instr.width, instr.unaligned)
        endian = repr(self.machine.endian)
        raw = (
            f"int.from_bytes(_mem[{addr_var}:{addr_var} + {instr.width}], "
            f"{endian})"
        )
        dst = self._reg(instr.dst)
        if instr.signed and instr.width < self.machine.word_bytes:
            field_sign = 1 << (8 * instr.width - 1)
            self.emit(
                depth,
                f"{dst} = (({raw} ^ {field_sign}) - {field_sign}) & "
                f"{self.mask}",
            )
        elif instr.signed and instr.width == self.machine.word_bytes:
            self.emit(depth, f"{dst} = {raw}")
        else:
            self.emit(depth, f"{dst} = {raw}")

    def _store(self, depth: int, instr: Store) -> None:
        addr_var = "_a"
        self.emit(depth, f"{addr_var} = {self._address(instr.base, instr.disp)}")
        self._memory_guard(depth, addr_var, instr.width, instr.unaligned)
        endian = repr(self.machine.endian)
        width_mask = (1 << (8 * instr.width)) - 1
        self.emit(
            depth,
            f"_mem[{addr_var}:{addr_var} + {instr.width}] = "
            f"(({self._value(instr.src)}) & {width_mask})"
            f".to_bytes({instr.width}, {endian})",
        )

    def _extract(self, depth: int, instr: Extract) -> None:
        dst = self._reg(instr.dst)
        src = self._reg(instr.src)
        field_mask = (1 << (8 * instr.width)) - 1
        if isinstance(instr.pos, Const):
            shift, _ = field_parameters(
                self.machine, instr.pos.value, instr.width
            )
            expression = f"({src} >> {shift}) & {field_mask}"
        else:
            self.emit(
                depth,
                f"_sh = _fieldshift({self._value(instr.pos)}, "
                f"{instr.width})",
            )
            expression = f"({src} >> _sh) & {field_mask}"
        if instr.signed:
            field_sign = 1 << (8 * instr.width - 1)
            self.emit(
                depth,
                f"{dst} = ((({expression}) ^ {field_sign}) - {field_sign})"
                f" & {self.mask}",
            )
        else:
            self.emit(depth, f"{dst} = {expression}")

    def _insert(self, depth: int, instr: Insert) -> None:
        dst = self._reg(instr.dst)
        acc = self._value(instr.acc)
        src = self._value(instr.src)
        field_mask = (1 << (8 * instr.width)) - 1
        if isinstance(instr.pos, Const):
            shift, _ = field_parameters(
                self.machine, instr.pos.value, instr.width
            )
            hole = ~(field_mask << shift) & self.mask
            self.emit(
                depth,
                f"{dst} = ({acc} & {hole}) | "
                f"(({src} & {field_mask}) << {shift})",
            )
        else:
            self.emit(
                depth,
                f"_sh = _fieldshift({self._value(instr.pos)}, "
                f"{instr.width})",
            )
            self.emit(
                depth,
                f"{dst} = ({acc} & ~({field_mask} << _sh) & {self.mask})"
                f" | (({src} & {field_mask}) << _sh)",
            )

    def _condition(self, instr: CondJump) -> str:
        a = self._value(instr.a)
        b = self._value(instr.b)
        if instr.rel in _UNSIGNED_RELS:
            return f"{a} {_UNSIGNED_RELS[instr.rel]} {b}"
        return (
            f"{self._signed(a)} {_SIGNED_RELS[instr.rel]} "
            f"{self._signed(b)}"
        )

    # -- function assembly ------------------------------------------------------
    def translate(self) -> str:
        func = self.func
        params = ", ".join(f"r{p.index}" for p in func.params)
        self.emit(0, f"def _fn({params}):")
        used = self._used_registers()
        param_indices = {p.index for p in func.params}
        init = [f"r{i} = 0" for i in sorted(used - param_indices)]
        for chunk_start in range(0, len(init), 8):
            self.emit(1, "; ".join(init[chunk_start:chunk_start + 8]))
        self.emit(1, "_a = 0")
        self.emit(1, "_mark = _MEM.brk")
        slot_vars: Dict[str, str] = {}
        for number, (slot, (size, align)) in enumerate(
            func.frame_slots.items()
        ):
            var = f"_slot{number}"
            slot_vars[slot] = var
            self.emit(1, f"{var} = _MEM.alloc({size}, {align})")
        self.emit(1, "try:")
        self.emit(2, "_bb = 0")
        self.emit(2, "while True:")

        index_of = {b.label: i for i, b in enumerate(func.blocks)}
        for number, block in enumerate(func.blocks):
            keyword = "if" if number == 0 else "elif"
            self.emit(3, f"{keyword} _bb == {number}:")
            counter = self.engine.register_block(func.name, block)
            self.emit(4, f"_bc[{counter}] += 1")
            if self.engine.icache is not None:
                for line in self.engine.block_lines(func.name, block.label):
                    self.emit(4, f"_ic({line})")
            self._emit_step_guard(4, len(block.instrs), block.label)
            for instr in block.instrs:
                self._emit_instr(4, instr, index_of, slot_vars)
        self.emit(3, "else:")
        self.emit(4, "raise _SimulationError('bad block index')")
        self.emit(1, "finally:")
        self.emit(2, "_MEM.reset_brk(_mark)")
        return "\n".join(self.lines)

    def _emit_step_guard(self, depth: int, count: int, label: str) -> None:
        self.emit(depth, f"_steps[0] += {count}")
        self.emit(
            depth,
            "if _steps[0] > _MAXSTEPS: "
            f"raise _Timeout(_steps[0], _MAXSTEPS, "
            f"{self.func.name!r}, {label!r})",
        )

    def _emit_instr(
        self,
        depth: int,
        instr,
        index_of: Dict[str, int],
        slot_vars: Dict[str, str],
    ) -> None:
        if isinstance(instr, Mov):
            self.emit(
                depth, f"{self._reg(instr.dst)} = {self._value(instr.src)}"
            )
        elif isinstance(instr, BinOp):
            self.emit(depth, self._binop(instr))
        elif isinstance(instr, UnOp):
            self.emit(depth, self._unop(instr))
        elif isinstance(instr, Load):
            self._load(depth, instr)
        elif isinstance(instr, Store):
            self._store(depth, instr)
        elif isinstance(instr, Extract):
            self._extract(depth, instr)
        elif isinstance(instr, Insert):
            self._insert(depth, instr)
        elif isinstance(instr, FrameAddr):
            self.emit(
                depth,
                f"{self._reg(instr.dst)} = {slot_vars[instr.slot]}",
            )
        elif isinstance(instr, GlobalAddr):
            addr = self.engine.global_addrs[instr.name]
            self.emit(depth, f"{self._reg(instr.dst)} = {addr}")
        elif isinstance(instr, Call):
            args = ", ".join(self._value(a) for a in instr.args)
            call = f"_F[{instr.func!r}]({args})"
            if instr.dst is None:
                self.emit(depth, call)
            else:
                self.emit(depth, f"_rv = {call}")
                self.emit(
                    depth,
                    f"{self._reg(instr.dst)} = 0 if _rv is None else "
                    f"_rv & {self.mask}",
                )
        elif isinstance(instr, Jump):
            self.emit(depth, f"_bb = {index_of[instr.target]}")
            self.emit(depth, "continue")
        elif isinstance(instr, CondJump):
            self.emit(
                depth,
                f"_bb = {index_of[instr.iftrue]} if "
                f"({self._condition(instr)}) else "
                f"{index_of[instr.iffalse]}",
            )
            self.emit(depth, "continue")
        elif isinstance(instr, Ret):
            if instr.value is None:
                self.emit(depth, "return None")
            else:
                self.emit(depth, f"return {self._value(instr.value)}")
        else:
            raise SimulationError(
                f"cannot translate {type(instr).__name__}"
            )

    def _used_registers(self) -> set:
        used = set()
        for instr in self.func.iter_instrs():
            for reg in instr.uses() + instr.defs():
                used.add(reg.index)
        return used


class TranslatedEngine:
    """Drop-in alternative to :class:`repro.sim.interp.Interpreter`."""

    def __init__(
        self,
        module: Module,
        machine: MachineDescription,
        memory: Optional[SimMemory] = None,
        simulate_caches: bool = True,
        max_steps: int = 200_000_000,
    ):
        self.module = module
        self.machine = machine
        self.memory = memory or SimMemory(endian=machine.endian)
        if self.memory.endian != machine.endian:
            raise SimulationError(
                "memory endianness does not match the machine"
            )
        self.max_steps = max_steps
        self.icache: Optional[DirectMappedCache] = None
        self.dcache: Optional[DirectMappedCache] = None
        if simulate_caches:
            self.icache = DirectMappedCache(machine.icache)
            self.dcache = DirectMappedCache(machine.dcache)

        self.global_addrs: Dict[str, int] = {}
        for var in module.globals.values():
            addr = self.memory.alloc(var.size, var.align)
            if var.init:
                self.memory.write_bytes(addr, var.init)
            self.global_addrs[var.name] = addr

        self._block_keys: List[Tuple[str, str]] = []
        self._block_mix: List[Tuple[int, int, int]] = []
        self._block_counts: List[int] = []
        self._lines = self._layout_code()
        self._steps = [0]
        self._functions: Dict[str, object] = {}
        self._compile_all()

    # -- layout & registration ----------------------------------------------
    def _layout_code(self) -> Dict[Tuple[str, str], List[int]]:
        lines: Dict[Tuple[str, str], List[int]] = {}
        addr = CODE_BASE
        line_bytes = self.machine.icache.line_bytes
        for func in self.module:
            for block in func.blocks:
                size = self.machine.block_footprint(len(block.instrs))
                first = addr // line_bytes
                last = (addr + max(size, 1) - 1) // line_bytes
                lines[(func.name, block.label)] = [
                    n * line_bytes for n in range(first, last + 1)
                ]
                addr += size
        return lines

    def block_lines(self, func_name: str, label: str) -> List[int]:
        return self._lines[(func_name, label)]

    def register_block(self, func_name: str, block) -> int:
        """Assign a counter slot to a block; returns its index."""
        loads = sum(1 for i in block.instrs if isinstance(i, Load))
        stores = sum(1 for i in block.instrs if isinstance(i, Store))
        self._block_keys.append((func_name, block.label))
        self._block_mix.append((len(block.instrs), loads, stores))
        self._block_counts.append(0)
        return len(self._block_counts) - 1

    # -- compilation -------------------------------------------------------------
    def _compile_all(self) -> None:
        bits = self.machine.word_bits
        mask = self.machine.word_mask

        def _sdiv_base(a: int, b: int, want_rem: bool) -> int:
            sign = 1 << (bits - 1)
            sa = (a ^ sign) - sign
            sb = (b ^ sign) - sign
            if sb == 0:
                raise SimulationError("integer division by zero")
            quotient = abs(sa) // abs(sb)
            if (sa < 0) != (sb < 0):
                quotient = -quotient
            if want_rem:
                return (sa - quotient * sb) & mask
            return quotient & mask

        def _udiv_base(a: int, b: int, want_rem: bool) -> int:
            if b == 0:
                raise SimulationError("integer division by zero")
            return (a % b if want_rem else a // b) & mask

        def _trap(addr: int, width: int):
            raise AlignmentTrap(addr, width)

        def _fault(addr: int):
            raise SimulationError(f"bad address {addr:#x}")

        def _fieldshift(pos: int, width: int) -> int:
            shift, _ = field_parameters(self.machine, pos, width)
            return shift

        environment = {
            "_MEM": self.memory,
            "_mem": self.memory.data,
            "_MEMSIZE": self.memory.size,
            "_MAXSTEPS": self.max_steps,
            "_steps": self._steps,
            "_bc": self._block_counts,
            "_F": self._functions,
            "_div": lambda a, b: _sdiv_base(a, b, False),
            "_rem": lambda a, b: _sdiv_base(a, b, True),
            "_divu": lambda a, b: _udiv_base(a, b, False),
            "_remu": lambda a, b: _udiv_base(a, b, True),
            "_trap": _trap,
            "_fault": _fault,
            "_fieldshift": _fieldshift,
            "_SimulationError": SimulationError,
            "_Timeout": SimulationTimeout,
            "_ic": self.icache.access if self.icache else None,
            "_dc": self.dcache.access if self.dcache else None,
        }
        for func in self.module:
            source = _FunctionTranslator(func, self).translate()
            namespace = dict(environment)
            code = compile(source, f"<rtl:{func.name}>", "exec")
            exec(code, namespace)  # noqa: S102 - our own generated code
            self._functions[func.name] = namespace["_fn"]

    # -- public API ---------------------------------------------------------------
    @property
    def stats(self) -> RunStats:
        stats = RunStats()
        for key, count, mix in zip(
            self._block_keys, self._block_counts, self._block_mix
        ):
            if count:
                stats.block_counts[key] = count
                stats.instr_count += count * mix[0]
                stats.load_count += count * mix[1]
                stats.store_count += count * mix[2]
        return stats

    def call(self, name: str, *args: int):
        if name not in self._functions:
            raise SimulationError(f"no function {name!r}")
        func = self.module.function(name)
        if len(args) != len(func.params):
            raise SimulationError(
                f"{name} expects {len(func.params)} args, got {len(args)}"
            )
        mask = self.machine.word_mask
        return self._functions[name](*[a & mask for a in args])
