"""Trace-driven cycle accounting.

``cycles = Σ_blocks  executions(b) × static_cycles(b)
         + dcache_misses × dcache_penalty
         + icache_misses × icache_penalty``

Static block cycles come from the list scheduler (all-hit assumption);
cache misses add their penalties on top.  This is the standard trace-driven
decomposition and the substitute for the paper's wall-clock timings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.ir.function import Module
from repro.machine.machine import MachineDescription
from repro.sched.block_cost import module_block_cycles
from repro.sim.cache import DirectMappedCache
from repro.sim.interp import RunStats


@dataclass
class CycleReport:
    """Cycle totals for one simulated run."""

    machine: str
    base_cycles: int
    dcache_miss_cycles: int
    icache_miss_cycles: int
    instr_count: int
    load_count: int
    store_count: int
    dcache_misses: int = 0
    icache_misses: int = 0

    @property
    def total_cycles(self) -> int:
        return (
            self.base_cycles
            + self.dcache_miss_cycles
            + self.icache_miss_cycles
        )

    @property
    def memory_accesses(self) -> int:
        return self.load_count + self.store_count

    def speedup_over(self, other: "CycleReport") -> float:
        """``other``'s cycles divided by ours (>1 means we are faster)."""
        return other.total_cycles / self.total_cycles

    def percent_savings_over(self, other: "CycleReport") -> float:
        """Percent of ``other``'s cycles we save: (other-self)/other*100."""
        return (
            (other.total_cycles - self.total_cycles)
            / other.total_cycles
            * 100.0
        )

    def __repr__(self) -> str:
        return (
            f"<CycleReport {self.machine}: {self.total_cycles} cycles "
            f"({self.instr_count} instrs, {self.memory_accesses} mem)>"
        )


def instructions_per_second(
    instr_count: int, wall_seconds: float
) -> Optional[float]:
    """Simulated-instructions per host second, or None when the wall
    clock is too coarse to divide by (sub-microsecond runs)."""
    if wall_seconds <= 1e-6 or instr_count <= 0:
        return None
    return instr_count / wall_seconds


def cycle_report(
    module: Module,
    machine: MachineDescription,
    stats: RunStats,
    icache: Optional[DirectMappedCache] = None,
    dcache: Optional[DirectMappedCache] = None,
    block_cycle_table: Optional[Dict[Tuple[str, str], int]] = None,
) -> CycleReport:
    """Convert dynamic counts into a :class:`CycleReport`."""
    table = block_cycle_table
    if table is None:
        table = module_block_cycles(module, machine)
    base = 0
    for key, count in stats.block_counts.items():
        base += count * table[key]
    dmisses = dcache.misses if dcache is not None else 0
    imisses = icache.misses if icache is not None else 0
    return CycleReport(
        machine=machine.name,
        base_cycles=base,
        dcache_miss_cycles=dmisses * machine.dcache.miss_penalty,
        icache_miss_cycles=imisses * machine.icache.miss_penalty,
        instr_count=stats.instr_count,
        load_count=stats.load_count,
        store_count=stats.store_count,
        dcache_misses=dmisses,
        icache_misses=imisses,
    )
