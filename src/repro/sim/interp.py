"""Reference interpreter for RTL modules.

The interpreter executes lowered (or generic) RTL with bit-exact machine
semantics — word-size wraparound, two's complement, endianness-sensitive
extract/insert, alignment traps — and collects the dynamic counts the cost
model needs: per-block execution counts, memory accesses, and cache hits
and misses.

It is the *reference* engine: slow, obvious, and heavily cross-checked
against the faster :mod:`repro.sim.translate` engine by the test suite.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import SimulationError, SimulationTimeout
from repro.ir.function import Function, Module
from repro.ir.rtl import (
    BinOp,
    Call,
    CondJump,
    Const,
    Extract,
    FrameAddr,
    GlobalAddr,
    Insert,
    Jump,
    Load,
    Mov,
    Operand,
    Reg,
    Ret,
    Store,
    UnOp,
)
from repro.machine.machine import MachineDescription
from repro.sim.cache import DirectMappedCache
from repro.sim.memory import SimMemory

CODE_BASE = 0x10000


def layout_code(
    module: Module, machine: MachineDescription
) -> Dict[Tuple[str, str], List[int]]:
    """Assign code addresses; returns the I-cache line list per block.

    Shared by every engine so instruction-cache behaviour is identical
    by construction: same module, same machine, same line footprint.
    """
    lines: Dict[Tuple[str, str], List[int]] = {}
    addr = CODE_BASE
    line_bytes = machine.icache.line_bytes
    for func in module:
        for block in func.blocks:
            size = machine.block_footprint(len(block.instrs))
            first = addr // line_bytes
            last = (addr + max(size, 1) - 1) // line_bytes
            lines[(func.name, block.label)] = [
                n * line_bytes for n in range(first, last + 1)
            ]
            addr += size
    return lines


class RunStats:
    """Dynamic counts collected over one or more calls."""

    def __init__(self) -> None:
        self.block_counts: Dict[Tuple[str, str], int] = {}
        self.instr_count = 0
        self.load_count = 0
        self.store_count = 0
        self.call_count = 0

    @property
    def memory_accesses(self) -> int:
        return self.load_count + self.store_count

    def count_for(self, func_name: str, label: str) -> int:
        return self.block_counts.get((func_name, label), 0)

    def __repr__(self) -> str:
        return (
            f"<RunStats instrs={self.instr_count} loads={self.load_count} "
            f"stores={self.store_count}>"
        )


def field_parameters(
    machine: MachineDescription, pos: int, width: int
) -> Tuple[int, int]:
    """Return ``(shift, mask)`` of a byte field within a word.

    ``pos`` is a byte address; its low bits select the byte within the
    word.  Raises when the field would straddle the word boundary (machine
    extract/insert instructions cannot address such a field either).
    """
    byte = pos % machine.word_bytes
    if byte % width:
        raise SimulationError(
            f"field at byte {byte} of width {width} is not naturally "
            f"aligned within the word"
        )
    if machine.endian == "little":
        shift = 8 * byte
    else:
        shift = 8 * (machine.word_bytes - byte - width)
    return shift, (1 << (8 * width)) - 1


class _Frame:
    """Activation record: register file plus frame-slot addresses."""

    __slots__ = ("regs", "slots", "saved_brk")

    def __init__(self, nregs: int, saved_brk: int):
        self.regs: List[int] = [0] * nregs
        self.slots: Dict[str, int] = {}
        self.saved_brk = saved_brk


class Interpreter:
    """Executes functions of one module on one machine model."""

    def __init__(
        self,
        module: Module,
        machine: MachineDescription,
        memory: Optional[SimMemory] = None,
        simulate_caches: bool = True,
        max_steps: int = 200_000_000,
        fault_hook=None,
        trace_hook=None,
        cancel=None,
    ):
        self.module = module
        self.machine = machine
        # Optional chaos hook called as hook(func_name, block_label) at
        # every block entry; FaultPlan.sim_hook() uses it to plant stalls.
        self.fault_hook = fault_hook
        # Optional zero-argument cancellation probe, also called at every
        # block entry (before the fault hook); the compile service
        # installs its per-request deadline check here, raising
        # DeadlineExceeded to abort a stuck simulation.
        self.cancel = cancel
        # Optional memory-trace hook called as
        # hook(func_name, instr, addr, frame_slots, global_addrs) at every
        # Load/Store; the alias-consistency checker cross-checks the
        # engine's static claims against these concrete addresses.
        self.trace_hook = trace_hook
        self.memory = memory or SimMemory(endian=machine.endian)
        if self.memory.endian != machine.endian:
            raise SimulationError(
                "memory endianness does not match the machine"
            )
        self.max_steps = max_steps
        self.stats = RunStats()
        self.icache: Optional[DirectMappedCache] = None
        self.dcache: Optional[DirectMappedCache] = None
        if simulate_caches:
            self.icache = DirectMappedCache(machine.icache)
            self.dcache = DirectMappedCache(machine.dcache)
        self.global_addrs: Dict[str, int] = {}
        self._alloc_globals()
        self._block_lines = self._layout_code()
        self._bits = machine.word_bits
        self._mask = machine.word_mask
        self._sign_bit = 1 << (self._bits - 1)
        self._steps = 0

    # -- set-up -------------------------------------------------------------
    def _alloc_globals(self) -> None:
        for var in self.module.globals.values():
            addr = self.memory.alloc(var.size, var.align)
            if var.init:
                self.memory.write_bytes(addr, var.init)
            self.global_addrs[var.name] = addr

    def place_global(self, name: str, addr: int) -> None:
        """Override a global's address (tests use this for misalignment)."""
        if name not in self.module.globals:
            raise SimulationError(f"unknown global {name!r}")
        self.global_addrs[name] = addr

    def _layout_code(self) -> Dict[Tuple[str, str], List[int]]:
        """Assign code addresses; returns I-cache line list per block."""
        return layout_code(self.module, self.machine)

    # -- value helpers -------------------------------------------------------
    def _signed(self, value: int) -> int:
        return value - (1 << self._bits) if value & self._sign_bit else value

    def _operand(self, frame: _Frame, op: Operand) -> int:
        if isinstance(op, Reg):
            return frame.regs[op.index]
        return op.value & self._mask

    # -- public API -----------------------------------------------------------
    def call(self, name: str, *args: int) -> Optional[int]:
        """Run function ``name`` with machine-word arguments."""
        func = self.module.function(name)
        if len(args) != len(func.params):
            raise SimulationError(
                f"{name} expects {len(func.params)} args, got {len(args)}"
            )
        return self._run(func, [a & self._mask for a in args])

    # -- the main loop ----------------------------------------------------------
    def _run(self, func: Function, args: List[int]) -> Optional[int]:
        frame = _Frame(func.max_reg_index() + 1, self.memory.brk)
        for param, value in zip(func.params, args):
            frame.regs[param.index] = value
        for slot, (size, align) in func.frame_slots.items():
            frame.slots[slot] = self.memory.alloc(size, align)

        blocks = {b.label: b for b in func.blocks}
        label = func.entry.label
        stats = self.stats
        machine = self.machine
        memory = self.memory
        regs = frame.regs

        try:
            while True:
                block = blocks[label]
                key = (func.name, block.label)
                stats.block_counts[key] = stats.block_counts.get(key, 0) + 1
                if self.icache is not None:
                    for line in self._block_lines[key]:
                        self.icache.access(line)
                if self.cancel is not None:
                    self.cancel()
                if self.fault_hook is not None:
                    self.fault_hook(func.name, block.label)
                self._steps += len(block.instrs)
                if self._steps > self.max_steps:
                    raise SimulationTimeout(
                        self._steps,
                        limit=self.max_steps,
                        function=func.name,
                        block=block.label,
                    )
                stats.instr_count += len(block.instrs)

                next_label: Optional[str] = None
                for instr in block.instrs:
                    kind = type(instr)
                    if kind is Mov:
                        regs[instr.dst.index] = self._operand(frame, instr.src)
                    elif kind is BinOp:
                        regs[instr.dst.index] = self._binop(
                            instr.op,
                            self._operand(frame, instr.a),
                            self._operand(frame, instr.b),
                        )
                    elif kind is UnOp:
                        regs[instr.dst.index] = self._unop(
                            instr.op, self._operand(frame, instr.a)
                        )
                    elif kind is Load:
                        addr = (regs[instr.base.index] + instr.disp) \
                            & self._mask
                        if self.trace_hook is not None:
                            self.trace_hook(
                                func.name, instr, addr, frame.slots,
                                self.global_addrs,
                            )
                        value = memory.load(
                            addr, instr.width, instr.signed, instr.unaligned
                        )
                        stats.load_count += 1
                        if self.dcache is not None:
                            self.dcache.access(addr & ~(instr.width - 1))
                        regs[instr.dst.index] = value & self._mask
                    elif kind is Store:
                        addr = (regs[instr.base.index] + instr.disp) \
                            & self._mask
                        if self.trace_hook is not None:
                            self.trace_hook(
                                func.name, instr, addr, frame.slots,
                                self.global_addrs,
                            )
                        memory.store(
                            addr,
                            instr.width,
                            self._operand(frame, instr.src),
                            instr.unaligned,
                        )
                        stats.store_count += 1
                        if self.dcache is not None:
                            self.dcache.access(addr & ~(instr.width - 1))
                    elif kind is Extract:
                        regs[instr.dst.index] = self._extract(frame, instr)
                    elif kind is Insert:
                        regs[instr.dst.index] = self._insert(frame, instr)
                    elif kind is FrameAddr:
                        regs[instr.dst.index] = frame.slots[instr.slot]
                    elif kind is GlobalAddr:
                        regs[instr.dst.index] = self.global_addrs[instr.name]
                    elif kind is Call:
                        stats.call_count += 1
                        callee = self.module.function(instr.func)
                        value = self._run(
                            callee,
                            [self._operand(frame, a) for a in instr.args],
                        )
                        if instr.dst is not None:
                            regs[instr.dst.index] = (
                                0 if value is None else value & self._mask
                            )
                    elif kind is Jump:
                        next_label = instr.target
                    elif kind is CondJump:
                        taken = self._relation(
                            instr.rel,
                            self._operand(frame, instr.a),
                            self._operand(frame, instr.b),
                        )
                        next_label = instr.iftrue if taken else instr.iffalse
                    elif kind is Ret:
                        if instr.value is None:
                            return None
                        return self._operand(frame, instr.value)
                    else:
                        raise SimulationError(
                            f"cannot execute {kind.__name__}"
                        )
                if next_label is None:
                    raise SimulationError(
                        f"block {func.name}/{block.label} fell off the end"
                    )
                label = next_label
        finally:
            self.memory.reset_brk(frame.saved_brk)

    # -- operators -----------------------------------------------------------
    def _binop(self, op: str, a: int, b: int) -> int:
        mask = self._mask
        if op == "add":
            return (a + b) & mask
        if op == "sub":
            return (a - b) & mask
        if op == "mul":
            return (a * b) & mask
        if op == "and":
            return a & b
        if op == "or":
            return a | b
        if op == "xor":
            return a ^ b
        if op == "shl":
            return (a << (b & (self._bits - 1))) & mask
        if op == "shrl":
            return a >> (b & (self._bits - 1))
        if op == "shra":
            return (self._signed(a) >> (b & (self._bits - 1))) & mask
        if op in ("div", "rem"):
            sa, sb = self._signed(a), self._signed(b)
            if sb == 0:
                raise SimulationError("integer division by zero")
            quotient = abs(sa) // abs(sb)
            if (sa < 0) != (sb < 0):
                quotient = -quotient
            if op == "div":
                return quotient & mask
            return (sa - quotient * sb) & mask
        if op in ("divu", "remu"):
            if b == 0:
                raise SimulationError("integer division by zero")
            return (a // b if op == "divu" else a % b) & mask
        raise SimulationError(f"unknown binary op {op!r}")

    def _unop(self, op: str, a: int) -> int:
        mask = self._mask
        if op == "neg":
            return (-a) & mask
        if op == "not":
            return (~a) & mask
        if op[0] in "sz" and op[1:4] in ("ext",):
            width = int(op[4:])
            low = a & ((1 << (8 * width)) - 1)
            if op[0] == "s" and low & (1 << (8 * width - 1)):
                low -= 1 << (8 * width)
            return low & mask
        raise SimulationError(f"unknown unary op {op!r}")

    def _extract(self, frame: _Frame, instr: Extract) -> int:
        pos = self._operand(frame, instr.pos)
        shift, field_mask = field_parameters(self.machine, pos, instr.width)
        field = (frame.regs[instr.src.index] >> shift) & field_mask
        if instr.signed and field & (1 << (8 * instr.width - 1)):
            field -= 1 << (8 * instr.width)
        return field & self._mask

    def _insert(self, frame: _Frame, instr: Insert) -> int:
        pos = self._operand(frame, instr.pos)
        shift, field_mask = field_parameters(self.machine, pos, instr.width)
        acc = self._operand(frame, instr.acc)
        src = self._operand(frame, instr.src) & field_mask
        return (acc & ~(field_mask << shift) & self._mask) | (src << shift)

    def _relation(self, rel: str, a: int, b: int) -> bool:
        if rel == "eq":
            return a == b
        if rel == "ne":
            return a != b
        if rel in ("ltu", "leu", "gtu", "geu"):
            if rel == "ltu":
                return a < b
            if rel == "leu":
                return a <= b
            if rel == "gtu":
                return a > b
            return a >= b
        sa, sb = self._signed(a), self._signed(b)
        if rel == "lt":
            return sa < sb
        if rel == "le":
            return sa <= sb
        if rel == "gt":
            return sa > sb
        if rel == "ge":
            return sa >= sb
        raise SimulationError(f"unknown relation {rel!r}")
