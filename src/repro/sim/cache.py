"""Simulator caches: the direct-mapped hardware model and the block cache.

Two unrelated kinds of cache live here:

* :class:`DirectMappedCache` models the simulated machine's I/D caches.
  Kept intentionally simple — the paper's effect is dominated by
  instruction counts and latencies, and the caches only need to capture
  two second-order phenomena the paper discusses: spatial locality (four
  narrow loads to one line cost one miss whether or not they are
  coalesced, so the coalescing win must come from the saved
  *instructions*) and the unrolling heuristic (a loop body that outgrows
  the I-cache starts missing every iteration).

* :class:`BlockCache` is a host-side translation cache for the
  block-compiling simulator backend (:mod:`repro.sim.translate`): it
  maps a basic block's *fingerprint* — a digest of the specialized
  Python source the translator emits for it, which captures the machine
  word model, endianness, the exact instruction sequence and the
  accounting configuration — to the compiled code object, so a block is
  lowered to CPython bytecode at most once per process no matter how
  many engines, benchmark cells or repeated compiles execute it.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Dict, List, Optional

from repro.machine.machine import CacheGeometry


class DirectMappedCache:
    """Tag array of a direct-mapped cache; tracks hits and misses."""

    def __init__(self, geometry: CacheGeometry):
        self.geometry = geometry
        self.line_bytes = geometry.line_bytes
        self.lines = geometry.lines
        self.tags: List[Optional[int]] = [None] * self.lines
        self.hits = 0
        self.misses = 0

    def access(self, addr: int) -> bool:
        """Touch the line containing ``addr``; returns True on a hit."""
        line_no = addr // self.line_bytes
        index = line_no % self.lines
        if self.tags[index] == line_no:
            self.hits += 1
            return True
        self.tags[index] = line_no
        self.misses += 1
        return False

    def access_range(self, addr: int, length: int) -> None:
        """Touch every line overlapped by ``[addr, addr+length)``."""
        line = addr // self.line_bytes
        last = (addr + max(length, 1) - 1) // self.line_bytes
        while line <= last:
            self.access(line * self.line_bytes)
            line += 1

    def flush(self) -> None:
        self.tags = [None] * self.lines

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def __repr__(self) -> str:
        return (
            f"<DirectMappedCache {self.geometry.size_bytes}B "
            f"hits={self.hits} misses={self.misses}>"
        )


class CellCountedCache(DirectMappedCache):
    """A :class:`DirectMappedCache` whose counters live in mutable cells.

    The block-compiling backend inlines tag probes straight into the
    generated code: the emitted statements mutate :attr:`tags` and bump
    ``hit_cell``/``miss_cell`` in place, with no method call per probe.
    Counter reads (``.hits``/``.misses``) and the inherited
    :meth:`access` keep working through the properties, so the object
    stays interchangeable with the plain cache everywhere else.
    """

    def __init__(self, geometry: CacheGeometry):
        self.hit_cell = [0]
        self.miss_cell = [0]
        # When set (a zero-arg callable returning the total probe count),
        # hits are *derived* as probes - misses instead of counted: every
        # probe either hits or misses, and the probe total is statically
        # reconstructable from block execution counts, so the generated
        # code only ever touches the miss counter.  Probes must then all
        # come from generated code — do not mix in access() calls.
        self.derive_hits = None
        super().__init__(geometry)

    @property
    def hits(self) -> int:
        if self.derive_hits is not None:
            return self.derive_hits() - self.misses
        return self.hit_cell[0]

    @hits.setter
    def hits(self, value: int) -> None:
        self.hit_cell[0] = value

    @property
    def misses(self) -> int:
        return self.miss_cell[0]

    @misses.setter
    def misses(self, value: int) -> None:
        self.miss_cell[0] = value

    def flush(self) -> None:
        # In place: generated code holds a direct reference to the list.
        self.tags[:] = [None] * self.lines


class BlockCache:
    """LRU cache of compiled block code objects, keyed by fingerprint.

    The fingerprint is a content hash of the generated block source, so
    two blocks share an entry exactly when their specialized closures
    would be byte-identical: same machine word model and endianness,
    same instruction sequence, same number of I-cache line probes, same
    accounting configuration (caches on/off, cancel probe present).
    Everything that varies between instantiations — counter cells,
    I-cache line addresses, global addresses, successor closures — is
    bound through the closure's namespace, never baked into the code.

    Thread-safe: the compile service translates from worker threads.
    ``invalidations`` counts entries dropped for any reason (explicit
    :meth:`invalidate`, capacity eviction, :meth:`clear`).
    """

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError("block cache capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    @staticmethod
    def fingerprint(source: str) -> str:
        """Content hash of one block's generated Python source."""
        return hashlib.sha256(source.encode()).hexdigest()

    def get(self, fingerprint: str) -> Optional[object]:
        with self._lock:
            code = self._entries.get(fingerprint)
            if code is not None:
                self._entries.move_to_end(fingerprint)
                self.hits += 1
            else:
                self.misses += 1
            return code

    def put(self, fingerprint: str, code: object) -> None:
        with self._lock:
            self._entries[fingerprint] = code
            self._entries.move_to_end(fingerprint)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.invalidations += 1

    def invalidate(self, fingerprint: str) -> bool:
        """Drop one entry; returns whether it was present."""
        with self._lock:
            present = self._entries.pop(fingerprint, None) is not None
            if present:
                self.invalidations += 1
            return present

    def clear(self) -> int:
        """Drop every entry; returns how many were invalidated."""
        with self._lock:
            count = len(self._entries)
            self._entries.clear()
            self.invalidations += count
            return count

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            return fingerprint in self._entries

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "invalidations": self.invalidations,
            }

    def __repr__(self) -> str:
        return (
            f"<BlockCache {len(self)}/{self.capacity} hits={self.hits} "
            f"misses={self.misses} invalidations={self.invalidations}>"
        )


#: Process-wide cache shared by every CompiledEngine that is not handed
#: an explicit one; repeated Simulator constructions over the same
#: program (the bench matrix, the compile service) translate each block
#: once.
_SHARED_BLOCK_CACHE = BlockCache()


def shared_block_cache() -> BlockCache:
    """The process-wide default :class:`BlockCache`."""
    return _SHARED_BLOCK_CACHE
