"""Direct-mapped cache model.

Kept intentionally simple — the paper's effect is dominated by instruction
counts and latencies, and the caches only need to capture two second-order
phenomena the paper discusses:

* spatial locality: four narrow loads to one line cost one miss whether or
  not they are coalesced, so the coalescing win must come from the saved
  *instructions*, not from invented miss savings;
* the unrolling heuristic: a loop body that outgrows the I-cache starts
  missing every iteration.
"""

from __future__ import annotations

from typing import List, Optional

from repro.machine.machine import CacheGeometry


class DirectMappedCache:
    """Tag array of a direct-mapped cache; tracks hits and misses."""

    def __init__(self, geometry: CacheGeometry):
        self.geometry = geometry
        self.line_bytes = geometry.line_bytes
        self.lines = geometry.lines
        self.tags: List[Optional[int]] = [None] * self.lines
        self.hits = 0
        self.misses = 0

    def access(self, addr: int) -> bool:
        """Touch the line containing ``addr``; returns True on a hit."""
        line_no = addr // self.line_bytes
        index = line_no % self.lines
        if self.tags[index] == line_no:
            self.hits += 1
            return True
        self.tags[index] = line_no
        self.misses += 1
        return False

    def access_range(self, addr: int, length: int) -> None:
        """Touch every line overlapped by ``[addr, addr+length)``."""
        line = addr // self.line_bytes
        last = (addr + max(length, 1) - 1) // self.line_bytes
        while line <= last:
            self.access(line * self.line_bytes)
            line += 1

    def flush(self) -> None:
        self.tags = [None] * self.lines

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def __repr__(self) -> str:
        return (
            f"<DirectMappedCache {self.geometry.size_bytes}B "
            f"hits={self.hits} misses={self.misses}>"
        )
