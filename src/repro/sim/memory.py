"""Byte-addressable simulated memory with alignment trapping.

The memory deliberately mirrors the hardware properties the paper's safety
analysis exists for:

* **aligned accesses trap when misaligned** (like the DEC Alpha), so a
  coalescer that skips an alignment check produces a hard failure in the
  test suite instead of silently wrong bytes;
* **unaligned wide accesses** (``ldq_u``-style) clear the low address bits
  and never trap;
* endianness is a property of the memory view, because field positions
  inside a coalesced word depend on it.

Address 0 .. ``GUARD_BYTES``-1 is an unmapped guard page so null-ish
addresses fault rather than read zeroes.
"""

from __future__ import annotations

from repro.errors import AlignmentTrap, SimulationError

GUARD_BYTES = 4096


class SimMemory:
    """A flat little slab of RAM plus a bump allocator."""

    def __init__(self, size: int = 1 << 22, endian: str = "little"):
        if endian not in ("little", "big"):
            raise SimulationError(f"bad endianness {endian!r}")
        self.size = size
        self.endian = endian
        self.data = bytearray(size)
        self._brk = GUARD_BYTES
        self.loads = 0
        self.stores = 0

    # -- allocation --------------------------------------------------------
    def alloc(self, size: int, align: int = 8, offset: int = 0) -> int:
        """Carve out ``size`` bytes aligned to ``align`` then nudged by
        ``offset`` bytes.

        ``offset`` exists so tests can place an array at a *deliberately*
        misaligned address (e.g. ``align=8, offset=2``) to drive the
        coalescer's run-time alignment checks down the fallback path.
        """
        if size <= 0:
            raise SimulationError(f"allocation of {size} bytes")
        if align <= 0 or align & (align - 1):
            raise SimulationError(f"alignment {align} is not a power of two")
        base = (self._brk + align - 1) & ~(align - 1)
        base += offset
        end = base + size
        if end > self.size:
            raise SimulationError("simulated memory exhausted")
        self._brk = end
        return base

    @property
    def brk(self) -> int:
        return self._brk

    def reset_brk(self, brk: int) -> None:
        """Roll the allocator back (used to pop stack frames)."""
        if brk < GUARD_BYTES or brk > self.size:
            raise SimulationError(f"bad brk {brk}")
        self._brk = brk

    # -- access ------------------------------------------------------------
    def _check(self, addr: int, width: int) -> None:
        if addr < GUARD_BYTES:
            raise SimulationError(
                f"access to unmapped guard page at {addr:#x}"
            )
        if addr + width > self.size:
            raise SimulationError(f"access past end of memory at {addr:#x}")

    def load(
        self, addr: int, width: int, signed: bool, unaligned: bool = False
    ) -> int:
        """Read ``width`` bytes; returns a sign/zero-extended Python int."""
        if unaligned:
            addr &= ~(width - 1)
        elif addr % width:
            raise AlignmentTrap(addr, width)
        self._check(addr, width)
        self.loads += 1
        raw = self.data[addr:addr + width]
        return int.from_bytes(raw, self.endian, signed=signed)

    def store(
        self, addr: int, width: int, value: int, unaligned: bool = False
    ) -> None:
        """Write the low ``width`` bytes of ``value``."""
        if unaligned:
            addr &= ~(width - 1)
        elif addr % width:
            raise AlignmentTrap(addr, width)
        self._check(addr, width)
        self.stores += 1
        value &= (1 << (8 * width)) - 1
        self.data[addr:addr + width] = value.to_bytes(width, self.endian)

    # -- bulk helpers (no alignment rules, no access counting) -----------------
    def write_bytes(self, addr: int, payload: bytes) -> None:
        self._check(addr, max(len(payload), 1))
        self.data[addr:addr + len(payload)] = payload

    def read_bytes(self, addr: int, count: int) -> bytes:
        self._check(addr, max(count, 1))
        return bytes(self.data[addr:addr + count])
