"""High-level simulation façade.

:class:`Simulator` ties together memory, interpreter and cost model behind
the interface the benchmark harness and the examples use::

    sim = Simulator(module, machine)
    a = sim.alloc_array("a", data_bytes, align=8)
    b = sim.alloc_array("b", data_bytes, align=8)
    result = sim.call("dot", a, b, n)
    print(sim.report().total_cycles)
"""

from __future__ import annotations

import os
import time
from typing import Dict, Optional, Sequence

from repro.errors import SimulationError
from repro.ir.function import Module
from repro.machine.machine import MachineDescription
from repro.sim.costs import CycleReport, cycle_report
from repro.sim.interp import Interpreter
from repro.sim.memory import SimMemory


#: Backends selectable via ``--sim-backend`` / ``REPRO_SIM_BACKEND``.
#: ("translate", the per-function engine, stays reachable through the
#: ``engine=`` parameter but is not part of the public backend matrix.)
SIM_BACKENDS = ("interp", "compiled")


def default_max_steps() -> int:
    """The watchdog step budget: ``REPRO_MAX_STEPS`` or 200M."""
    raw = os.environ.get("REPRO_MAX_STEPS", "").strip()
    if raw:
        try:
            return int(raw)
        except ValueError:
            raise SimulationError(
                f"bad REPRO_MAX_STEPS value {raw!r} (want an integer)"
            ) from None
    return 200_000_000


def default_sim_backend() -> str:
    """The simulator backend: ``REPRO_SIM_BACKEND`` or ``interp``."""
    raw = os.environ.get("REPRO_SIM_BACKEND", "").strip().lower()
    if not raw:
        return "interp"
    if raw not in SIM_BACKENDS:
        raise SimulationError(
            f"bad REPRO_SIM_BACKEND value {raw!r} "
            f"(want {'|'.join(SIM_BACKENDS)})"
        )
    return raw


class Simulator:
    """One module loaded on one machine, ready to run.

    ``backend`` picks the execution engine: ``interp`` (the reference
    interpreter) or ``compiled`` (the block-compiling direct-threaded
    engine, bit-identical on all accounted quantities).  ``engine`` is
    the older spelling of the same knob and additionally accepts
    ``translate``; giving both and disagreeing is an error.  When
    neither is given the ``REPRO_SIM_BACKEND`` environment default
    applies.

    The compiled backend silently degrades to the interpreter whenever
    observation hooks are installed (``fault_hook``/``trace_hook``) or
    fault injection is active via ``REPRO_FAULTS`` — mirroring how
    alias-check elision auto-disables under chaos.  The decision is
    recorded in ``backend_requested`` / ``backend`` /
    ``fallback_reason``.  The ``translate`` engine keeps its historical
    strict behavior and raises instead.
    """

    def __init__(
        self,
        module: Module,
        machine: MachineDescription,
        simulate_caches: bool = True,
        max_steps: Optional[int] = None,
        engine: Optional[str] = None,
        fault_hook=None,
        trace_hook=None,
        backend: Optional[str] = None,
        cancel=None,
        block_cache=None,
    ):
        self.module = module
        self.machine = machine
        self.memory = SimMemory(endian=machine.endian)
        if max_steps is None:
            max_steps = default_max_steps()
        self.max_steps = max_steps
        if engine is not None and backend is not None and engine != backend:
            raise SimulationError(
                f"conflicting engine selection: engine={engine!r} "
                f"backend={backend!r}"
            )
        requested = backend or engine or default_sim_backend()
        self.backend_requested = requested
        self.fallback_reason: Optional[str] = None
        resolved = requested
        if requested == "compiled":
            reason = None
            if fault_hook is not None:
                reason = "fault_hook installed"
            elif trace_hook is not None:
                reason = "trace_hook installed"
            else:
                from repro.resilience.faults import FaultPlan

                if FaultPlan.from_env():
                    reason = "fault injection active (REPRO_FAULTS)"
            if reason is not None:
                resolved = "interp"
                self.fallback_reason = reason
        self.backend = resolved
        if resolved == "interp":
            self.engine = Interpreter(
                module,
                machine,
                memory=self.memory,
                simulate_caches=simulate_caches,
                max_steps=max_steps,
                fault_hook=fault_hook,
                trace_hook=trace_hook,
                cancel=cancel,
            )
        elif resolved == "translate":
            if fault_hook is not None:
                raise SimulationError(
                    "fault_hook requires the 'interp' engine"
                )
            if trace_hook is not None:
                raise SimulationError(
                    "trace_hook requires the 'interp' engine"
                )
            if cancel is not None:
                raise SimulationError(
                    "cancel= requires the 'interp' or 'compiled' engine"
                )
            from repro.sim.translate import TranslatedEngine

            self.engine = TranslatedEngine(
                module,
                machine,
                memory=self.memory,
                simulate_caches=simulate_caches,
                max_steps=max_steps,
            )
        elif resolved == "compiled":
            from repro.sim.translate import CompiledEngine

            self.engine = CompiledEngine(
                module,
                machine,
                memory=self.memory,
                simulate_caches=simulate_caches,
                max_steps=max_steps,
                cancel=cancel,
                block_cache=block_cache,
            )
        else:
            raise SimulationError(f"unknown engine {resolved!r}")
        self._arrays: Dict[str, int] = {}
        self._stagger_counter = 0
        # Host wall-clock spent inside call(), accumulated across calls;
        # the bench runner's profiling hooks read this.
        self.wall_seconds = 0.0

    # -- data staging -------------------------------------------------------
    def alloc_array(
        self,
        name: str,
        contents: bytes = b"",
        size: Optional[int] = None,
        align: int = 8,
        offset: int = 0,
        stagger: bool = True,
    ) -> int:
        """Allocate a named buffer, optionally initialized; returns address.

        ``offset`` nudges the buffer off its alignment — used to exercise
        the run-time alignment checks the paper inserts in loop preheaders.
        ``stagger`` (default) inserts a small aligned gap between
        consecutive arrays so power-of-two-sized buffers do not land on
        identical direct-mapped cache indices (the kind of pathological
        conflict layout a real allocator rarely produces).
        """
        nbytes = size if size is not None else len(contents)
        if nbytes <= 0:
            raise SimulationError(f"array {name!r} would be empty")
        if stagger and self._stagger_counter:
            line = self.machine.dcache.line_bytes
            gap = (self._stagger_counter * 5 % 16 + 1) * line
            self.memory.alloc(gap, align=8)
        self._stagger_counter += 1
        addr = self.memory.alloc(nbytes, align=align, offset=offset)
        if contents:
            self.memory.write_bytes(addr, contents)
        self._arrays[name] = addr
        return addr

    def array_addr(self, name: str) -> int:
        try:
            return self._arrays[name]
        except KeyError:
            raise SimulationError(f"no array named {name!r}") from None

    def read_array(self, name: str, count: int) -> bytes:
        return self.memory.read_bytes(self._arrays[name], count)

    def write_words(
        self, addr: int, values: Sequence[int], width: int
    ) -> None:
        """Write a sequence of fixed-width integers starting at ``addr``."""
        mask = (1 << (8 * width)) - 1
        payload = b"".join(
            (v & mask).to_bytes(width, self.memory.endian) for v in values
        )
        self.memory.write_bytes(addr, payload)

    def read_words(
        self, addr: int, count: int, width: int, signed: bool = True
    ) -> list:
        """Read ``count`` fixed-width integers starting at ``addr``."""
        raw = self.memory.read_bytes(addr, count * width)
        return [
            int.from_bytes(
                raw[i * width:(i + 1) * width],
                self.memory.endian,
                signed=signed,
            )
            for i in range(count)
        ]

    # -- execution -------------------------------------------------------------
    def call(self, name: str, *args: int) -> Optional[int]:
        started = time.perf_counter()
        try:
            return self.engine.call(name, *args)
        finally:
            self.wall_seconds += time.perf_counter() - started

    def block_count(self, func_name: str, label: str) -> int:
        """How many times a block executed (drives fallback-path tests)."""
        return self.engine.stats.count_for(func_name, label)

    def report(self) -> CycleReport:
        return cycle_report(
            self.module,
            self.machine,
            self.engine.stats,
            icache=self.engine.icache,
            dcache=self.engine.dcache,
        )
