"""Process-level supervision for the compile fleet.

Each fleet worker is a complete :class:`~repro.service.server.
CompileServer` in its own OS process, listening on a private Unix
socket.  This module owns the *mechanics* of keeping such a process
alive:

* spawning (``python -m repro serve --socket <private> --worker-id N
  --exit-with-parent``) with stdout/stderr appended to a per-worker log
  file;
* liveness: process exit (clean or signalled) is detected by ``poll()``;
  a *wedged* process (SIGSTOP, runaway C loop, deadlock) is detected by
  heartbeat pings going unanswered past a timeout, and answered with
  SIGKILL — which works on stopped processes precisely because it is
  uncatchable;
* restart with exponential backoff, where the backoff exponent counts
  *consecutive short-lived* lives only: a worker that stayed up past
  ``stable_after`` seconds has proven the binary sound, so its next
  crash restarts fast again.

Routing, request requeue, and quarantine live one layer up in
:mod:`repro.service.fleet`; nothing here knows what a request is.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.service import protocol

#: Lifecycle of one worker slot (the *slot* is eternal; processes come
#: and go through it).
WORKER_STARTING = "starting"   # spawned, socket not yet answering pings
WORKER_UP = "up"               # answering heartbeats
WORKER_BACKOFF = "backoff"     # dead; restart scheduled
WORKER_STOPPED = "stopped"     # deliberately shut down

WORKER_STATES = (
    WORKER_STARTING, WORKER_UP, WORKER_BACKOFF, WORKER_STOPPED,
)

DEFAULT_HEARTBEAT_INTERVAL = 0.25
DEFAULT_HEARTBEAT_TIMEOUT = 2.0
DEFAULT_RESTART_BACKOFF_BASE = 0.05
DEFAULT_RESTART_BACKOFF_CAP = 2.0
#: Uptime after which a worker is considered proven and its crash
#: streak resets (a long-lived worker's eventual death is news, not a
#: crash loop).
DEFAULT_STABLE_AFTER = 5.0
#: How long a freshly spawned worker may take to answer its first ping
#: before the supervisor gives up on this life and respawns.
DEFAULT_SPAWN_GRACE = 15.0


def restart_backoff(
    streak: int,
    base: float = DEFAULT_RESTART_BACKOFF_BASE,
    cap: float = DEFAULT_RESTART_BACKOFF_CAP,
) -> float:
    """Seconds to wait before the next respawn after ``streak``
    consecutive short-lived lives (0 → ``base``)."""
    return min(cap, base * (2 ** max(0, streak)))


def worker_environment(env: Optional[Dict[str, str]] = None) -> Dict[str, str]:
    """A child environment that can ``import repro`` the way we did.

    The spawned interpreter inherits no ``sys.path`` surgery from the
    parent, so the package root is prepended to ``PYTHONPATH``
    explicitly — this works whether the parent ran from a checkout
    (``PYTHONPATH=src``) or an installed copy.
    """
    import repro

    env = dict(os.environ if env is None else env)
    package_root = str(Path(repro.__file__).resolve().parent.parent)
    existing = env.get("PYTHONPATH", "")
    if package_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            package_root + (os.pathsep + existing if existing else "")
        )
    # Workers draw their own plans from --inject only; a stray
    # environment plan would double-inject every request.
    env.pop("REPRO_FAULTS", None)
    return env


def worker_command(
    socket_path: str,
    worker_id: int,
    threads: int = 2,
    queue_limit: int = 16,
    breaker_threshold: Optional[int] = None,
    breaker_cooldown: Optional[float] = None,
    default_deadline: Optional[float] = None,
    crash_dir: Optional[str] = None,
    inject: str = "",
    cache_dir: Optional[str] = None,
    lease_ttl: Optional[float] = None,
) -> List[str]:
    """The argv that runs one fleet worker.

    ``cache_dir``/``lease_ttl`` are explicit flags rather than
    environment plumbing so they survive worker restarts unchanged —
    every life of the slot shares the same artifact store and lease
    protocol, which the cross-process dedup guarantees depend on.
    """
    command = [
        sys.executable, "-m", "repro", "serve",
        "--socket", socket_path,
        "--workers", str(threads),
        "--queue-limit", str(queue_limit),
        "--worker-id", str(worker_id),
        "--exit-with-parent",
    ]
    if breaker_threshold is not None:
        command += ["--breaker-threshold", str(breaker_threshold)]
    if breaker_cooldown is not None:
        command += ["--breaker-cooldown", str(breaker_cooldown)]
    if default_deadline is not None:
        command += ["--default-deadline", str(default_deadline)]
    if crash_dir:
        command += ["--crash-dir", crash_dir]
    if inject:
        command += ["--inject", inject]
    if cache_dir:
        command += ["--cache-dir", cache_dir]
    if lease_ttl is not None:
        command += ["--lease-ttl", str(lease_ttl)]
    return command


class Worker:
    """One supervised worker slot: a private socket, a log file, and
    whatever process currently fills the slot.

    Thread-safety: the fleet's monitor thread drives state transitions;
    forwarding threads only read ``socket_path``/``pid`` and call
    :meth:`kill` (idempotent, signal-based).  The lock guards the
    spawn/stop transitions where ``proc`` changes hands.
    """

    def __init__(
        self,
        index: int,
        socket_path: str,
        log_path: str,
        command: Sequence[str],
        env: Optional[Dict[str, str]] = None,
        spawn_grace: float = DEFAULT_SPAWN_GRACE,
        stable_after: float = DEFAULT_STABLE_AFTER,
        backoff_base: float = DEFAULT_RESTART_BACKOFF_BASE,
        backoff_cap: float = DEFAULT_RESTART_BACKOFF_CAP,
    ):
        self.index = index
        self.socket_path = socket_path
        self.log_path = log_path
        self.command = list(command)
        self.env = worker_environment(env)
        self.spawn_grace = spawn_grace
        self.stable_after = stable_after
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap

        self.proc: Optional[subprocess.Popen] = None
        self.state = WORKER_STOPPED
        self.spawned_at = 0.0
        self.last_ok = 0.0          # last successful heartbeat
        self.restart_at = 0.0       # when WORKER_BACKOFF may respawn
        self.restarts = 0           # lifetime respawns (not first spawn)
        self.streak = 0             # consecutive short-lived lives
        self.heartbeat_kills = 0    # hang-detector SIGKILLs delivered
        self.last_exit: Optional[int] = None
        self._log_handle = None
        self._lock = threading.Lock()

    # -- lifecycle ----------------------------------------------------------
    def spawn(self, extra_args: Sequence[str] = ()) -> None:
        """Start a process in this slot (stale socket removed first so
        the child's bind-probe never sees its dead predecessor)."""
        with self._lock:
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass
            if self._log_handle is None:
                self._log_handle = open(self.log_path, "ab", buffering=0)
            self._log_handle.write(
                f"--- spawn worker {self.index} "
                f"(life {self.restarts + 1}) ---\n".encode()
            )
            self.proc = subprocess.Popen(
                self.command + list(extra_args),
                stdout=self._log_handle,
                stderr=subprocess.STDOUT,
                stdin=subprocess.DEVNULL,
                env=self.env,
                start_new_session=True,
            )
            now = time.monotonic()
            self.spawned_at = now
            self.last_ok = now  # grace starts from spawn, not from 0
            self.state = WORKER_STARTING
            self.last_exit = None

    @property
    def pid(self) -> Optional[int]:
        return self.proc.pid if self.proc is not None else None

    def exited(self) -> bool:
        return self.proc is not None and self.proc.poll() is not None

    def uptime(self) -> float:
        return time.monotonic() - self.spawned_at if self.proc else 0.0

    def note_death(self) -> float:
        """Record the current process's death; returns the backoff to
        wait before respawning (and arms :attr:`restart_at`)."""
        self.last_exit = self.proc.poll() if self.proc is not None else None
        if self.uptime() >= self.stable_after:
            self.streak = 0
        else:
            self.streak += 1
        pause = restart_backoff(
            self.streak, self.backoff_base, self.backoff_cap
        )
        self.state = WORKER_BACKOFF
        self.restart_at = time.monotonic() + pause
        self.restarts += 1
        return pause

    # -- liveness probes ----------------------------------------------------
    def heartbeat(self, timeout: float = 0.5) -> bool:
        """One ping round trip; records success in :attr:`last_ok`."""
        try:
            response = protocol.request_over_socket(
                self.socket_path,
                {"id": 0, "op": "ping"},
                timeout=timeout,
                connect_timeout=timeout,
            )
        except (OSError, protocol.ProtocolError):
            return False
        if response is not None and response.get("status") == "ok":
            self.last_ok = time.monotonic()
            if self.state == WORKER_STARTING:
                self.state = WORKER_UP
            return True
        return False

    def heartbeat_stale(self, heartbeat_timeout: float) -> bool:
        """True when the hang detector should SIGKILL this process.

        A *starting* worker gets ``spawn_grace`` instead — it may be
        legitimately slow to bind (the ``slowstart`` fault exists to
        exercise exactly this).
        """
        if self.proc is None or self.exited():
            return False
        allowance = (
            self.spawn_grace if self.state == WORKER_STARTING
            else heartbeat_timeout
        )
        return time.monotonic() - self.last_ok > allowance

    # -- signals ------------------------------------------------------------
    def kill(self, why: str = "") -> bool:
        """SIGKILL the current process (idempotent; False if none)."""
        proc = self.proc
        if proc is None or proc.poll() is not None:
            return False
        try:
            os.kill(proc.pid, signal.SIGKILL)
        except OSError:
            return False
        if why and self._log_handle is not None:
            try:
                self._log_handle.write(
                    f"--- SIGKILL worker {self.index}: {why} ---\n".encode()
                )
            except OSError:
                pass
        return True

    def stop(self, timeout: float = 5.0) -> None:
        """Deliberate shutdown: polite drain request, then escalate."""
        with self._lock:
            proc = self.proc
            self.state = WORKER_STOPPED
            if proc is not None and proc.poll() is None:
                try:
                    protocol.request_over_socket(
                        self.socket_path,
                        {"id": 0, "op": "shutdown"},
                        timeout=1.0,
                        connect_timeout=1.0,
                    )
                except (OSError, protocol.ProtocolError):
                    pass
                try:
                    proc.wait(timeout=timeout)
                except subprocess.TimeoutExpired:
                    try:
                        os.kill(proc.pid, signal.SIGKILL)
                    except OSError:
                        pass
                    try:
                        proc.wait(timeout=5.0)
                    except subprocess.TimeoutExpired:
                        pass
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass
            if self._log_handle is not None:
                try:
                    self._log_handle.close()
                except OSError:
                    pass
                self._log_handle = None

    # -- status -------------------------------------------------------------
    def describe(self) -> dict:
        return {
            "index": self.index,
            "pid": self.pid,
            "state": self.state,
            "socket": self.socket_path,
            "log": self.log_path,
            "restarts": self.restarts,
            "streak": self.streak,
            "heartbeat_kills": self.heartbeat_kills,
            "uptime_seconds": round(self.uptime(), 3),
            "heartbeat_age": round(
                time.monotonic() - self.last_ok, 3
            ) if self.proc is not None else None,
            "last_exit": self.last_exit,
        }
