"""The compile service's client: connect, submit, retry with backoff.

Retries cover the *transient* failure surface only:

* connection failures (server restarting, socket not yet bound),
* ``rejected`` responses (load shedding — the bounded queue was full),
* ``timeout`` responses (the per-request deadline expired),
* ``shutting-down`` responses (the server is draining).

Fatal responses (parse errors, unknown ops) and degraded-but-served
responses are returned immediately — a degraded compile is a *success*
with a flag, mirroring the paper's safe-loop fallback, and retrying it
would just repeat the fallback.

Backoff is exponential with full jitter (``random.uniform(0, base *
2**attempt)``, capped), the standard recipe for decorrelating a
thundering herd of shed clients.  The RNG is injectable for
deterministic tests.

When a request carries a ``deadline``, the retry loop is budgeted by
it: a backoff sleep is clamped to the budget remaining, and once the
budget is spent the loop raises :class:`ServiceUnavailable` instead of
scheduling a retry that the server would immediately answer with
``timeout`` (or worse, spend real compile time on a result nobody is
still waiting for).
"""

from __future__ import annotations

import random
import socket
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.service import protocol


class ServiceUnavailable(ReproError):
    """Every retry was exhausted without a non-retryable answer."""

    def __init__(self, attempts: int, last_error: str):
        super().__init__(
            f"service unavailable after {attempts} attempt(s): {last_error}"
        )
        self.attempts = attempts
        self.last_error = last_error


class ServiceClient:
    """One logical client; opens a fresh connection per attempt.

    A connection-per-attempt keeps retry semantics trivial (no
    half-read frames to resynchronize) and matches how a load balancer
    would spread retries across replicas.
    """

    def __init__(
        self,
        socket_path: Optional[str] = None,
        retries: int = 5,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        connect_timeout: float = 5.0,
        response_timeout: Optional[float] = 120.0,
        rng: Optional[random.Random] = None,
        sleep=time.sleep,
        clock=time.monotonic,
    ):
        self.socket_path = socket_path or protocol.default_socket_path()
        self.retries = max(0, retries)
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.connect_timeout = connect_timeout
        self.response_timeout = response_timeout
        self.rng = rng if rng is not None else random.Random()
        self.sleep = sleep
        self.clock = clock
        self.attempts_made = 0  # across all requests, for tests/stats
        self._next_id = 0

    # -- one attempt --------------------------------------------------------
    def _attempt(self, message: dict) -> dict:
        sock = protocol.connect(
            self.socket_path, timeout=self.connect_timeout
        )
        try:
            sock.settimeout(self.response_timeout)
            protocol.send_message(sock, message)
            rfile = sock.makefile("rb")
            try:
                response = protocol.recv_message(rfile)
            finally:
                rfile.close()
        finally:
            sock.close()
        if response is None:
            raise ConnectionError("server closed the connection mid-request")
        return response

    def _backoff(self, attempt: int) -> float:
        cap = min(self.backoff_cap, self.backoff_base * (2 ** attempt))
        return self.rng.uniform(0, cap)

    # -- the public request loop --------------------------------------------
    def request(self, op: str, **fields) -> dict:
        """Send one request, retrying retryable outcomes; returns the
        final response dict.  Raises :class:`ServiceUnavailable` when the
        retry budget runs out with only retryable outcomes seen, or when
        the request's own ``deadline`` no longer leaves room to retry
        (no point sleeping past the instant the server would answer
        ``timeout`` anyway)."""
        self._next_id += 1
        message = {"id": self._next_id, "op": op}
        message.update(fields)
        deadline = message.get("deadline")
        budget = float(deadline) if deadline is not None else None
        started = self.clock()
        last_error = "no attempt made"
        attempts = 0
        for attempt in range(self.retries + 1):
            attempts += 1
            self.attempts_made += 1
            try:
                response = self._attempt(message)
            except (OSError, protocol.ProtocolError) as exc:
                last_error = f"{type(exc).__name__}: {exc}"
            else:
                if not response.get("retryable"):
                    return response
                last_error = response.get(
                    "error", f"retryable status {response.get('status')!r}"
                )
            if attempt < self.retries:
                pause = self._backoff(attempt)
                if budget is not None:
                    remaining = budget - (self.clock() - started)
                    if remaining <= 0:
                        last_error = (
                            f"deadline of {budget:g}s exhausted after "
                            f"{attempts} attempt(s); last: {last_error}"
                        )
                        break
                    pause = min(pause, remaining)
                self.sleep(pause)
        raise ServiceUnavailable(attempts, last_error)

    # -- conveniences -------------------------------------------------------
    def ping(self) -> bool:
        try:
            return self.request("ping").get("status") == "ok"
        except (ReproError, OSError):
            return False

    def status(self) -> dict:
        return self.request("status")

    def compile(
        self,
        source: str,
        machine: str = "alpha",
        config: str = "vpo",
        **fields,
    ) -> dict:
        return self.request(
            "compile", source=source, machine=machine, config=config,
            **fields,
        )

    def simulate(
        self,
        source: str,
        entry: str,
        args: Sequence,
        arrays: Optional[List[Tuple[str, int, List[int]]]] = None,
        machine: str = "alpha",
        config: str = "vpo",
        **fields,
    ) -> dict:
        return self.request(
            "simulate", source=source, entry=entry, args=list(args),
            arrays=[list(a) for a in arrays or []],
            machine=machine, config=config, **fields,
        )

    def bench(
        self, program: str, machine: str = "alpha",
        variant: str = "coalesce-all", size: int = 16, **fields,
    ) -> dict:
        return self.request(
            "bench", program=program, machine=machine, variant=variant,
            size=size, **fields,
        )

    def shutdown_server(self) -> dict:
        """Ask the server to drain and exit (no retries: a connection
        failure here most likely means it is already gone)."""
        self._next_id += 1
        try:
            return self._attempt({"id": self._next_id, "op": "shutdown"})
        except OSError as exc:
            return {
                "status": "error",
                "error": f"{type(exc).__name__}: {exc}",
            }


def wait_until_ready(
    socket_path: Optional[str] = None,
    timeout: float = 10.0,
    interval: float = 0.05,
) -> bool:
    """Poll until a server answers ping at ``socket_path`` (or timeout)."""
    client = ServiceClient(socket_path, retries=0)
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if client.ping():
            return True
        time.sleep(interval)
    return False


def parse_array_specs(
    specs: Optional[Sequence[str]],
) -> List[Tuple[str, int, List[int]]]:
    """CLI ``NAME:WIDTH:v1,v2,...`` specs → protocol array triples."""
    arrays: List[Tuple[str, int, List[int]]] = []
    for spec in specs or []:
        try:
            name, width, values = spec.split(":", 2)
            arrays.append((
                name,
                int(width),
                [int(v, 0) for v in values.split(",")] if values else [],
            ))
        except ValueError:
            raise ReproError(
                f"bad array spec {spec!r}; want NAME:WIDTH:v1,v2,..."
            ) from None
    return arrays
