"""``python -m repro serve --fleet N`` — the supervised compile fleet.

One :class:`FleetSupervisor` process owns the public Unix socket and a
fleet of worker *processes* (each a full threaded
:class:`~repro.service.server.CompileServer` on a private socket)::

    clients ──▶ fleet socket ──▶ FleetSupervisor ──▶ worker-0.sock ──▶ W0
                                     │  (shard by       worker-1.sock ──▶ W1
                                     │   machine/config)     ...
                                     └── monitor thread: heartbeats,
                                         restart-with-backoff, hang SIGKILL

Why processes: a thread that segfaults, deadlocks, or is SIGKILLed
takes its whole process with it — the one failure mode PR 4's threaded
server cannot degrade through.  The fleet applies the paper's Fig. 5
discipline at the process boundary:

* **Sharding** — requests route by hash of ``(machine, config)``, so
  all the evidence a circuit breaker accumulates for one key lives in
  exactly one worker.  Killing worker 2 cannot touch the breaker state
  worker 1 holds for its shards.
* **Crash recovery** — a request whose worker dies mid-flight is
  requeued *exactly once* to the restarted worker, with its remaining
  deadline budget (not a fresh one) propagated across the process
  boundary.  Connection failures *before* the request was sent are not
  crashes — the supervisor just waits out the restart.
* **Quarantine** — a request that kills its worker twice is the prime
  suspect, not the worker.  It is answered directly by the supervisor:
  a degraded local compile (optimizer off, recovery on) plus a
  ``repro_crash_*`` quarantine bundle for offline diagnosis — degraded,
  not dead, and never a third worker funeral.
* **Hang recovery** — workers answer heartbeat pings inline in their
  connection threads (never queued behind compiles), so a wedged
  process (SIGSTOP, runaway loop) goes quiet and the monitor SIGKILLs
  it; the forwarding side observes the severed connection and takes the
  requeue path above.

Fleet-level chaos (``python -m repro chaos --fleet``) drives a mixed
workload while ``kill``/``hang``/``slowstart`` faults
(:data:`~repro.resilience.faults.FLEET_FAULT_KINDS`) SIGKILL and wedge
workers mid-compile, asserting the zero-lost-requests contract end to
end; :func:`run_fleet_chaos` is that harness, shared by the CLI and the
acceptance test.
"""

from __future__ import annotations

import hashlib
import os
import random
import signal
import socket
import tempfile
import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.errors import QuarantinedRequest
from repro.resilience.faults import FaultPlan, FaultSpec
from repro.service import protocol
from repro.service.server import CompileServer, _Connection, _Stats
from repro.service.supervisor import (
    DEFAULT_HEARTBEAT_INTERVAL,
    DEFAULT_HEARTBEAT_TIMEOUT,
    DEFAULT_RESTART_BACKOFF_BASE,
    DEFAULT_RESTART_BACKOFF_CAP,
    DEFAULT_SPAWN_GRACE,
    DEFAULT_STABLE_AFTER,
    WORKER_BACKOFF,
    WORKER_STOPPED,
    WORKER_UP,
    Worker,
    worker_command,
)

DEFAULT_FLEET_WORKERS = 4
#: A request that crashes its worker may be requeued this many times
#: before quarantine ("exactly once" is the whole point).
DEFAULT_REQUEUE_LIMIT = 1
#: Recv budget for unbudgeted requests; budgeted ones use 2x remaining.
DEFAULT_FORWARD_TIMEOUT = 120.0
#: Deadline the quarantine fallback compile runs under when the
#: original request carried none.
QUARANTINE_DEADLINE = 30.0

#: The ops the fleet forwards to workers (everything else is answered
#: by the supervisor itself).
FORWARDED_OPS = ("compile", "simulate", "bench")


def shard_key(request: dict) -> str:
    """The routing key of one request: ``machine/config`` (bench
    requests key on their variant, which decides their configs)."""
    machine = str(request.get("machine", "alpha"))
    if request.get("op") == "bench":
        name = "bench:" + str(request.get("variant", "coalesce-all"))
    else:
        name = str(request.get("config", "vpo"))
    return f"{machine}/{name}"


def shard_index(request: dict, workers: int) -> int:
    """Worker index for one request in a ``workers``-wide fleet.

    sha256, not ``hash()``: stable across processes and
    ``PYTHONHASHSEED``, so a restarted supervisor routes the same keys
    to the same slots.
    """
    digest = hashlib.sha256(shard_key(request).encode()).digest()
    return int.from_bytes(digest[:4], "big") % max(1, workers)


class _FleetStats(_Stats):
    FIELDS = _Stats.FIELDS + (
        "forwarded", "requeued", "quarantined", "hang_kills",
    )


class FleetSupervisor:
    """The fleet front end: accept, shard, forward, recover.

    Parameters mirror :class:`CompileServer` where they exist there;
    the worker-facing ones (``worker_threads``, ``queue_limit``,
    breaker knobs, ``crash_dir``, ``worker_inject``) are passed through
    to each spawned worker's command line.
    """

    def __init__(
        self,
        socket_path: Optional[str] = None,
        workers: int = DEFAULT_FLEET_WORKERS,
        worker_threads: int = 2,
        queue_limit: int = 16,
        breaker_threshold: Optional[int] = None,
        breaker_cooldown: Optional[float] = None,
        default_deadline: Optional[float] = None,
        crash_dir: Optional[str] = None,
        worker_inject: str = "",
        fleet_faults: Optional[FaultPlan] = None,
        run_dir: Optional[str] = None,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT,
        restart_backoff_base: float = DEFAULT_RESTART_BACKOFF_BASE,
        restart_backoff_cap: float = DEFAULT_RESTART_BACKOFF_CAP,
        stable_after: float = DEFAULT_STABLE_AFTER,
        spawn_grace: float = DEFAULT_SPAWN_GRACE,
        requeue_limit: int = DEFAULT_REQUEUE_LIMIT,
        forward_timeout: float = DEFAULT_FORWARD_TIMEOUT,
        connect_timeout: float = 1.0,
        max_in_flight: Optional[int] = None,
        cache_dir: Optional[str] = None,
        lease_ttl: Optional[float] = None,
    ):
        self.socket_path = socket_path or protocol.default_socket_path()
        self.run_dir = run_dir or tempfile.mkdtemp(prefix="repro-fleet-")
        os.makedirs(self.run_dir, exist_ok=True)
        self.default_deadline = default_deadline
        self.crash_dir = crash_dir or os.environ.get("REPRO_CRASH_DIR")
        # The shared artifact cache: explicit flags (not environment
        # plumbing) so every life of every worker slot lands on the
        # same store with the same lease TTL — the cross-process dedup
        # guarantees depend on that.
        self.cache_dir = cache_dir
        self.lease_ttl = lease_ttl
        self.fleet_faults = fleet_faults
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.requeue_limit = max(0, requeue_limit)
        self.forward_timeout = forward_timeout
        self.connect_timeout = connect_timeout
        self.max_in_flight = (
            max_in_flight if max_in_flight is not None
            else max(1, workers) * max(1, queue_limit)
        )
        self.stats = _FleetStats()
        self.supervisor_log = os.path.join(self.run_dir, "supervisor.log")
        self._log_lock = threading.Lock()
        self._workers: List[Worker] = []
        for index in range(max(1, workers)):
            wsock = os.path.join(self.run_dir, f"worker-{index}.sock")
            wlog = os.path.join(self.run_dir, f"worker-{index}.log")
            self._workers.append(Worker(
                index=index,
                socket_path=wsock,
                log_path=wlog,
                command=worker_command(
                    wsock, index,
                    threads=worker_threads,
                    queue_limit=queue_limit,
                    breaker_threshold=breaker_threshold,
                    breaker_cooldown=breaker_cooldown,
                    crash_dir=self.crash_dir,
                    inject=worker_inject,
                    cache_dir=self.cache_dir,
                    lease_ttl=self.lease_ttl,
                ),
                spawn_grace=spawn_grace,
                stable_after=stable_after,
                backoff_base=restart_backoff_base,
                backoff_cap=restart_backoff_cap,
            ))
        self._listener = None
        self._threads: List[threading.Thread] = []
        self._connections: set = set()
        self._conn_lock = threading.Lock()
        self._stopping = threading.Event()
        self._stopped = threading.Event()
        self._shutdown_lock = threading.Lock()
        self._started_at: Optional[float] = None
        self._local: Optional[CompileServer] = None
        self._local_lock = threading.Lock()

    # -- logging ------------------------------------------------------------
    def _log(self, message: str) -> None:
        line = f"[{time.strftime('%H:%M:%S')}] {message}\n"
        with self._log_lock:
            try:
                with open(self.supervisor_log, "a") as handle:
                    handle.write(line)
            except OSError:
                pass

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> None:
        self._listener = protocol.bind(self.socket_path)
        self._started_at = time.monotonic()
        self._log(
            f"fleet up on {self.socket_path}: {len(self._workers)} "
            f"workers, run dir {self.run_dir}"
        )
        for worker in self._workers:
            self._spawn(worker)
        for target, name in (
            (self._accept_loop, "fleet-accept"),
            (self._monitor_loop, "fleet-monitor"),
        ):
            thread = threading.Thread(target=target, name=name, daemon=True)
            thread.start()
            self._threads.append(thread)

    def serve_forever(self) -> None:
        self.start()
        try:
            self._stopped.wait()
        except KeyboardInterrupt:
            self.shutdown()

    def shutdown(self) -> None:
        """Stop accepting, drain in-flight forwards, stop the workers."""
        with self._shutdown_lock:
            if self._stopped.is_set():
                return
            self._stopping.set()
            self._log("fleet shutting down")
            if self._listener is not None:
                try:
                    self._listener.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                try:
                    nudge = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                    nudge.settimeout(0.25)
                    nudge.connect(self.socket_path)
                    nudge.close()
                except OSError:
                    pass
                try:
                    self._listener.close()
                except OSError:
                    pass
            drain_until = time.monotonic() + 30.0
            while (
                self.stats.snapshot()["in_flight"] > 0
                and time.monotonic() < drain_until
            ):
                time.sleep(0.05)
            for worker in self._workers:
                worker.stop()
            for thread in self._threads:
                if thread is not threading.current_thread():
                    thread.join(timeout=10.0)
            with self._conn_lock:
                connections = list(self._connections)
            for conn in connections:
                conn.close()
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass
            self._log("fleet stopped")
            self._stopped.set()

    @property
    def running(self) -> bool:
        return self._started_at is not None and not self._stopped.is_set()

    # -- worker management --------------------------------------------------
    def _spawn(self, worker: Worker) -> None:
        extra: List[str] = []
        if self.fleet_faults is not None:
            spec = self.fleet_faults.draw(f"worker:{worker.index}:spawn")
            if spec is not None and spec.kind == "slowstart":
                extra = ["--slowstart", str(spec.seconds or 0.5)]
                self._log(
                    f"worker {worker.index}: slowstart fault "
                    f"({spec.seconds or 0.5:g}s bind delay)"
                )
        worker.spawn(extra)
        self._log(
            f"worker {worker.index}: spawned pid {worker.pid} "
            f"(life {worker.restarts + 1})"
        )

    def _monitor_loop(self) -> None:
        while not self._stopping.is_set():
            for worker in self._workers:
                if self._stopping.is_set():
                    return
                if worker.state == WORKER_STOPPED:
                    continue
                if worker.exited():
                    if worker.state != WORKER_BACKOFF:
                        pause = worker.note_death()
                        self._log(
                            f"worker {worker.index}: died "
                            f"(exit {worker.last_exit}); restart in "
                            f"{pause:.2f}s (streak {worker.streak})"
                        )
                    elif time.monotonic() >= worker.restart_at:
                        self._spawn(worker)
                    continue
                worker.heartbeat(
                    timeout=min(0.5, self.heartbeat_timeout)
                )
                if worker.heartbeat_stale(self.heartbeat_timeout):
                    worker.heartbeat_kills += 1
                    self.stats.bump("hang_kills")
                    self._log(
                        f"worker {worker.index}: heartbeat stale "
                        f"(> {self.heartbeat_timeout:g}s); SIGKILL"
                    )
                    worker.kill(why="heartbeat timeout")
            self._stopping.wait(self.heartbeat_interval)

    def shard_of(self, request: dict) -> int:
        """Worker index serving this request's (machine, config) key."""
        return shard_index(request, len(self._workers))

    # -- accept / connection handling ---------------------------------------
    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                sock, _ = self._listener.accept()
            except OSError:
                break
            conn = _Connection(sock)
            with self._conn_lock:
                self._connections.add(conn)
            thread = threading.Thread(
                target=self._connection_loop,
                args=(conn,),
                name="fleet-conn",
                daemon=True,
            )
            thread.start()

    def _connection_loop(self, conn: _Connection) -> None:
        try:
            while True:
                try:
                    request = protocol.recv_message(conn.rfile)
                except protocol.ProtocolError as exc:
                    self.stats.bump("protocol_errors")
                    conn.send(protocol.make_response(
                        None, protocol.STATUS_ERROR,
                        error=str(exc), retryable=False,
                    ))
                    return
                except OSError:
                    return
                if request is None:
                    return
                self._dispatch(conn, request)
        finally:
            with self._conn_lock:
                self._connections.discard(conn)
            conn.close()

    def _dispatch(self, conn: _Connection, request: dict) -> None:
        received_at = time.monotonic()
        request_id = request.get("id")
        complaint = protocol.validate_request(request)
        if complaint is not None:
            self.stats.bump("protocol_errors")
            conn.send(protocol.make_response(
                request_id, protocol.STATUS_ERROR,
                error=complaint, retryable=False,
            ))
            return
        op = request["op"]
        if op == "ping":
            conn.send(protocol.make_response(
                request_id, protocol.STATUS_OK, pong=True, fleet=True,
            ))
            return
        if op == "status":
            conn.send(protocol.make_response(
                request_id, protocol.STATUS_OK, **self._status_payload()
            ))
            return
        if op == "shutdown":
            conn.send(protocol.make_response(
                request_id, protocol.STATUS_OK, stopping=True,
            ))
            threading.Thread(target=self.shutdown, daemon=True).start()
            return
        if self._stopping.is_set():
            conn.send(protocol.make_response(
                request_id, protocol.STATUS_SHUTTING_DOWN,
                error="fleet is draining",
            ))
            return
        if self.stats.snapshot()["in_flight"] >= self.max_in_flight:
            self.stats.bump("rejected")
            conn.send(protocol.make_response(
                request_id, protocol.STATUS_REJECTED,
                error=(
                    f"fleet has {self.max_in_flight} requests in "
                    "flight; retry with backoff"
                ),
            ))
            return
        self.stats.bump("accepted")
        self.stats.bump("in_flight")
        try:
            response = self._forward(request, received_at)
        except Exception as exc:  # noqa: BLE001 — the fleet must answer
            self.stats.bump("errors")
            response = protocol.make_response(
                request_id, protocol.STATUS_ERROR,
                error=f"{type(exc).__name__}: {exc}", retryable=False,
            )
        finally:
            self.stats.bump("in_flight", -1)
        status = response.get("status")
        if status in protocol.SERVED_STATUSES:
            self.stats.bump("completed")
            self.stats.bump(
                "ok" if status == protocol.STATUS_OK else "degraded"
            )
        elif status == protocol.STATUS_TIMEOUT:
            self.stats.bump("timeouts")
        elif status == protocol.STATUS_REJECTED:
            self.stats.bump("rejected")
        elif status != protocol.STATUS_SHUTTING_DOWN:
            self.stats.bump("errors")
        conn.send(response)

    # -- forwarding with crash recovery -------------------------------------
    def _forward(self, request: dict, received_at: float) -> dict:
        """Route one work request to its shard, surviving worker death.

        The recovery contract: a connection refused *before* the
        request was sent is the worker restarting (wait, no strike); a
        connection severed *after* the send, or a response timeout, is
        a crash strike against this request.  ``requeue_limit`` strikes
        are forgiven; one more and the request is quarantined.
        """
        request_id = request.get("id")
        shard = self.shard_of(request)
        worker = self._workers[shard]
        budget = request.get("deadline", self.default_deadline)
        budget = float(budget) if budget is not None else None
        strikes = 0
        requeues = 0
        wait_started: Optional[float] = None
        while True:
            now = time.monotonic()
            if budget is not None:
                remaining = budget - (now - received_at)
                if remaining <= 0:
                    return protocol.make_response(
                        request_id, protocol.STATUS_TIMEOUT,
                        error=(
                            f"deadline of {budget:g}s spent before "
                            f"worker {shard} could answer"
                        ),
                        deadline=budget,
                        elapsed=round(now - received_at, 6),
                        worker=shard, requeued=requeues,
                    )
            else:
                remaining = None
            if self._stopping.is_set():
                return protocol.make_response(
                    request_id, protocol.STATUS_SHUTTING_DOWN,
                    error="fleet is draining", worker=shard,
                )
            forwarded = dict(request)
            if remaining is not None:
                # The restarted worker inherits the *remaining* budget,
                # not a fresh one: queue time, crash time, and restart
                # time all spend the same clock the client is watching.
                forwarded["deadline"] = remaining
            recv_timeout = (
                remaining * 2 + 0.5 if remaining is not None
                else self.forward_timeout
            )
            outcome, payload = self._attempt(
                worker, forwarded, recv_timeout,
                # Arm fleet faults only once the worker is reachable: a
                # dispatch that never connected consumed no arrival.
                on_connected=lambda: self._arm_dispatch_fault(
                    shard, worker
                ),
            )
            if outcome != "unreachable":
                self.stats.bump("forwarded")
            if outcome == "ok":
                response = payload
                response.setdefault("worker", shard)
                if requeues:
                    response["requeued"] = requeues
                return response
            if outcome == "unreachable":
                # Nothing was delivered: the worker is down or still
                # binding.  Wait out the restart; no strike.
                if wait_started is None:
                    wait_started = time.monotonic()
                waited = time.monotonic() - wait_started
                if (
                    remaining is None
                    and waited > min(30.0, self.forward_timeout)
                ):
                    return protocol.make_response(
                        request_id, protocol.STATUS_REJECTED,
                        error=(
                            f"worker {shard} unavailable for "
                            f"{waited:.1f}s; retry with backoff"
                        ),
                        worker=shard,
                    )
                time.sleep(0.05)
                continue
            wait_started = None
            # 'crashed' or 'hung': this request was in the worker when
            # it went dark.
            strikes += 1
            if outcome == "hung":
                self.stats.bump("hang_kills")
                worker.heartbeat_kills += 1
                worker.kill(
                    why=f"request {request_id!r} unanswered past "
                        f"{recv_timeout:.2f}s"
                )
            self._log(
                f"worker {shard}: {outcome} holding request "
                f"{request_id!r} (strike {strikes}: {payload})"
            )
            if strikes > self.requeue_limit:
                return self._quarantine(
                    request, received_at, shard, strikes, payload
                )
            self.stats.bump("requeued")
            requeues += 1

    def _attempt(
        self,
        worker: Worker,
        message: dict,
        recv_timeout: float,
        on_connected=None,
    ) -> Tuple[str, object]:
        """One forward attempt: ('ok', response) | ('unreachable' |
        'crashed' | 'hung', detail-string).

        Every dispatch opens with a *preflight ping on the same
        connection*.  A SIGKILLed worker's listen backlog can swallow
        one last ``connect()`` in the instant of its teardown — the
        connect succeeds, the send lands in a buffer nobody will ever
        read, and the recv sees a reset that is indistinguishable from
        a mid-request crash.  Only a live process can answer the
        preflight (workers answer pings inline in the connection
        thread), so a severed connection *before* the pong means the
        request was never delivered: no strike.  A sever *after* the
        pong means a live worker took the request down with it.
        """
        try:
            sock = protocol.connect(
                worker.socket_path, timeout=self.connect_timeout
            )
        except OSError as exc:
            return "unreachable", f"{type(exc).__name__}: {exc}"
        sent = False
        response = None
        try:
            if worker.exited():
                # Cheap fast-path for the backlog ghost (the preflight
                # below catches the teardown window poll() misses).
                return "unreachable", "worker already dead at connect"
            try:
                sock.settimeout(min(2.0, recv_timeout))
                protocol.send_message(sock, {"id": 0, "op": "ping"})
                rfile = sock.makefile("rb")
                try:
                    pong = protocol.recv_message(rfile)
                    if pong is None or pong.get("status") != "ok":
                        return "unreachable", "no preflight pong"
                    # Delivery is now provable; arm per-dispatch faults
                    # only for dispatches that really happen.
                    if on_connected is not None:
                        on_connected()
                    sock.settimeout(recv_timeout)
                    protocol.send_message(sock, message)
                    sent = True
                    response = protocol.recv_message(rfile)
                finally:
                    rfile.close()
            except socket.timeout:
                if not sent:
                    return "unreachable", "no preflight pong in time"
                return "hung", f"no response within {recv_timeout:.2f}s"
            except (OSError, protocol.ProtocolError) as exc:
                kind = "crashed" if sent else "unreachable"
                return kind, f"{type(exc).__name__}: {exc}"
        finally:
            try:
                sock.close()
            except OSError:
                pass
        if response is None:
            return "crashed", "connection severed before a response"
        return "ok", response

    def _arm_dispatch_fault(self, shard: int, worker: Worker) -> None:
        """Draw the ``worker:<shard>`` site; a kill/hang spec fires on
        a timer thread shortly after this dispatch (mid-compile)."""
        plan = self.fleet_faults
        if plan is None:
            return
        spec = plan.draw(f"worker:{shard}")
        if spec is None or spec.kind not in ("kill", "hang"):
            return
        pid = worker.pid
        if pid is None:
            return
        delay = spec.seconds or 0.05
        sig = signal.SIGKILL if spec.kind == "kill" else signal.SIGSTOP
        self._log(
            f"worker {shard}: arming {spec.kind} fault "
            f"({delay:g}s after dispatch, pid {pid})"
        )

        def fire() -> None:
            time.sleep(delay)
            if worker.pid == pid:  # not already restarted
                try:
                    os.kill(pid, sig)
                except OSError:
                    pass

        threading.Thread(
            target=fire, name=f"fleet-fault-{shard}", daemon=True
        ).start()

    # -- quarantine ---------------------------------------------------------
    def _local_server(self) -> CompileServer:
        """The embedded (never-started) server that answers quarantined
        requests in-process: no socket, no threads, just ``_process``."""
        with self._local_lock:
            if self._local is None:
                self._local = CompileServer(
                    socket_path=os.path.join(
                        self.run_dir, "quarantine.sock"
                    ),
                    workers=1,
                    default_deadline=QUARANTINE_DEADLINE,
                    faults=FaultPlan(),
                    crash_dir=self.crash_dir,
                )
            return self._local

    def _quarantine(
        self,
        request: dict,
        received_at: float,
        shard: int,
        strikes: int,
        detail: object,
    ) -> dict:
        """Answer a worker-killing request without risking a third
        worker: degraded local compile + a quarantine bundle."""
        from repro.resilience.bundle import write_quarantine_bundle

        self.stats.bump("quarantined")
        request_id = request.get("id")
        reason = (
            f"took down worker {shard} {strikes} time(s); last: {detail}"
        )
        self._log(f"quarantine request {request_id!r}: {reason}")
        bundle = ""
        if self.crash_dir and isinstance(request.get("source"), str):
            try:
                bundle = write_quarantine_bundle(
                    request, reason, self.crash_dir, worker=shard,
                )
            except OSError:
                pass

        extra = {
            "quarantined": True,
            "quarantine_reason": reason,
            "worker": shard,
            "requeued": max(0, strikes - 1),
        }
        if bundle:
            extra["bundle"] = bundle

        if request.get("op") not in ("compile", "simulate"):
            exc = QuarantinedRequest(request_id, reason)
            return protocol.make_response(
                request_id, protocol.STATUS_ERROR,
                error=str(exc), error_type="QuarantinedRequest",
                classification="fatal", retryable=False, **extra,
            )

        # The safest request we can make of the pipeline: request
        # faults stripped, optimizer off, recovery on — the Fig. 5
        # safe loop with no fast path left to guard.
        safe = dict(request)
        safe.pop("faults", None)
        overrides = dict(safe.get("overrides") or {})
        overrides.update(
            optimize=False, unroll=False, schedule=False,
            on_pass_failure="skip",
        )
        safe["overrides"] = overrides
        budget = request.get("deadline", self.default_deadline)
        if budget is not None:
            safe["deadline"] = float(budget)
        local = self._local_server()
        try:
            response = local._process(safe, received_at)
        except Exception as exc:  # noqa: BLE001 — answer, always
            failure = QuarantinedRequest(
                request_id, f"{reason}; local fallback failed: {exc}"
            )
            return protocol.make_response(
                request_id, protocol.STATUS_ERROR,
                error=str(failure), error_type="QuarantinedRequest",
                classification="fatal", retryable=False, **extra,
            )
        finally:
            local._tls.deadline = None

        status = response.get("status")
        if status in protocol.SERVED_STATUSES:
            # Served, but never 'ok': the answer is real yet the
            # request is radioactive — callers must see the flag.
            response["status"] = protocol.STATUS_DEGRADED
            response["retryable"] = False
        elif status != protocol.STATUS_TIMEOUT:
            response["error_type"] = "QuarantinedRequest"
            response["retryable"] = False
        response.update(extra)
        return response

    # -- status -------------------------------------------------------------
    def _status_payload(self, scrape: bool = True) -> dict:
        counts = self.stats.snapshot()
        uptime = (
            time.monotonic() - self._started_at
            if self._started_at is not None else 0.0
        )
        workers = []
        for worker in self._workers:
            info = worker.describe()
            if scrape and worker.state == WORKER_UP:
                try:
                    scraped = protocol.request_over_socket(
                        worker.socket_path,
                        {"id": 0, "op": "status"},
                        timeout=1.0,
                        connect_timeout=0.5,
                    )
                except (OSError, protocol.ProtocolError):
                    scraped = None
                if scraped is not None and scraped.get("status") == "ok":
                    info["server"] = scraped.get("server")
                    info["breakers"] = scraped.get("breakers")
                    info["latency"] = scraped.get("latency")
                else:
                    info["unreachable"] = True
            workers.append(info)
        cache = None
        if self.cache_dir:
            # All workers share one artifact store, so its journal is
            # the fleet-wide dedup ledger; read it here rather than
            # trusting any single worker's view.
            try:
                from repro.service.artifacts import ArtifactStore
                cache = ArtifactStore(
                    self.cache_dir, ttl=self.lease_ttl
                ).counters()
            except (OSError, ValueError):
                cache = None
        return {
            "fleet": {
                "socket": self.socket_path,
                "pid": os.getpid(),
                "workers": len(self._workers),
                "uptime_seconds": round(uptime, 3),
                "stopping": self._stopping.is_set(),
                "run_dir": self.run_dir,
                "supervisor_log": self.supervisor_log,
                "worker_restarts": sum(
                    w.restarts for w in self._workers
                ),
                "max_in_flight": self.max_in_flight,
                "requeue_limit": self.requeue_limit,
                "default_deadline": self.default_deadline,
                "faults": (
                    str(self.fleet_faults) if self.fleet_faults else ""
                ),
                "cache_dir": self.cache_dir,
                "lease_ttl": self.lease_ttl,
                **counts,
            },
            "cache": cache,
            "workers": workers,
        }


# -- the fleet chaos harness --------------------------------------------------

_CHAOS_DOT = """
int dot(short *a, short *b, int n) {
    int i, s;
    s = 0;
    for (i = 0; i < n; i++)
        s += a[i] * b[i];
    return s;
}
"""

_CHAOS_COPY = """
void copy(char *dst, char *src, int n) {
    int i;
    for (i = 0; i < n; i++)
        dst[i] = src[i];
}
"""

_CHAOS_ADD = "int add(int a, int b) { return a + b; }"

#: (machine, config) pairs the mixed workload cycles through — enough
#: keys that a 4-worker fleet has populated *and* untouched shards.
_CHAOS_KEYS = (
    ("alpha", "coalesce-all"),
    ("alpha", "vpo"),
    ("m88100", "coalesce-all"),
    ("m68030", "cc"),
    ("alpha", "cc"),
    ("m88100", "vpo"),
)


def build_chaos_plan(
    rng: random.Random,
    workers: int,
    workload: List[dict],
    kills: int,
    hangs: int,
) -> FaultPlan:
    """A seeded fleet fault plan: ``kills`` SIGKILLs and ``hangs``
    SIGSTOPs spread over worker dispatch arrivals.

    Sites and hit counts are drawn against the *actual* dispatch
    distribution of ``workload`` (sharding is deterministic), so every
    planted fault lands on a worker that really receives requests, at
    an arrival it will really reach.
    """
    arrivals: Dict[int, int] = {}
    for request in workload:
        shard = shard_index(request, workers)
        arrivals[shard] = arrivals.get(shard, 0) + 1
    busy = sorted(
        shard for shard, count in arrivals.items() if count >= 4
    ) or sorted(arrivals)
    specs: List[FaultSpec] = []
    seen = set()
    for kind, count in (("kill", kills), ("hang", hangs)):
        for _ in range(count):
            for _ in range(64):  # resample collisions
                shard = busy[rng.randrange(len(busy))]
                site = f"worker:{shard}"
                # Leave headroom below the arrival ceiling: requeues
                # shift later arrivals, and the last dispatches must
                # find a live worker to drain through.
                hit = rng.randint(
                    2, max(2, (arrivals[shard] * 2) // 3)
                )
                if (site, hit) not in seen:
                    seen.add((site, hit))
                    break
            else:
                continue
            specs.append(FaultSpec(
                site, kind, hit=hit,
                seconds=round(rng.uniform(0.02, 0.25), 3),
            ))
    return FaultPlan(specs)


def build_chaos_workload(
    rng: random.Random, requests: int, deadline: float
) -> List[dict]:
    """``requests`` mixed compile/simulate requests over several
    (machine, config) shards; a slice carry ``sleep`` faults to hold
    workers mid-compile (widening the kill window), a slice carry
    deliberately tight deadlines."""
    workload: List[dict] = []
    for index in range(requests):
        machine, config = _CHAOS_KEYS[index % len(_CHAOS_KEYS)]
        roll = rng.random()
        if roll < 0.15:
            request = {
                "op": "simulate",
                "source": _CHAOS_DOT,
                "entry": "dot",
                "machine": machine,
                "config": config,
                "arrays": [
                    ["a", 2, [3, 1, 4, 1, 5, 9, 2, 6]],
                    ["b", 2, [1, 1, 1, 1, 1, 1, 1, 1]],
                ],
                "args": ["a", "b", 8],
            }
        else:
            source = (
                _CHAOS_DOT, _CHAOS_COPY, _CHAOS_ADD
            )[index % 3]
            request = {
                "op": "compile",
                "source": source,
                "machine": machine,
                "config": config,
            }
        if roll > 0.7:
            # Hold the worker in the pipeline so armed kills land
            # mid-compile, not between requests.
            request["faults"] = (
                f"cleanup=sleep:{round(rng.uniform(0.1, 0.3), 2)}"
            )
        if roll > 0.95:
            request["deadline"] = 0.4  # must come back 'timeout'
        else:
            request["deadline"] = deadline
        workload.append(request)
    return workload


def run_fleet_chaos(
    requests: int = 100,
    workers: int = DEFAULT_FLEET_WORKERS,
    seed: int = 0,
    deadline: float = 10.0,
    kills: int = 3,
    hangs: int = 1,
    socket_path: Optional[str] = None,
    run_dir: Optional[str] = None,
    crash_dir: Optional[str] = None,
    client_threads: int = 8,
    echo=None,
) -> Tuple[dict, List[str]]:
    """SIGKILL/SIGSTOP workers under a live mixed workload and audit
    the zero-lost-requests contract.

    Returns ``(summary, problems)``; an empty ``problems`` list is a
    pass.  The audit: every request gets a terminal answer (ok,
    degraded, timeout, or a typed quarantine/deadline error), nothing
    runs past 2x its deadline (plus scheduling slack), and every fired
    kill is matched by a worker restart.
    """
    from repro.service.client import (
        ServiceClient,
        ServiceUnavailable,
        wait_until_ready,
    )

    def say(message: str) -> None:
        if echo is not None:
            echo(message)

    rng = random.Random(seed)
    workload = build_chaos_workload(rng, requests, deadline)
    plan = build_chaos_plan(rng, workers, workload, kills, hangs)
    say(f"fleet chaos: plan {plan}")

    if run_dir is None:
        run_dir = tempfile.mkdtemp(prefix="repro-fleet-chaos-")
    if socket_path is None:
        # Never the default service socket: a chaos sweep must not
        # hijack (or probe-steal) a production server's address.
        socket_path = os.path.join(run_dir, "fleet.sock")

    fleet = FleetSupervisor(
        socket_path=socket_path,
        workers=workers,
        run_dir=run_dir,
        crash_dir=crash_dir,
        fleet_faults=plan,
        heartbeat_interval=0.1,
        heartbeat_timeout=1.0,
    )
    problems: List[str] = []
    outcomes: List[Optional[dict]] = [None] * len(workload)
    elapsed: List[float] = [0.0] * len(workload)
    try:
        fleet.start()
        if not wait_until_ready(fleet.socket_path, timeout=10.0):
            raise OSError(
                f"fleet never became ready on {fleet.socket_path}"
            )
        cursor = {"next": 0}
        cursor_lock = threading.Lock()

        def drive() -> None:
            client = ServiceClient(
                fleet.socket_path, retries=8,
                backoff_base=0.02, backoff_cap=0.2,
            )
            while True:
                with cursor_lock:
                    index = cursor["next"]
                    if index >= len(workload):
                        return
                    cursor["next"] = index + 1
                request = workload[index]
                began = time.monotonic()
                try:
                    response = client.request(
                        request["op"],
                        **{
                            k: v for k, v in request.items()
                            if k != "op"
                        },
                    )
                except ServiceUnavailable as exc:
                    response = {
                        "status": "client-deadline"
                        if "deadline" in str(exc) else "unavailable",
                        "error": str(exc),
                    }
                except Exception as exc:  # noqa: BLE001 — audit, don't die
                    response = {
                        "status": "client-error",
                        "error": f"{type(exc).__name__}: {exc}",
                    }
                outcomes[index] = response
                elapsed[index] = time.monotonic() - began

        threads = [
            threading.Thread(target=drive, name=f"chaos-client-{i}")
            for i in range(max(1, client_threads))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=requests * 10.0)
        status = fleet._status_payload(scrape=True)
    finally:
        fleet.shutdown()

    # -- audit ---------------------------------------------------------------
    by_status: Dict[str, int] = {}
    max_elapsed = 0.0
    for index, response in enumerate(outcomes):
        request = workload[index]
        if response is None:
            problems.append(f"request {index}: LOST (no answer)")
            continue
        got = response.get("status")
        by_status[got] = by_status.get(got, 0) + 1
        max_elapsed = max(max_elapsed, elapsed[index])
        budget = request.get("deadline")
        if budget is not None and elapsed[index] > 2 * budget + 5.0:
            problems.append(
                f"request {index}: answered but only after "
                f"{elapsed[index]:.1f}s against a {budget:g}s deadline"
            )
        if got in ("ok", "degraded", "timeout", "client-deadline"):
            continue
        if (
            got == "error"
            and response.get("error_type") == "QuarantinedRequest"
        ):
            continue
        problems.append(
            f"request {index}: untyped outcome {got!r} "
            f"({response.get('error', '')})"
        )

    fired = [str(spec) for spec in plan.fired]
    fired_fatal = [
        spec for spec in plan.fired if spec.kind in ("kill", "hang")
    ]
    restarts = status["fleet"]["worker_restarts"]
    if fired_fatal and restarts == 0:
        problems.append(
            f"{len(fired_fatal)} kill/hang fault(s) fired but no "
            "worker was ever restarted"
        )
    live = [
        w for w in status["workers"]
        if w["state"] == WORKER_UP and not w.get("unreachable")
    ]
    if not live:
        problems.append("no worker was alive at the end of the run")

    summary = {
        "requests": len(workload),
        "answered": sum(1 for r in outcomes if r is not None),
        "by_status": dict(sorted(by_status.items())),
        "faults_planned": [str(s) for s in plan.specs],
        "faults_fired": fired,
        "worker_restarts": restarts,
        "requeued": status["fleet"]["requeued"],
        "quarantined": status["fleet"]["quarantined"],
        "hang_kills": status["fleet"]["hang_kills"],
        "max_elapsed": round(max_elapsed, 3),
        "run_dir": fleet.run_dir,
        "supervisor_log": fleet.supervisor_log,
        "problems": len(problems),
    }
    say(
        f"fleet chaos: {summary['answered']}/{summary['requests']} "
        f"answered {summary['by_status']}; "
        f"{restarts} restart(s), {summary['requeued']} requeue(s), "
        f"{summary['quarantined']} quarantine(s), "
        f"{len(problems)} problem(s)"
    )
    return summary, problems


# -- the disk chaos harness ---------------------------------------------------

#: A dot-product the mixed workload never compiles: the contention
#: squad races it cold across every worker's private socket, so the
#: front-end sharding (which would route identical requests to one
#: worker) cannot hide a broken cross-process dedup.
_DISK_SQUAD = """
int dotsq(short *a, short *b, int n) {
    int i, s;
    s = 0;
    for (i = 0; i < n; i++)
        s += a[i] * b[i];
    return s;
}
"""

#: A key requested exactly once, after the harness has planted a dead
#: holder's lease for it — the canonical SIGKILLed-mid-compile wreck.
_DISK_ORPHAN = """
int orphan(int a, int b) {
    return a * b + 7;
}
"""

_DISK_SWEEP_KINDS = (
    "torn-write|corrupt-artifact|stale-lease|lease-steal-race|enospc"
)


def build_disk_chaos_inject(seed: int, rate: float = 0.08) -> str:
    """The per-worker disk-fault sweep (a seeded, disk-only plan).

    Every worker gets the same plan string; each process rolls its own
    deterministic dice per (site, arrival), so faults land where that
    worker's actual artifact traffic goes.  All candidate kinds are
    disk kinds, so ``FaultPlan.disk_only()`` holds and the workers keep
    their cache ON — the whole point is to batter the artifact store.
    """
    return f"seed={seed},rate={rate:g},kinds={_DISK_SWEEP_KINDS}"


def _disk_key(source: str, machine: str, config: str) -> str:
    """The exact artifact key a worker will compute for this request
    (same source tree, same pass fingerprint)."""
    from repro.bench.cache import cache_key
    from repro.machine import get_machine
    from repro.pipeline import get_config

    return cache_key(source, get_machine(machine).name, get_config(config))


def _plant_dead_lease(cache_dir: str, key: str, ttl: float) -> int:
    """Leave the wreckage of a SIGKILLed holder: a lease file whose pid
    is already reaped and whose heartbeat stopped long ago.  Returns
    the dead pid."""
    import json as _json
    import subprocess
    import sys as _sys

    proc = subprocess.Popen(
        [_sys.executable, "-c", "pass"],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    proc.wait()
    os.makedirs(cache_dir, exist_ok=True)
    path = os.path.join(cache_dir, f"{key}.lease")
    body = _json.dumps({
        "pid": proc.pid,
        "nonce": "deadc0de" * 2,
        "token": 1,
        "ttl": ttl,
        "created": round(time.time(), 4),
    })
    with open(path, "w") as handle:
        handle.write(body)
    past = time.time() - (ttl * 2.0 + 5.0)
    os.utime(path, (past, past))
    return proc.pid


def _disk_event_tally(events) -> Dict[str, Dict[str, int]]:
    """Per-key event counts from an :class:`ArtifactStore` journal."""
    tally: Dict[str, Dict[str, int]] = {}
    for event in events:
        key = event.get("key")
        if not key:
            continue
        per = tally.setdefault(str(key), {})
        name = str(event.get("ev"))
        if name == "disk-error" and event.get("op") == "publish":
            name = "disk-error-publish"
        per[name] = per.get(name, 0) + 1
    return tally


def _excused_compiles(per: Dict[str, int]) -> int:
    """How many *extra* compiles of one key the journal can explain.

    Each term is a recorded fault or crash consequence: a stolen lease
    (the thief recompiles), a dropped corrupt artifact, a publish that
    tore or hit a disk error (the artifact never became readable), or
    a fenced publish (the loser's bytes were discarded).
    """
    return (
        per.get("steal", 0)
        + per.get("corrupt-drop", 0)
        + per.get("publish-torn", 0)
        + per.get("disk-error-publish", 0)
        + per.get("publish-fenced", 0)
    )


def run_disk_chaos(
    requests: int = 100,
    workers: int = DEFAULT_FLEET_WORKERS,
    seed: int = 0,
    deadline: float = 20.0,
    kills: int = 2,
    rate: float = 0.08,
    socket_path: Optional[str] = None,
    run_dir: Optional[str] = None,
    crash_dir: Optional[str] = None,
    client_threads: int = 8,
    lease_ttl: float = 1.0,
    echo=None,
) -> Tuple[dict, List[str]]:
    """Batter a shared artifact cache under a live fleet and audit the
    exactly-once dedup contract.

    Four stages, one shared on-disk store:

    1. a *contention squad* races one cold key straight at every
       worker's private socket (bypassing the sharded front end);
    2. the same key is re-raced warm — it must not compile again;
    3. an *orphan* key is requested once over a planted dead-holder
       lease — the worker must steal it and publish under the next
       fencing token;
    4. the standard mixed workload runs through the front socket while
       seeded worker SIGKILLs and per-worker disk-fault sweeps
       (torn writes, corrupt artifacts, silent leases, steal races,
       ENOSPC) fire underneath.

    The audit reads the store's durable event journal: every compile
    beyond the first must be excused by a recorded steal / corruption
    drop / failed publish; link-once must hold (never two surviving
    publishes without a corruption drop between); the planted wreck
    must be stolen exactly once and published at most once; known
    -answer simulations must return the right number (a corrupt
    artifact can never be served); no request may be lost.
    """
    from repro.service.artifacts import ArtifactStore
    from repro.service.client import (
        ServiceClient,
        ServiceUnavailable,
        wait_until_ready,
    )

    def say(message: str) -> None:
        if echo is not None:
            echo(message)

    rng = random.Random(seed)
    workload = build_chaos_workload(rng, requests, deadline)
    plan = build_chaos_plan(rng, workers, workload, kills, 0)
    inject = build_disk_chaos_inject(seed, rate)
    say(f"disk chaos: fleet plan {plan}; worker sweep {inject}")

    if run_dir is None:
        run_dir = tempfile.mkdtemp(prefix="repro-disk-chaos-")
    if socket_path is None:
        socket_path = os.path.join(run_dir, "fleet.sock")
    cache_dir = os.path.join(run_dir, "artifact-cache")

    squad_key = _disk_key(_DISK_SQUAD, "alpha", "coalesce-all")
    orphan_key = _disk_key(_DISK_ORPHAN, "alpha", "coalesce-all")
    dead_pid = _plant_dead_lease(cache_dir, orphan_key, lease_ttl)
    say(
        f"disk chaos: planted dead lease pid={dead_pid} "
        f"for {orphan_key[:12]}"
    )

    fleet = FleetSupervisor(
        socket_path=socket_path,
        workers=workers,
        run_dir=run_dir,
        crash_dir=crash_dir,
        fleet_faults=plan,
        worker_inject=inject,
        heartbeat_interval=0.1,
        heartbeat_timeout=1.0,
        cache_dir=cache_dir,
        lease_ttl=lease_ttl,
    )
    store = ArtifactStore(cache_dir, ttl=lease_ttl)
    problems: List[str] = []
    outcomes: List[Optional[dict]] = [None] * len(workload)
    elapsed: List[float] = [0.0] * len(workload)
    squad_cold: List[Optional[dict]] = [None] * workers
    squad_warm: List[Optional[dict]] = [None] * workers
    orphan_response: Optional[dict] = None
    try:
        fleet.start()
        if not wait_until_ready(fleet.socket_path, timeout=10.0):
            raise OSError(
                f"fleet never became ready on {fleet.socket_path}"
            )
        for worker in fleet._workers:
            if not wait_until_ready(worker.socket_path, timeout=15.0):
                raise OSError(
                    f"worker {worker.index} never became ready"
                )

        # -- stage 1 + 2: the contention squad, cold then warm ------------
        def race(round_results: List[Optional[dict]]) -> None:
            def hit_worker(index: int, wsock: str) -> None:
                client = ServiceClient(
                    wsock, retries=10,
                    backoff_base=0.02, backoff_cap=0.3,
                )
                try:
                    round_results[index] = client.request(
                        "compile",
                        source=_DISK_SQUAD,
                        machine="alpha",
                        config="coalesce-all",
                        deadline=deadline,
                    )
                except Exception as exc:  # noqa: BLE001 — audit, don't die
                    round_results[index] = {
                        "status": "client-error",
                        "error": f"{type(exc).__name__}: {exc}",
                    }

            threads = [
                threading.Thread(
                    target=hit_worker, args=(w.index, w.socket_path),
                    name=f"disk-squad-{w.index}",
                )
                for w in fleet._workers
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=deadline * 2 + 30.0)

        race(squad_cold)
        tally_after_cold = _disk_event_tally(store.events())
        race(squad_warm)
        tally_after_warm = _disk_event_tally(store.events())

        # -- stage 3: steal the planted wreck -----------------------------
        front = ServiceClient(
            fleet.socket_path, retries=8,
            backoff_base=0.02, backoff_cap=0.2,
        )
        try:
            orphan_response = front.request(
                "compile",
                source=_DISK_ORPHAN,
                machine="alpha",
                config="coalesce-all",
                deadline=deadline,
            )
        except Exception as exc:  # noqa: BLE001 — audit, don't die
            orphan_response = {
                "status": "client-error",
                "error": f"{type(exc).__name__}: {exc}",
            }

        # -- stage 4: the mixed workload under fire -----------------------
        cursor = {"next": 0}
        cursor_lock = threading.Lock()

        def drive() -> None:
            client = ServiceClient(
                fleet.socket_path, retries=8,
                backoff_base=0.02, backoff_cap=0.2,
            )
            while True:
                with cursor_lock:
                    index = cursor["next"]
                    if index >= len(workload):
                        return
                    cursor["next"] = index + 1
                request = workload[index]
                began = time.monotonic()
                try:
                    response = client.request(
                        request["op"],
                        **{
                            k: v for k, v in request.items()
                            if k != "op"
                        },
                    )
                except ServiceUnavailable as exc:
                    response = {
                        "status": "client-deadline"
                        if "deadline" in str(exc) else "unavailable",
                        "error": str(exc),
                    }
                except Exception as exc:  # noqa: BLE001 — audit, don't die
                    response = {
                        "status": "client-error",
                        "error": f"{type(exc).__name__}: {exc}",
                    }
                outcomes[index] = response
                elapsed[index] = time.monotonic() - began

        threads = [
            threading.Thread(target=drive, name=f"disk-client-{i}")
            for i in range(max(1, client_threads))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=requests * 10.0)
        status = fleet._status_payload(scrape=True)
    finally:
        fleet.shutdown()

    # -- audit ---------------------------------------------------------------
    events = store.events()
    tally = _disk_event_tally(events)
    counters = store.counters()
    squad12 = squad_key[:12]
    orphan12 = orphan_key[:12]

    # Stage 1: every racer answered, and the squad key compiled at most
    # once per excuse — with the floor that dedup saved at least one of
    # the `workers` simultaneous cold requesters.
    for index, response in enumerate(squad_cold + squad_warm):
        which = "cold" if index < workers else "warm"
        worker_index = index % workers
        got = (response or {}).get("status")
        if got not in ("ok", "degraded"):
            problems.append(
                f"squad {which} racer at worker {worker_index}: "
                f"outcome {got!r} "
                f"({(response or {}).get('error', 'no answer')})"
            )
    squad_cold_tally = tally_after_cold.get(squad12, {})
    cold_compiles = squad_cold_tally.get("compile", 0)
    cold_fallbacks = squad_cold_tally.get("fallback", 0)
    if cold_compiles + cold_fallbacks >= workers:
        problems.append(
            f"squad key {squad12}: all {workers} cold racers compiled "
            f"({cold_compiles} compiles, {cold_fallbacks} fallbacks) — "
            "cross-process dedup saved nothing"
        )

    # Stage 2: a warm key must not compile again without a recorded
    # corruption drop / steal / failed publish in between.
    warm_tally = tally_after_warm.get(squad12, {})
    warm_compiles = (
        warm_tally.get("compile", 0) - squad_cold_tally.get("compile", 0)
    )
    warm_excuse = (
        _excused_compiles(warm_tally)
        - _excused_compiles(squad_cold_tally)
    )
    if warm_compiles > warm_excuse:
        problems.append(
            f"squad key {squad12}: {warm_compiles} warm-round "
            f"compile(s) with only {warm_excuse} excusing event(s) — "
            "duplicate compile of a warm key"
        )

    # Stage 3: the planted wreck was stolen (fencing token advanced)
    # and at most one publish survived.
    orphan_tally = tally.get(orphan12, {})
    orphan_status = (orphan_response or {}).get("status")
    if orphan_status not in ("ok", "degraded"):
        problems.append(
            f"orphan request: outcome {orphan_status!r} "
            f"({(orphan_response or {}).get('error', 'no answer')})"
        )
    if orphan_tally.get("steal", 0) < 1:
        problems.append(
            f"orphan key {orphan12}: planted dead-holder lease was "
            "never stolen"
        )
    if orphan_tally.get("publish", 0) > 1:
        problems.append(
            f"orphan key {orphan12}: "
            f"{orphan_tally['publish']} surviving publishes after a "
            "steal — the fencing rule failed"
        )

    # Global per-key invariants: link-once, and no unexcused compile.
    for key, per in sorted(tally.items()):
        if per.get("publish", 0) > 1 + per.get("corrupt-drop", 0):
            problems.append(
                f"key {key}: {per['publish']} publishes with only "
                f"{per.get('corrupt-drop', 0)} corruption drop(s) — "
                "link-once violated"
            )
        extra = per.get("compile", 0) - 1
        if extra > _excused_compiles(per):
            problems.append(
                f"key {key}: {per['compile']} compiles but only "
                f"{_excused_compiles(per)} excusing event(s) — "
                "redundant compile of a warm key"
            )
        for event in events:
            if event.get("key") == key and event.get("ev") == "steal":
                if per.get("publish", 0) + per.get(
                    "publish-fenced", 0
                ) + per.get("publish-torn", 0) + per.get(
                    "disk-error-publish", 0
                ) < 1:
                    problems.append(
                        f"key {key}: a lease was stolen but no writer "
                        "(surviving, fenced, torn, or errored) ever "
                        "followed"
                    )
                break

    # Mixed workload: the same zero-lost / typed-outcome contract as
    # the fleet harness, plus the known-answer check — a simulate that
    # answered 'ok' off a corrupt artifact would answer wrongly.
    by_status: Dict[str, int] = {}
    max_elapsed = 0.0
    expected_dot = 31  # [3,1,4,1,5,9,2,6] . [1]*8
    for index, response in enumerate(outcomes):
        request = workload[index]
        if response is None:
            problems.append(f"request {index}: LOST (no answer)")
            continue
        got = response.get("status")
        by_status[got] = by_status.get(got, 0) + 1
        max_elapsed = max(max_elapsed, elapsed[index])
        budget = request.get("deadline")
        if budget is not None and elapsed[index] > 2 * budget + 5.0:
            problems.append(
                f"request {index}: answered but only after "
                f"{elapsed[index]:.1f}s against a {budget:g}s deadline"
            )
        if (
            request["op"] == "simulate"
            and got in ("ok", "degraded")
            and response.get("result") != expected_dot
        ):
            problems.append(
                f"request {index}: simulate answered "
                f"{response.get('result')!r}, wanted {expected_dot} — "
                "a corrupt artifact was served"
            )
        if got in ("ok", "degraded", "timeout", "client-deadline"):
            continue
        if (
            got == "error"
            and response.get("error_type") == "QuarantinedRequest"
        ):
            continue
        problems.append(
            f"request {index}: untyped outcome {got!r} "
            f"({response.get('error', '')})"
        )

    if counters.get("dedup_hits", 0) < 1:
        problems.append(
            "no dedup hit was ever journalled — the shared store "
            "deduplicated nothing"
        )

    fired = [str(spec) for spec in plan.fired]
    fired_fatal = [
        spec for spec in plan.fired if spec.kind in ("kill", "hang")
    ]
    restarts = status["fleet"]["worker_restarts"]
    if fired_fatal and restarts == 0:
        problems.append(
            f"{len(fired_fatal)} kill fault(s) fired but no worker "
            "was ever restarted"
        )
    live = [
        w for w in status["workers"]
        if w["state"] == WORKER_UP and not w.get("unreachable")
    ]
    if not live:
        problems.append("no worker was alive at the end of the run")

    summary = {
        "requests": len(workload),
        "answered": sum(1 for r in outcomes if r is not None),
        "by_status": dict(sorted(by_status.items())),
        "squad_key": squad12,
        "orphan_key": orphan12,
        "cache_dir": cache_dir,
        "cache": counters,
        "faults_planned": [str(s) for s in plan.specs],
        "faults_fired": fired,
        "worker_inject": inject,
        "worker_restarts": restarts,
        "requeued": status["fleet"]["requeued"],
        "quarantined": status["fleet"]["quarantined"],
        "latency": {
            str(w["index"]): w.get("latency")
            for w in status["workers"]
        },
        "max_elapsed": round(max_elapsed, 3),
        "run_dir": fleet.run_dir,
        "supervisor_log": fleet.supervisor_log,
        "problems": len(problems),
    }
    say(
        f"disk chaos: {summary['answered']}/{summary['requests']} "
        f"answered {summary['by_status']}; cache "
        f"{counters.get('publishes', 0)} publish(es), "
        f"{counters.get('dedup_hits', 0)} dedup hit(s), "
        f"{counters.get('steals', 0)} steal(s), "
        f"{counters.get('corruption_drops', 0)} corruption drop(s), "
        f"{counters.get('fallbacks', 0)} fallback(s); "
        f"{restarts} restart(s), {len(problems)} problem(s)"
    )
    return summary, problems
