"""The compile service's wire protocol: JSON lines over a Unix socket.

One request or response per line, UTF-8 JSON, ``\\n``-terminated.  A
client sends one request at a time per connection and reads one response
back (responses are not pipelined, so ordering is trivial).  Requests::

    {"id": 1, "op": "compile", "source": "...", "machine": "alpha",
     "config": "coalesce-all", "overrides": {"unroll_factor": 4},
     "deadline": 5.0, "faults": "coalesce=raise", "include_rtl": true}
    {"id": 2, "op": "simulate", "source": "...", "entry": "dot",
     "args": ["a", "b", 4], "arrays": [["a", 2, [1, 2, 3, 4]],
                                       ["b", 2, [5, 6, 7, 8]]],
     "max_steps": 1000000, ...}
    {"id": 3, "op": "bench", "program": "dotproduct",
     "variant": "coalesce-all", "size": 16, ...}
    {"id": 4, "op": "status"}
    {"id": 5, "op": "ping"}
    {"id": 6, "op": "shutdown"}

Responses always carry the request ``id`` and a ``status``:

==================  ======================================================
``ok``              full-fidelity result
``degraded``        served, but with optimizer passes disabled — the
                    Fig. 5 safe-loop fallback at the service layer; the
                    response names the disabled passes and breaker state
``rejected``        load-shed (the bounded queue was full) — retryable
``timeout``         the per-request deadline expired — retryable
``error``           fatal for this input (parse error, bad request…)
``shutting-down``   the server is draining; retry against another
==================  ======================================================

``rejected``/``timeout``/``shutting-down`` are the *retryable* statuses
(:data:`RETRYABLE_STATUSES`); the client's backoff loop keys off them.
"""

from __future__ import annotations

import json
import os
import socket
import tempfile
from typing import Optional

from repro.errors import ReproError

PROTOCOL_VERSION = 1

#: A line longer than this is a protocol violation, not a request.
MAX_LINE_BYTES = 32 * 1024 * 1024

REQUEST_OPS = ("compile", "simulate", "bench", "status", "ping", "shutdown")

STATUS_OK = "ok"
STATUS_DEGRADED = "degraded"
STATUS_REJECTED = "rejected"
STATUS_TIMEOUT = "timeout"
STATUS_ERROR = "error"
STATUS_SHUTTING_DOWN = "shutting-down"

#: Statuses a client may retry verbatim (transient, load-related).
RETRYABLE_STATUSES = (STATUS_REJECTED, STATUS_TIMEOUT, STATUS_SHUTTING_DOWN)

#: Statuses that carry a served compilation (the "zero dropped
#: requests" guarantee: every accepted request ends in one of these or
#: in an explicit error naming why the *input* cannot be served).
SERVED_STATUSES = (STATUS_OK, STATUS_DEGRADED)


class ProtocolError(ReproError):
    """A malformed frame, oversized line, or invalid request shape."""


def default_socket_path() -> str:
    """``REPRO_SERVICE_SOCKET`` or a per-user path under the temp dir."""
    configured = os.environ.get("REPRO_SERVICE_SOCKET")
    if configured:
        return configured
    uid = os.getuid() if hasattr(os, "getuid") else 0
    return os.path.join(tempfile.gettempdir(), f"repro-serve-{uid}.sock")


def encode(message: dict) -> bytes:
    """One wire frame for ``message``."""
    return json.dumps(message, separators=(",", ":")).encode() + b"\n"


def decode(line: bytes) -> dict:
    """Parse one frame; raises :class:`ProtocolError` on garbage."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            f"frame of {len(line)} bytes exceeds the "
            f"{MAX_LINE_BYTES}-byte limit"
        )
    try:
        message = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}")
    if not isinstance(message, dict):
        raise ProtocolError("frame is not a JSON object")
    return message


def send_message(sock: socket.socket, message: dict) -> None:
    sock.sendall(encode(message))


def recv_message(rfile) -> Optional[dict]:
    """The next frame from a socket's buffered reader, or ``None`` on
    EOF.  ``rfile`` is ``sock.makefile('rb')``."""
    line = rfile.readline(MAX_LINE_BYTES + 1)
    if not line:
        return None
    if not line.endswith(b"\n"):
        raise ProtocolError("truncated or oversized frame")
    return decode(line)


def validate_request(message: dict) -> Optional[str]:
    """A human-readable complaint about ``message``, or ``None`` if it
    is a well-formed request."""
    op = message.get("op")
    if op not in REQUEST_OPS:
        return (
            f"unknown op {op!r}; known: {', '.join(REQUEST_OPS)}"
        )
    if op in ("compile", "simulate"):
        if not isinstance(message.get("source"), str):
            return f"op {op!r} needs a string 'source' field"
    if op == "simulate" and not isinstance(message.get("entry"), str):
        return "op 'simulate' needs a string 'entry' field"
    if op == "bench" and not isinstance(message.get("program"), str):
        return "op 'bench' needs a string 'program' field"
    deadline = message.get("deadline")
    if deadline is not None:
        if not isinstance(deadline, (int, float)) or deadline <= 0:
            return "'deadline' must be a positive number of seconds"
    return None


def make_response(request_id, status: str, **fields) -> dict:
    response = {
        "id": request_id,
        "protocol": PROTOCOL_VERSION,
        "status": status,
        "retryable": status in RETRYABLE_STATUSES,
    }
    response.update(fields)
    return response


def connect(path: str, timeout: Optional[float] = None) -> socket.socket:
    """A connected client socket for the server at ``path``."""
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    if timeout is not None:
        sock.settimeout(timeout)
    try:
        sock.connect(path)
    except OSError:
        sock.close()
        raise
    return sock


def request_over_socket(
    path: str,
    message: dict,
    timeout: Optional[float] = None,
    connect_timeout: Optional[float] = 5.0,
) -> Optional[dict]:
    """One request/response round trip on a fresh connection.

    The minimal client the fleet supervisor uses for worker heartbeats
    and status scrapes (the full :class:`ServiceClient` retry loop would
    mask exactly the failures a supervisor exists to notice).  Returns
    the response, or ``None`` on EOF before one arrived; raises
    ``OSError`` on connect/send failures and ``socket.timeout`` when the
    worker goes quiet past ``timeout``.
    """
    sock = connect(path, timeout=connect_timeout)
    try:
        sock.settimeout(timeout)
        send_message(sock, message)
        rfile = sock.makefile("rb")
        try:
            return recv_message(rfile)
        finally:
            rfile.close()
    finally:
        try:
            sock.close()
        except OSError:
            pass


def bind(path: str, backlog: int = 64) -> socket.socket:
    """A listening server socket at ``path`` (stale sockets replaced)."""
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    try:
        if os.path.exists(path):
            # A live server would be connectable; probe before stealing.
            probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            probe.settimeout(0.25)
            try:
                probe.connect(path)
            except OSError:
                os.unlink(path)  # stale leftover from a dead server
            else:
                probe.close()
                raise ProtocolError(
                    f"another server is already listening on {path}"
                )
            finally:
                probe.close()
        sock.bind(path)
        sock.listen(backlog)
    except BaseException:
        sock.close()
        raise
    return sock
