"""``python -m repro serve`` — the concurrent compile server.

Architecture (all threads, one process)::

    accept thread ──▶ connection threads ──▶ bounded queue ──▶ workers
                          │  (parse, validate,    │  (load-shed      │
                          │   answer status/ping  │   when full:     │
                          │   inline)             │   'rejected')    │
                          └──────────── responses ◀──────────────────┘

Robustness properties, in the order a request meets them:

* **Backpressure + load shedding** — the request queue is bounded;
  past the high-water mark a request is answered ``rejected``
  (429-style) immediately instead of queueing unboundedly.  The client
  retries with backoff, so shed load is deferred, not dropped.
* **Deadlines** — each request carries a wall-clock budget measured
  from *enqueue* (queue time spends budget).  Workers install the
  deadline as the pipeline's cancellation probe, so a stuck compile is
  cut at the next pass boundary — and mid-stall for ``sleep`` faults,
  which honour the probe.  Simulations check it per executed block.
* **Circuit breakers** — every full-pipeline compile reports its
  outcome to the per-(machine, config) breaker.  After K consecutive
  pass failures the circuit opens and requests are served *degraded*:
  compiled with the offending passes disabled (the paper's Fig. 5
  safe-loop fallback, one layer up), flagged as such in the response.
  After a cooldown, one half-open probe runs the full pipeline; success
  re-closes the circuit.
* **Graceful degradation** — a degrade-class failure (see
  :mod:`repro.resilience.classify`) never kills the request: the server
  recompiles under ``on_pass_failure='fallback'`` and returns a correct,
  less-optimized program with ``status='degraded'``.

Workers share the disk compile cache across requests, with
single-flight dedup of identical in-flight keys (two concurrent
requests for the same (source, machine, config) compile once).
"""

from __future__ import annotations

import math
import os
import queue
import socket
import threading
import time
from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from repro.errors import DeadlineExceeded, ReproError
from repro.machine import get_machine
from repro.pipeline import compile_minic, get_config
from repro.resilience.classify import DEGRADE, classify_failure
from repro.resilience.faults import FaultPlan
from repro.service import protocol
from repro.service.breaker import (
    DEFAULT_COOLDOWN,
    DEFAULT_THRESHOLD,
    MODE_DEGRADED,
    MODE_PROBE,
    BreakerBoard,
)

DEFAULT_WORKERS = 2
DEFAULT_QUEUE_LIMIT = 16

_SHUTDOWN = object()  # worker sentinel


class _Connection:
    """One accepted client socket plus its write lock.

    The connection thread (rejections, status) and worker threads
    (results) both write responses; the lock keeps frames whole.
    """

    def __init__(self, sock):
        self.sock = sock
        self.rfile = sock.makefile("rb")
        self.lock = threading.Lock()

    def send(self, message: dict) -> None:
        try:
            with self.lock:
                protocol.send_message(self.sock, message)
        except OSError:
            pass  # client went away; its loss

    def close(self) -> None:
        for closer in (self.rfile.close, self.sock.close):
            try:
                closer()
            except OSError:
                pass


class _Stats:
    """Thread-safe monotone counters for the status endpoint."""

    FIELDS = (
        "accepted", "completed", "ok", "degraded", "rejected",
        "timeouts", "errors", "protocol_errors", "in_flight",
    )

    def __init__(self):
        self._lock = threading.Lock()
        self._counts = {field: 0 for field in self.FIELDS}

    def bump(self, field: str, amount: int = 1) -> None:
        with self._lock:
            self._counts[field] += amount

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counts)


class LatencyRing:
    """Fixed-capacity ring of recent request durations.

    Cheap enough to record on every request (one float write under a
    lock), rich enough for the status surface: nearest-rank p50/p90/p99
    over the last ``capacity`` requests.  ``count`` is lifetime total,
    so a scraper can tell "quiet ring" from "freshly restarted".
    """

    DEFAULT_CAPACITY = 512

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        self.capacity = max(1, capacity)
        self._buffer = [0.0] * self.capacity
        self._count = 0
        self._lock = threading.Lock()

    def record(self, seconds: float) -> None:
        with self._lock:
            self._buffer[self._count % self.capacity] = float(seconds)
            self._count += 1

    def snapshot(self) -> Dict[str, object]:
        """``{count, window, p50, p90, p99}`` (seconds, or None when
        nothing has been recorded yet)."""
        with self._lock:
            filled = min(self._count, self.capacity)
            data = sorted(self._buffer[:filled])
            total = self._count
        if not data:
            return {
                "count": 0, "window": 0,
                "p50": None, "p90": None, "p99": None,
            }

        def nearest_rank(quantile: float) -> float:
            index = max(0, math.ceil(quantile * len(data)) - 1)
            return round(data[min(index, len(data) - 1)], 6)

        return {
            "count": total,
            "window": len(data),
            "p50": nearest_rank(0.50),
            "p90": nearest_rank(0.90),
            "p99": nearest_rank(0.99),
        }


class CompileServer:
    """The long-running compile/simulate/bench service."""

    def __init__(
        self,
        socket_path: Optional[str] = None,
        workers: int = DEFAULT_WORKERS,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        breaker_threshold: int = DEFAULT_THRESHOLD,
        breaker_cooldown: float = DEFAULT_COOLDOWN,
        default_deadline: Optional[float] = None,
        cache=None,
        faults: Optional[FaultPlan] = None,
        crash_dir: Optional[str] = None,
        start_delay: float = 0.0,
        worker_id: Optional[int] = None,
        exit_with_parent: bool = False,
        cache_dir: Optional[str] = None,
        lease_ttl: Optional[float] = None,
    ):
        from repro.bench.cache import (
            CompileCache,
            SingleFlight,
            cache_enabled,
            default_cache,
        )

        self.socket_path = socket_path or protocol.default_socket_path()
        self.workers = max(1, workers)
        # Fleet-worker knobs: 'start_delay' delays the socket bind (the
        # 'slowstart' fleet fault), 'worker_id' tags status payloads so
        # the supervisor can tell shards apart, and 'exit_with_parent'
        # makes the process die when its supervisor does (orphan
        # watchdog polling the original parent pid).
        self.start_delay = max(0.0, start_delay)
        self.worker_id = worker_id
        self.exit_with_parent = exit_with_parent
        self._parent_pid = os.getppid() if exit_with_parent else None
        self.queue_limit = max(1, queue_limit)
        self.default_deadline = default_deadline
        if cache is not None:
            self.cache = cache
        elif cache_dir is not None:
            # An explicit shared directory (the fleet's): honoured even
            # when it differs from $REPRO_CACHE_DIR, still subject to
            # the REPRO_CACHE=off kill switch.
            self.cache = (
                CompileCache(cache_dir, lease_ttl=lease_ttl)
                if cache_enabled() else None
            )
        else:
            self.cache = default_cache()
        if self.cache is not None and lease_ttl is not None:
            self.cache.artifacts.ttl = float(lease_ttl)
        self.flight = SingleFlight()
        self.latency = LatencyRing()
        self.breakers = BreakerBoard(breaker_threshold, breaker_cooldown)
        # One long-lived plan shared by every compile, so arrival counts
        # span requests: 'coalesce=raise@3' means "the third coalesce
        # the *server* runs", which is how tests stage transient faults
        # that the breaker then recovers from.
        self.faults = (
            faults if faults is not None else FaultPlan.from_env()
        )
        self.crash_dir = crash_dir or os.environ.get("REPRO_CRASH_DIR")
        self.stats = _Stats()
        self._queue: "queue.Queue" = queue.Queue(maxsize=self.queue_limit)
        self._listener = None
        self._threads: List[threading.Thread] = []
        self._connections: set = set()
        self._conn_lock = threading.Lock()
        self._stopping = threading.Event()
        self._stopped = threading.Event()
        self._shutdown_lock = threading.Lock()
        self._started_at: Optional[float] = None
        self._tls = threading.local()
        if self.faults is not None:
            # One shared, thread-aware cancellation probe: each worker
            # parks its own deadline in thread-local state, so a 'sleep'
            # fault in one request can never be cut by another's clock.
            self.faults.cancel_check = self._cancel
        if (
            self.faults is not None and self.cache is not None
            and self.faults.disk_only()
        ):
            # Disk-fault plans target the artifact store itself, so the
            # store draws from the same long-lived plan the server owns
            # (arrival counts span requests, as with pass sites).
            self.cache.artifacts.faults = self.faults

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> None:
        """Bind the socket and spawn the accept + worker threads."""
        if self.start_delay:
            time.sleep(self.start_delay)
        self._listener = protocol.bind(self.socket_path)
        self._started_at = time.monotonic()
        if self.exit_with_parent:
            watchdog = threading.Thread(
                target=self._orphan_watch,
                name="repro-orphan-watch",
                daemon=True,
            )
            watchdog.start()
            self._threads.append(watchdog)
        accept = threading.Thread(
            target=self._accept_loop, name="repro-accept", daemon=True
        )
        accept.start()
        self._threads.append(accept)
        for index in range(self.workers):
            worker = threading.Thread(
                target=self._worker_loop,
                name=f"repro-worker-{index}",
                daemon=True,
            )
            worker.start()
            self._threads.append(worker)

    def serve_forever(self) -> None:
        """start() and block until a shutdown request (or Ctrl-C)."""
        self.start()
        try:
            self._stopped.wait()
        except KeyboardInterrupt:
            self.shutdown()

    def shutdown(self) -> None:
        """Graceful stop: refuse new work, drain the queue, then exit.

        Idempotent and thread-safe; callable from a connection thread
        (the ``shutdown`` op spawns it on a side thread to avoid
        joining itself).
        """
        with self._shutdown_lock:
            if self._stopped.is_set():
                return
            self._stopping.set()
            if self._listener is not None:
                # Closing a socket another thread is blocked in accept()
                # on does not reliably wake it; shutdown() does, and the
                # self-connect nudge covers platforms where it doesn't.
                try:
                    self._listener.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                try:
                    nudge = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                    nudge.settimeout(0.25)
                    nudge.connect(self.socket_path)
                    nudge.close()
                except OSError:
                    pass
                try:
                    self._listener.close()
                except OSError:
                    pass
            # Sentinels queue *behind* already-accepted work: FIFO order
            # means every accepted request is answered before exit.
            for _ in range(self.workers):
                self._queue.put(_SHUTDOWN)
            for thread in self._threads:
                if thread is not threading.current_thread():
                    thread.join(timeout=30.0)
            with self._conn_lock:
                connections = list(self._connections)
            for conn in connections:
                conn.close()
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass
            self._stopped.set()

    @property
    def running(self) -> bool:
        return self._started_at is not None and not self._stopped.is_set()

    def _orphan_watch(self) -> None:
        """Exit hard if the supervisor that spawned us disappears.

        A fleet worker with no supervisor has no one to restart it, no
        one heartbeating it, and a socket nobody routes to; lingering
        would leak a process per supervisor crash.  Reparenting (getppid
        changes, typically to 1) is the portable death signal.
        """
        while not self._stopping.is_set():
            if os.getppid() != self._parent_pid:
                os._exit(0)
            self._stopped.wait(0.5)
            if self._stopped.is_set():
                return

    # -- accept / connection handling ---------------------------------------
    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                sock, _ = self._listener.accept()
            except OSError:
                break  # listener closed: shutting down
            conn = _Connection(sock)
            with self._conn_lock:
                self._connections.add(conn)
            thread = threading.Thread(
                target=self._connection_loop,
                args=(conn,),
                name="repro-conn",
                daemon=True,
            )
            thread.start()

    def _connection_loop(self, conn: _Connection) -> None:
        try:
            while True:
                try:
                    request = protocol.recv_message(conn.rfile)
                except protocol.ProtocolError as exc:
                    self.stats.bump("protocol_errors")
                    conn.send(protocol.make_response(
                        None, protocol.STATUS_ERROR,
                        error=str(exc), retryable=False,
                    ))
                    return
                except OSError:
                    return
                if request is None:
                    return  # clean EOF
                self._dispatch(conn, request)
        finally:
            with self._conn_lock:
                self._connections.discard(conn)
            conn.close()

    def _dispatch(self, conn: _Connection, request: dict) -> None:
        request_id = request.get("id")
        complaint = protocol.validate_request(request)
        if complaint is not None:
            self.stats.bump("protocol_errors")
            conn.send(protocol.make_response(
                request_id, protocol.STATUS_ERROR,
                error=complaint, retryable=False,
            ))
            return
        op = request["op"]
        if op == "ping":
            conn.send(protocol.make_response(
                request_id, protocol.STATUS_OK, pong=True,
            ))
            return
        if op == "status":
            conn.send(protocol.make_response(
                request_id, protocol.STATUS_OK, **self._status_payload()
            ))
            return
        if op == "shutdown":
            conn.send(protocol.make_response(
                request_id, protocol.STATUS_OK, stopping=True,
            ))
            threading.Thread(target=self.shutdown, daemon=True).start()
            return
        if self._stopping.is_set():
            conn.send(protocol.make_response(
                request_id, protocol.STATUS_SHUTTING_DOWN,
                error="server is draining",
            ))
            return
        item = (request, conn, time.monotonic())
        try:
            self._queue.put_nowait(item)
            self.stats.bump("accepted")
        except queue.Full:
            # Load shedding: answer now, let the client back off.
            self.stats.bump("rejected")
            conn.send(protocol.make_response(
                request_id, protocol.STATUS_REJECTED,
                error=(
                    f"request queue is full "
                    f"({self.queue_limit} outstanding); retry with backoff"
                ),
                queue_limit=self.queue_limit,
            ))

    # -- deadline plumbing --------------------------------------------------
    def _cancel(self) -> None:
        """The shared cancellation probe: raises when the *current
        thread's* request has outlived its deadline."""
        info = getattr(self._tls, "deadline", None)
        if info is None:
            return
        budget, deadline_at = info
        now = time.monotonic()
        if now > deadline_at:
            raise DeadlineExceeded(budget, budget + (now - deadline_at))

    def _arm_deadline(
        self, request: dict, enqueued_at: float
    ) -> Optional[float]:
        budget = request.get("deadline", self.default_deadline)
        if budget is None:
            self._tls.deadline = None
            return None
        budget = float(budget)
        self._tls.deadline = (budget, enqueued_at + budget)
        return budget

    # -- workers ------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                return
            request, conn, enqueued_at = item
            self.stats.bump("in_flight")
            try:
                response = self._process(request, enqueued_at)
            except Exception as exc:  # noqa: BLE001 — a worker must survive anything
                self.stats.bump("errors")
                response = protocol.make_response(
                    request.get("id"), protocol.STATUS_ERROR,
                    error=f"{type(exc).__name__}: {exc}",
                    retryable=False,
                )
            finally:
                self.stats.bump("in_flight", -1)
                self._tls.deadline = None
                # Queue time spends deadline budget, so it counts here
                # too: the ring measures what the *client* experienced.
                self.latency.record(time.monotonic() - enqueued_at)
            conn.send(response)

    def _process(self, request: dict, enqueued_at: float) -> dict:
        request_id = request.get("id")
        budget = self._arm_deadline(request, enqueued_at)
        op = request["op"]
        started = time.monotonic()
        try:
            if op == "compile":
                fields = self._do_compile(request)
            elif op == "simulate":
                fields = self._do_simulate(request)
            else:
                fields = self._do_bench(request)
        except DeadlineExceeded as exc:
            self.stats.bump("timeouts")
            return protocol.make_response(
                request_id, protocol.STATUS_TIMEOUT,
                error=str(exc), deadline=budget,
                elapsed=round(time.monotonic() - enqueued_at, 6),
            )
        except ReproError as exc:
            cls = classify_failure(
                exc, "simulate" if op == "simulate" else "compile"
            )
            self.stats.bump("errors")
            return protocol.make_response(
                request_id, protocol.STATUS_ERROR,
                error=str(exc), error_type=type(exc).__name__,
                classification=cls, retryable=cls == "retryable",
            )
        status = (
            protocol.STATUS_DEGRADED if fields.pop("_degraded", False)
            else protocol.STATUS_OK
        )
        self.stats.bump("completed")
        self.stats.bump("degraded" if status != protocol.STATUS_OK else "ok")
        fields.setdefault(
            "wall_seconds", round(time.monotonic() - started, 6)
        )
        return protocol.make_response(request_id, status, **fields)

    # -- the compile path ---------------------------------------------------
    def _compile_program(self, request: dict):
        """Compile under breaker control; returns (program, fields).

        ``fields['_degraded']`` flags a response that must be marked
        degraded (pass failures recovered, or served with the breaker
        open and passes pre-disabled).
        """
        machine = get_machine(request.get("machine", "alpha"))
        overrides = dict(request.get("overrides") or {})
        try:
            config = get_config(request.get("config", "vpo"), **overrides)
        except TypeError as exc:
            raise ReproError(f"bad overrides: {exc}") from None
        breaker = self.breakers.get(machine.name, config.name)
        request_plan = FaultPlan.parse(request.get("faults"))
        plan = request_plan if request_plan is not None else self.faults
        mode = breaker.acquire()

        if mode == MODE_DEGRADED:
            disabled = tuple(sorted(
                set(config.disabled_passes) | breaker.bad_passes
            ))
            program = compile_minic(
                request["source"], machine,
                replace(
                    config,
                    disabled_passes=disabled,
                    on_pass_failure="skip",
                ),
                faults=plan, cancel=self._cancel,
                crash_dir=self.crash_dir,
            )
            failed = tuple(sorted(
                {f.pass_name for f in program.pass_failures}
            ))
            return program, {
                "_degraded": True,
                "machine": machine.name,
                "config": config.name,
                "breaker": breaker.snapshot()["state"],
                "disabled_passes": list(disabled),
                "pass_failures": [
                    f.describe() for f in program.pass_failures
                ],
                "cache_hit": False,
                "coalesced_loops": program.coalesced_loops,
                "recovered_passes": list(failed),
            }

        # Full pipeline (closed circuit, or the half-open probe).
        try:
            if plan is None or plan.disk_only():
                # A disk-only plan keeps the cached path: its faults
                # live inside the artifact store, and bypassing the
                # cache would bypass exactly what they exercise.
                from repro.bench.cache import cached_compile_minic

                program = cached_compile_minic(
                    request["source"], machine, config,
                    cache=self.cache, flight=self.flight,
                    cancel=self._cancel, faults=plan,
                )
            else:
                program = compile_minic(
                    request["source"], machine, config,
                    faults=plan, cancel=self._cancel,
                    crash_dir=self.crash_dir,
                    on_pass_failure="fallback",
                )
        except Exception as exc:  # noqa: BLE001 — classified below
            if mode == MODE_PROBE:
                breaker.release_probe()
            if classify_failure(exc, "compile") != DEGRADE:
                raise  # fatal (bad input) or retryable (deadline): not ours
            # Organic degrade-class failure on the cached fast path:
            # take the safe-loop move — recompile with recovery on.
            program = compile_minic(
                request["source"], machine, config,
                cancel=self._cancel, crash_dir=self.crash_dir,
                on_pass_failure="fallback",
            )

        if program.degraded:
            failed = tuple(sorted(
                {f.pass_name for f in program.pass_failures}
            ))
            breaker.record_failure(failed, probe=mode == MODE_PROBE)
        else:
            breaker.record_success(probe=mode == MODE_PROBE)
        return program, {
            "_degraded": program.degraded,
            "machine": machine.name,
            "config": config.name,
            "breaker": breaker.snapshot()["state"],
            "disabled_passes": [],
            "pass_failures": [f.describe() for f in program.pass_failures],
            "cache_hit": program.cache_hit,
            "coalesced_loops": program.coalesced_loops,
            "recovered_passes": [
                f.pass_name for f in program.pass_failures
            ],
        }

    def _do_compile(self, request: dict) -> dict:
        program, fields = self._compile_program(request)
        if request.get("include_rtl"):
            from repro.ir.printer import format_module

            fields["rtl"] = format_module(program.module)
        return fields

    def _do_simulate(self, request: dict) -> dict:
        program, fields = self._compile_program(request)
        self._cancel()  # queue+compile may have eaten the whole budget

        sim_kwargs = {}
        if request.get("max_steps") is not None:
            sim_kwargs["max_steps"] = int(request["max_steps"])
        if request.get("sim_backend") is not None:
            from repro.sim import SIM_BACKENDS

            backend = str(request["sim_backend"])
            if backend not in SIM_BACKENDS:
                raise ReproError(
                    f"unknown sim_backend {backend!r}; known: "
                    f"{', '.join(SIM_BACKENDS)}"
                )
            sim_kwargs["backend"] = backend
        info = getattr(self._tls, "deadline", None)
        if info is not None:
            # First-class cancellation: both engines poll cancel= per
            # block, so a deadline does not force the compiled backend
            # down the interpreter fallback the way a fault_hook would.
            sim_kwargs["cancel"] = self._cancel
        plan = FaultPlan.parse(request.get("faults"))
        if plan is None:
            plan = self.faults
        if plan is not None and not plan.disk_only():
            # Disk-only plans target the artifact store, not the
            # simulator; a sim hook would turn every drawn disk fault
            # into a bogus SimulationTimeout.
            sim_kwargs["fault_hook"] = plan.sim_hook()

        sim = program.simulator(**sim_kwargs)
        addresses: Dict[str, int] = {}
        for name, width, values in request.get("arrays") or []:
            address = sim.alloc_array(
                name, size=max(len(values), 1) * int(width)
            )
            sim.write_words(address, [int(v) for v in values], int(width))
            addresses[name] = address
        call_args = [
            addresses.get(arg, arg) if isinstance(arg, str) else int(arg)
            for arg in request.get("args") or []
        ]
        for arg in call_args:
            if isinstance(arg, str):
                raise ReproError(
                    f"argument {arg!r} names no staged array"
                )
        result = sim.call(request["entry"], *call_args)
        if result is not None:
            bits = program.machine.word_bits
            if result >= 1 << (bits - 1):
                result -= 1 << bits
        report = sim.report()
        fields.update(
            result=result,
            cycles=report.total_cycles,
            instr_count=report.instr_count,
            memory_accesses=report.memory_accesses,
            sim_backend=sim.backend,
        )
        dump = request.get("dump")
        if dump:
            fields["arrays"] = {
                name: sim.read_words(
                    address,
                    min(int(dump), 64),
                    next(
                        int(w) for n, w, _ in request["arrays"]
                        if n == name
                    ),
                )
                for name, address in addresses.items()
            }
        return fields

    def _do_bench(self, request: dict) -> dict:
        from repro.bench.harness import COLUMNS, run_benchmark

        variant = request.get("variant", "coalesce-all")
        if variant not in COLUMNS:
            raise ReproError(
                f"unknown variant {variant!r}; known: {', '.join(COLUMNS)}"
            )
        size = int(request.get("size", 16))
        result = run_benchmark(
            request["program"],
            request.get("machine", "alpha"),
            variant,
            width=size,
            height=size,
            sim_backend=request.get("sim_backend"),
        )
        return {
            "_degraded": False,
            "program": request["program"],
            "machine": result.machine,
            "variant": variant,
            "cycles": result.cycles,
            "instr_count": result.instr_count,
            "memory_accesses": result.memory_accesses,
            "output_ok": result.output_ok,
            "coalesced_loops": result.coalesced_loops,
            "cache_hit": result.compile_cache_hit,
            "sim_backend": result.sim_backend,
        }

    # -- status -------------------------------------------------------------
    def _status_payload(self) -> dict:
        counts = self.stats.snapshot()
        uptime = (
            time.monotonic() - self._started_at
            if self._started_at is not None else 0.0
        )
        return {
            "server": {
                "socket": self.socket_path,
                "pid": os.getpid(),
                "worker_id": self.worker_id,
                "uptime_seconds": round(uptime, 3),
                "workers": self.workers,
                "queue_depth": self._queue.qsize(),
                "queue_limit": self.queue_limit,
                "default_deadline": self.default_deadline,
                "stopping": self._stopping.is_set(),
                "faults": str(self.faults) if self.faults else "",
                **counts,
            },
            "breakers": self.breakers.snapshot(),
            "cache": self.cache.stats() if self.cache is not None else None,
            "single_flight_shared": self.flight.shared,
            "latency": self.latency.snapshot(),
        }
