"""Per-(machine, config) circuit breakers for the compile service.

The paper guards every coalesced loop with cheap preheader checks and
falls back to the safe loop when they fail (Fig. 5).  The breaker is the
same idea amortized over *requests*: once a pass configuration has
failed ``threshold`` consecutive times, stop running it — serve
requests *degraded* (the offending passes disabled, which both avoids
the crash and skips the doomed work) until a cooldown elapses, then let
one half-open probe try the full pipeline again.

State machine::

            K consecutive failures              cooldown elapsed
    CLOSED ───────────────────────────▶ OPEN ───────────────────▶ HALF-OPEN
       ▲                                 ▲                            │
       │            probe succeeds       │       probe fails          │
       └─────────────────────────────────┴────────────◀───────────────┘

While OPEN (and while a HALF-OPEN probe is in flight), every other
request for the key is served degraded.  All transitions are
thread-safe; the clock is injectable for deterministic tests.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Set, Tuple

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"
BREAKER_STATES = (CLOSED, OPEN, HALF_OPEN)

#: Consecutive pass failures before the circuit opens.
DEFAULT_THRESHOLD = 3
#: Seconds an open circuit waits before allowing a half-open probe.
DEFAULT_COOLDOWN = 30.0

#: What :meth:`CircuitBreaker.acquire` tells the caller to do.
MODE_FULL = "full"          # run the complete pipeline
MODE_PROBE = "probe"        # run it, but report back (half-open probe)
MODE_DEGRADED = "degraded"  # compile with the bad passes disabled


class CircuitBreaker:
    """One key's failure history and serving mode."""

    def __init__(
        self,
        threshold: int = DEFAULT_THRESHOLD,
        cooldown: float = DEFAULT_COOLDOWN,
        clock=time.monotonic,
    ):
        self.threshold = max(1, threshold)
        self.cooldown = cooldown
        self.clock = clock
        self.state = CLOSED
        self.consecutive_failures = 0
        self.bad_passes: Set[str] = set()
        self.opened_at: Optional[float] = None
        self.times_opened = 0
        self.times_closed = 0
        self.served_degraded = 0
        self._probe_in_flight = False
        self._lock = threading.Lock()

    # -- serving decisions --------------------------------------------------
    def acquire(self) -> str:
        """How the next request for this key should be served."""
        with self._lock:
            if self.state == CLOSED:
                return MODE_FULL
            if (
                self.state == OPEN
                and self.clock() - self.opened_at >= self.cooldown
                and not self._probe_in_flight
            ):
                self.state = HALF_OPEN
                self._probe_in_flight = True
                return MODE_PROBE
            if self.state == HALF_OPEN and not self._probe_in_flight:
                self._probe_in_flight = True
                return MODE_PROBE
            self.served_degraded += 1
            return MODE_DEGRADED

    # -- outcome reporting --------------------------------------------------
    def record_success(self, probe: bool = False) -> None:
        """A full-pipeline compile finished clean."""
        with self._lock:
            self.consecutive_failures = 0
            if probe:
                self._probe_in_flight = False
            if self.state != CLOSED:
                self.state = CLOSED
                self.times_closed += 1
                self.opened_at = None
                # The fault is gone; forget which passes it poisoned so a
                # future incident starts from fresh evidence.
                self.bad_passes.clear()

    def record_failure(
        self, passes: Tuple[str, ...] = (), probe: bool = False
    ) -> None:
        """A full-pipeline compile degraded or died; ``passes`` names the
        stages that failed (they are disabled while the circuit is open)."""
        with self._lock:
            self.bad_passes.update(passes)
            self.consecutive_failures += 1
            if probe:
                self._probe_in_flight = False
                self.state = OPEN          # the probe failed: re-open
                self.opened_at = self.clock()
            elif (
                self.state == CLOSED
                and self.consecutive_failures >= self.threshold
            ):
                self.state = OPEN
                self.opened_at = self.clock()
                self.times_opened += 1

    def release_probe(self) -> None:
        """The probe ended without a verdict (deadline, bad input): let
        the next request probe instead of wedging half-open forever."""
        with self._lock:
            self._probe_in_flight = False

    # -- introspection ------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "state": self.state,
                "consecutive_failures": self.consecutive_failures,
                "bad_passes": sorted(self.bad_passes),
                "threshold": self.threshold,
                "cooldown": self.cooldown,
                "times_opened": self.times_opened,
                "times_closed": self.times_closed,
                "served_degraded": self.served_degraded,
            }


class BreakerBoard:
    """The service's breakers, one per (machine, config-name) key."""

    def __init__(
        self,
        threshold: int = DEFAULT_THRESHOLD,
        cooldown: float = DEFAULT_COOLDOWN,
        clock=time.monotonic,
    ):
        self.threshold = threshold
        self.cooldown = cooldown
        self.clock = clock
        self._breakers: Dict[Tuple[str, str], CircuitBreaker] = {}
        self._lock = threading.Lock()

    def get(self, machine: str, config_name: str) -> CircuitBreaker:
        key = (machine, config_name)
        with self._lock:
            breaker = self._breakers.get(key)
            if breaker is None:
                breaker = CircuitBreaker(
                    self.threshold, self.cooldown, self.clock
                )
                self._breakers[key] = breaker
            return breaker

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        with self._lock:
            items: List[Tuple[Tuple[str, str], CircuitBreaker]] = sorted(
                self._breakers.items()
            )
        return {
            f"{machine}/{config}": breaker.snapshot()
            for (machine, config), breaker in items
        }
