"""Crash-safe content-addressed artifact store with cross-process dedup.

The fleet (``repro.service.fleet``) runs N compile workers as separate
processes sharing one cache directory.  Before this module they shared
*bytes* but not *work*: the same (source, machine, config) key could be
compiled N times concurrently, and a worker dying mid-write could leave
a torn entry that every later request trusts.  :class:`ArtifactStore`
closes both gaps:

**Crash-safe publish.**  An artifact is a single file
``<key>.json`` whose first line is an integrity header::

    repro-artifact 1 sha256=<hex> bytes=<n>
    <payload bytes>

The payload is written to a temp file, fsync'd, then **hardlinked**
into place.  ``os.link`` never replaces an existing name, so publishing
is first-writer-wins: a revived stale writer gets ``EEXIST``, never a
clobber, and a reader can only ever observe *no* entry or a *complete*
entry under the final name.  Every read re-verifies length and
checksum; a mismatch (torn write, bit flip, hand truncation) is logged,
the wreck unlinked, and the read reported as a miss — never served.

**Lease-based cross-process single-flight.**  A cold key is guarded by
``<key>.lease``, created ``O_CREAT|O_EXCL`` and holding
``{pid, nonce, token, ttl, created}``.  The holder heartbeats the lease
mtime from a daemon thread; waiters poll, and block-with-deadline until
the artifact appears.  If the holder dies (``os.kill(pid, 0)`` fails —
a same-host check; the fleet shares one machine) or its heartbeat goes
stale past the TTL, a waiter **steals** the lease: re-verify the
observed nonce under a per-key ``flock``, unlink, re-create with
``token = old + 1`` (the fencing token).  A revived holder cannot harm
the winner: its publish re-checks that the lease still carries *its*
nonce under the same flock that serializes steals — and even a publish
that skipped fencing (the plain ``store`` API) is physically unable to
replace an existing artifact, because link-once never overwrites.
Waiters that exhaust their deadline fall back to a local compile —
degraded to duplicate work, never to an error.

**Durable accounting.**  Every consequential transition — publish,
hit, compile, steal, fence, corrupt-drop, disk-error, fallback, fired
fault — is appended as a JSON line to ``events.log`` (``O_APPEND``, one
small write per event), so counters survive process exit and aggregate
*across* processes: ``cache --stats`` in a fresh process can report how
many compiles the whole fleet deduplicated.  ``dedup_hits`` counts
reads that saved another process's work: lease-waiters plus hits whose
publisher was a different pid.

**Fault injection.**  When armed with a :class:`FaultPlan`, the store
draws at ``artifact:<op>:<key12>`` sites (alias ``artifact:<op>``) and
honours the disk kinds where they make physical sense:

=====================  ==================================================
``corrupt-artifact``   at *read*: flip the artifact's last payload byte
                       on disk first, so the checksum must catch it
``torn-write``         at *publish*: link a half-written image into
                       place, simulating a crash between write and
                       rename
``enospc``             at *publish*: raise ``OSError(ENOSPC)`` from the
                       write path, exercising graceful bypass
``stale-lease``        at *lease*: acquire but play dead — no
                       heartbeat, mtime backdated — so waiters steal
``lease-steal-race``   at *steal*: linger between staleness check and
                       re-acquisition, widening the race window
=====================  ==================================================

Any `OSError` from a real disk (not just injected ones) downgrades the
operation to a miss / an unpublished compile with a diagnostic — the
cache degrades, the compile never fails because of it.
"""

from __future__ import annotations

import errno
import fcntl
import hashlib
import json
import os
import tempfile
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

HEADER_MAGIC = "repro-artifact"
HEADER_VERSION = 1

#: Default lease TTL: a holder whose heartbeat is older than this is
#: presumed dead and its lease is stealable.  Heartbeats fire every
#: TTL/4, so four beats must be lost before a steal.
DEFAULT_LEASE_TTL = 5.0

#: Cap on the event journal; appends stop (counters freeze, correctness
#: is unaffected) rather than filling the disk the store is guarding.
MAX_EVENT_LOG_BYTES = 32 * 1024 * 1024

#: How a ``fetch_or_compute`` call obtained its value.
ROLE_HIT = "hit"            # artifact already on disk
ROLE_DEDUP = "dedup"        # waited on another process's lease, then read
ROLE_COMPILE = "compile"    # held the lease and produced the artifact
ROLE_FALLBACK = "fallback"  # lease wait exhausted; compiled locally


def default_lease_ttl() -> float:
    """The configured lease TTL (``REPRO_LEASE_TTL``), in seconds."""
    raw = os.environ.get("REPRO_LEASE_TTL", "").strip()
    try:
        value = float(raw) if raw else DEFAULT_LEASE_TTL
    except ValueError:
        return DEFAULT_LEASE_TTL
    return value if value > 0 else DEFAULT_LEASE_TTL


class Lease:
    """A held single-flight lease on one artifact key.

    Heartbeats from a daemon thread keep the lease file's mtime fresh;
    :meth:`release` stops the thread and unlinks the lease *only if it
    still carries this holder's nonce* — a stolen lease belongs to the
    thief and must not be removed out from under it.
    """

    def __init__(
        self,
        store: "ArtifactStore",
        key: str,
        nonce: str,
        token: int,
        ttl: float,
        silent: bool = False,
    ):
        self.store = store
        self.key = key
        self.nonce = nonce
        self.token = token
        self.ttl = ttl
        self.silent = silent       # a stale-lease fault: never heartbeat
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    @property
    def path(self) -> Path:
        return self.store.lease_path(self.key)

    def start(self) -> None:
        """Begin heartbeating (no-op for a silent/faulted lease)."""
        if self.silent or self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._beat, name=f"lease-{self.key[:12]}", daemon=True
        )
        self._thread.start()

    def _beat(self) -> None:
        interval = max(self.ttl / 4.0, 0.05)
        while not self._stop.wait(interval):
            try:
                os.utime(self.path)
            except OSError:
                return  # lease stolen or directory gone: stop beating

    def still_mine(self) -> bool:
        """Whether the lease file on disk still carries our nonce."""
        try:
            info = json.loads(self.path.read_text())
        except (OSError, ValueError):
            return False
        return isinstance(info, dict) and info.get("nonce") == self.nonce

    def stop(self) -> None:
        """Stop heartbeating but leave the lease file behind — the
        shape of a holder that died without releasing."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=1.0)

    def release(self) -> None:
        """Stop heartbeating and remove the lease if it is still ours."""
        self.stop()
        try:
            with self.store._key_lock(self.key):
                if self.still_mine():
                    os.unlink(self.path)
        except OSError:
            pass


class ArtifactStore:
    """One directory of integrity-checked, lease-guarded artifacts."""

    def __init__(
        self,
        directory: Union[str, Path],
        ttl: Optional[float] = None,
        wait_timeout: Optional[float] = None,
        sink=None,
        faults=None,
    ):
        self.directory = Path(directory)
        self.ttl = default_lease_ttl() if ttl is None else float(ttl)
        # How long a waiter blocks on somebody else's lease before
        # degrading to a local compile.  Long enough to ride out one
        # full steal cycle (TTL staleness + the thief's own compile).
        self.wait_timeout = (
            max(4.0 * self.ttl, 10.0)
            if wait_timeout is None else float(wait_timeout)
        )
        self.poll_interval = min(max(self.ttl / 20.0, 0.01), 0.05)
        self.sink = sink
        self.faults = faults

    # -- paths ---------------------------------------------------------------
    def artifact_path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def lease_path(self, key: str) -> Path:
        return self.directory / f"{key}.lease"

    @property
    def events_path(self) -> Path:
        return self.directory / "events.log"

    # -- plumbing ------------------------------------------------------------
    @contextmanager
    def _key_lock(self, key: str):
        """A per-key ``flock`` serializing lease mutations and fenced
        publishes across processes.  The kernel drops the lock when the
        fd closes — including by SIGKILL — so a dead holder can never
        wedge its rivals."""
        path = self.directory / f"{key}.lock"
        fd = os.open(path, os.O_CREAT | os.O_RDWR, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            os.close(fd)

    def _event(self, ev: str, key: Optional[str] = None, **extra) -> None:
        """Append one JSON line to the durable event journal.

        Journal failures are swallowed: accounting must never break the
        operation it is accounting for.
        """
        record: Dict[str, object] = {
            "t": round(time.time(), 4), "pid": os.getpid(), "ev": ev,
        }
        if key is not None:
            record["key"] = key[:12]
        record.update(extra)
        line = (json.dumps(record, sort_keys=True) + "\n").encode()
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            try:
                if self.events_path.stat().st_size > MAX_EVENT_LOG_BYTES:
                    return
            except OSError:
                pass
            fd = os.open(
                self.events_path,
                os.O_CREAT | os.O_WRONLY | os.O_APPEND,
                0o644,
            )
            try:
                os.write(fd, line)
            finally:
                os.close(fd)
        except OSError:
            pass

    def _diagnose(self, message: str, hint: str = "") -> None:
        if self.sink is None:
            return
        try:
            self.sink.warning("artifact-store", message, hint=hint)
        except Exception:  # noqa: BLE001 — reporting must never break I/O
            pass

    def _disk_error(self, op: str, key: Optional[str], exc: OSError) -> None:
        self._event(
            "disk-error", key, op=op,
            errno=exc.errno if exc.errno is not None else 0,
        )
        self._diagnose(
            f"disk error during artifact {op}: {exc}",
            hint="the cache is bypassed for this operation; the compile "
                 "proceeds uncached",
        )

    def _draw(self, op: str, key: str):
        """One fault-plan arrival at this operation's key-qualified
        site (``artifact:<op>:<key12>``, alias ``artifact:<op>``)."""
        if self.faults is None:
            return None
        return self.faults.draw(
            f"artifact:{op}:{key[:12]}", aliases=(f"artifact:{op}",)
        )

    # -- integrity framing ---------------------------------------------------
    def _encode(self, payload: bytes) -> bytes:
        digest = hashlib.sha256(payload).hexdigest()
        header = (
            f"{HEADER_MAGIC} {HEADER_VERSION} "
            f"sha256={digest} bytes={len(payload)}\n"
        )
        return header.encode("ascii") + payload

    def _decode(self, blob: bytes) -> bytes:
        newline = blob.find(b"\n")
        if newline < 0:
            raise ValueError("missing artifact header")
        fields = blob[:newline].decode("ascii", "replace").split()
        if len(fields) != 4 or fields[0] != HEADER_MAGIC:
            raise ValueError("bad artifact header")
        if fields[1] != str(HEADER_VERSION):
            raise ValueError(f"unknown artifact version {fields[1]!r}")
        want_sha = fields[2].partition("=")[2]
        want_len = fields[3].partition("=")[2]
        payload = blob[newline + 1:]
        if not want_len.isdigit() or len(payload) != int(want_len):
            raise ValueError(
                f"payload length mismatch (torn write?): "
                f"have {len(payload)}, header says {want_len}"
            )
        if hashlib.sha256(payload).hexdigest() != want_sha:
            raise ValueError("payload checksum mismatch")
        return payload

    # -- read side -----------------------------------------------------------
    def _damage(self, path: Path) -> None:
        """Flip the last payload byte in place (``corrupt-artifact``)."""
        try:
            with open(path, "r+b") as handle:
                handle.seek(0, os.SEEK_END)
                size = handle.tell()
                if size == 0:
                    return
                handle.seek(size - 1)
                byte = handle.read(1)
                handle.seek(size - 1)
                handle.write(bytes([byte[0] ^ 0xFF]))
        except OSError:
            pass

    def read(self, key: str) -> Optional[bytes]:
        """The verified payload for ``key``, or None.

        A corrupt artifact (bad header, short payload, checksum
        mismatch) is unlinked, journalled, and reported as a miss —
        its bytes are never returned.
        """
        path = self.artifact_path(key)
        spec = self._draw("read", key)
        if spec is not None and spec.kind == "corrupt-artifact":
            self._event("fault", key, kind=spec.kind, site=spec.site)
            self._damage(path)
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            return None
        except OSError as exc:
            self._disk_error("read", key, exc)
            return None
        try:
            return self._decode(blob)
        except ValueError as exc:
            self.drop(key, str(exc))
            return None

    def drop(self, key: str, reason: str) -> None:
        """Unlink a corrupt/unusable artifact and journal why."""
        self._event("corrupt-drop", key, reason=reason[:120])
        self._diagnose(
            f"dropping corrupt artifact {key[:12]}…: {reason}",
            hint="the entry is recompiled; if this recurs, clear the "
                 "cache directory (REPRO_CACHE_DIR)",
        )
        try:
            os.unlink(self.artifact_path(key))
        except OSError:
            pass

    def note_hit(self, key: str, waited: bool = False) -> None:
        """Journal a successful read and refresh LRU recency."""
        self._event("hit", key, waited=waited)
        try:
            os.utime(self.artifact_path(key))
        except OSError:
            pass

    # -- write side ----------------------------------------------------------
    def publish(
        self, key: str, payload: bytes, lease: Optional[Lease] = None
    ) -> str:
        """Write ``payload`` under ``key``; returns how it went:
        ``published`` | ``exists`` | ``fenced`` | ``torn`` | ``error``.

        Link-once semantics: an existing artifact is never replaced.
        With a ``lease``, the link happens under the per-key flock only
        if the lease still carries the holder's nonce (the fencing
        rule); a holder whose lease was stolen gets ``fenced`` and its
        bytes never reach the final name.
        """
        spec = self._draw("publish", key)
        torn = spec is not None and spec.kind == "torn-write"
        try:
            if spec is not None and spec.kind == "enospc":
                self._event("fault", key, kind=spec.kind, site=spec.site)
                raise OSError(
                    errno.ENOSPC, "no space left on device (injected)"
                )
            self.directory.mkdir(parents=True, exist_ok=True)
            blob = self._encode(payload)
            if torn:
                self._event("fault", key, kind=spec.kind, site=spec.site)
                blob = blob[: max(len(blob) // 2, 8)]
            fd, tmp = tempfile.mkstemp(
                dir=str(self.directory), suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                    handle.flush()
                    os.fsync(handle.fileno())
                final = self.artifact_path(key)
                if lease is not None:
                    with self._key_lock(key):
                        if not lease.still_mine():
                            self._event(
                                "publish-fenced", key, token=lease.token
                            )
                            return "fenced"
                        os.link(tmp, final)
                else:
                    os.link(tmp, final)
            finally:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
        except FileExistsError as exc:
            # Usually the link collision (a rival published first) —
            # but mkdir raises this too when the cache *path* exists as
            # a non-directory, which is a disk error, not a hit.
            if self.artifact_path(key).exists():
                self._event("publish-exists", key)
                return "exists"
            self._disk_error("publish", key, exc)
            return "error"
        except OSError as exc:
            self._disk_error("publish", key, exc)
            return "error"
        token = lease.token if lease is not None else 0
        if torn:
            self._event("publish-torn", key, token=token)
            return "torn"
        self._event("publish", key, token=token)
        return "published"

    # -- leases --------------------------------------------------------------
    def _create_lease(
        self, key: str, token: int, silent: bool = False
    ) -> Optional[Lease]:
        """O_EXCL-create the lease file; None if somebody beat us."""
        nonce = os.urandom(8).hex()
        body = json.dumps({
            "pid": os.getpid(),
            "nonce": nonce,
            "token": token,
            "ttl": self.ttl,
            "created": round(time.time(), 4),
        }).encode()
        try:
            fd = os.open(
                self.lease_path(key),
                os.O_CREAT | os.O_EXCL | os.O_WRONLY,
                0o644,
            )
        except FileExistsError:
            return None
        try:
            os.write(fd, body)
            os.fsync(fd)
        finally:
            os.close(fd)
        return Lease(self, key, nonce, token, self.ttl, silent=silent)

    def acquire(self, key: str) -> Optional[Lease]:
        """Try to become the single-flight holder for ``key``.

        Under a ``stale-lease`` fault the lease is acquired but plays
        dead: mtime backdated past the TTL, no heartbeat — forcing
        waiters down the steal path while this holder compiles on.
        """
        spec = self._draw("lease", key)
        silent = spec is not None and spec.kind == "stale-lease"
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            with self._key_lock(key):
                lease = self._create_lease(key, token=1, silent=silent)
        except OSError as exc:
            self._disk_error("lease", key, exc)
            return None
        if lease is None:
            return None
        if silent:
            self._event("fault", key, kind=spec.kind, site=spec.site)
            past = time.time() - (self.ttl * 2.0 + 1.0)
            try:
                os.utime(self.lease_path(key), (past, past))
            except OSError:
                pass
        else:
            lease.start()
        return lease

    def _read_lease(self, key: str) -> Optional[dict]:
        path = self.lease_path(key)
        try:
            raw = path.read_text()
            mtime = path.stat().st_mtime
        except OSError:
            return None
        try:
            info = json.loads(raw)
        except ValueError:
            info = None
        if not isinstance(info, dict):
            # A torn lease write: unreadable, unowned, immediately
            # stealable (nonce None can only match another torn read).
            info = {"pid": 0, "nonce": None, "token": 0, "ttl": 0.0}
        info["mtime"] = mtime
        return info

    def _lease_stale(self, info: dict) -> bool:
        """Dead holder (same-host pid probe) or heartbeat past TTL."""
        pid = info.get("pid")
        if isinstance(pid, int) and pid > 0:
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                return True
            except OSError:
                pass  # alive, or unknowable: fall through to the TTL
        try:
            ttl = float(info.get("ttl") or 0.0)
        except (TypeError, ValueError):
            ttl = 0.0
        ttl = ttl if ttl > 0 else self.ttl
        return time.time() - float(info.get("mtime", 0.0)) > ttl

    def steal(self, key: str, observed: dict) -> Optional[Lease]:
        """Take over a stale lease with the next fencing token.

        Under the per-key flock: re-read, confirm the lease is still
        the one we ``observed`` (same nonce) and still stale, unlink,
        re-create with ``token + 1``.  Any change since observation
        aborts the steal — a rival thief or a revived holder got there
        first, and the caller goes back to waiting.
        """
        spec = self._draw("steal", key)
        if spec is not None and spec.kind == "lease-steal-race":
            self._event("fault", key, kind=spec.kind, site=spec.site)
            time.sleep(spec.seconds or 0.05)
        try:
            with self._key_lock(key):
                current = self._read_lease(key)
                if current is None:
                    return None
                if current.get("nonce") != observed.get("nonce"):
                    return None
                if not self._lease_stale(current):
                    return None
                try:
                    os.unlink(self.lease_path(key))
                except FileNotFoundError:
                    return None
                try:
                    token = int(current.get("token") or 0) + 1
                except (TypeError, ValueError):
                    token = 1
                lease = self._create_lease(key, token=token)
                if lease is not None:
                    self._event(
                        "steal", key,
                        token=token, victim=current.get("pid"),
                    )
                    lease.start()
                return lease
        except OSError as exc:
            self._disk_error("steal", key, exc)
            return None

    # -- the single-flight fetch --------------------------------------------
    def fetch_or_compute(
        self,
        key: str,
        produce: Callable[[], Tuple[object, bytes]],
        decode: Optional[Callable[[bytes], object]] = None,
        wait_timeout: Optional[float] = None,
        cancel: Optional[Callable[[], None]] = None,
    ) -> Tuple[object, str]:
        """The full cross-process single-flight protocol for one key.

        ``produce`` computes the value and its serialized payload;
        ``decode`` revives a value from stored bytes (raising
        ``ValueError`` drops the artifact as unusable and recompiles).
        Returns ``(value, role)`` with role one of :data:`ROLE_HIT`,
        :data:`ROLE_DEDUP`, :data:`ROLE_COMPILE`, :data:`ROLE_FALLBACK`.
        ``cancel`` is the request-deadline probe: polled every
        iteration so a waiter honours its own deadline exactly like a
        local compile would.
        """
        timeout = self.wait_timeout if wait_timeout is None else wait_timeout
        deadline = time.monotonic() + timeout
        waited = False
        while True:
            if cancel is not None:
                cancel()
            value = self._read_decoded(key, decode)
            if value is not None:
                self.note_hit(key, waited=waited)
                return value, (ROLE_DEDUP if waited else ROLE_HIT)
            lease = self.acquire(key)
            if lease is None:
                info = self._read_lease(key)
                if info is not None and self._lease_stale(info):
                    lease = self.steal(key, info)
                if lease is None:
                    if time.monotonic() >= deadline:
                        self._event("fallback", key)
                        value, _blob = produce()
                        return value, ROLE_FALLBACK
                    waited = True
                    time.sleep(self.poll_interval)
                    continue
            try:
                # Re-check under the lease: the previous holder may
                # have published between our read and our acquire.
                value = self._read_decoded(key, decode)
                if value is not None:
                    self.note_hit(key, waited=waited)
                    return value, (ROLE_DEDUP if waited else ROLE_HIT)
                self._event("compile", key, token=lease.token)
                value, blob = produce()
                self.publish(key, blob, lease=lease)
                return value, ROLE_COMPILE
            finally:
                lease.release()

    def _read_decoded(self, key: str, decode) -> Optional[object]:
        data = self.read(key)
        if data is None:
            return None
        if decode is None:
            return data
        try:
            return decode(data)
        except ValueError as exc:
            self.drop(key, str(exc))
            return None

    # -- durable accounting --------------------------------------------------
    def events(self) -> List[dict]:
        """Every journalled event, oldest first (torn tail lines are
        skipped — the journal itself may be cut by a crash)."""
        try:
            raw = self.events_path.read_bytes()
        except OSError:
            return []
        out: List[dict] = []
        for line in raw.splitlines():
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict) and "ev" in record:
                out.append(record)
        return out

    def counters(self) -> Dict[str, int]:
        """Fleet-wide counters aggregated from the event journal.

        ``dedup_hits`` is the headline number: reads that saved another
        process's compile — lease-waiters plus plain hits whose
        publisher was a different pid.
        """
        events = self.events()
        publisher: Dict[str, int] = {}
        for event in events:
            if event.get("ev") == "publish" and "key" in event:
                publisher.setdefault(str(event["key"]), int(event["pid"]))
        counts = {
            "publishes": 0, "compiles": 0, "log_hits": 0,
            "dedup_hits": 0, "steals": 0, "fenced_publishes": 0,
            "corruption_drops": 0, "disk_errors": 0, "fallbacks": 0,
            "torn_publishes": 0, "faults_injected": 0,
        }
        for event in events:
            ev = event.get("ev")
            if ev == "publish":
                counts["publishes"] += 1
            elif ev == "compile":
                counts["compiles"] += 1
            elif ev == "hit":
                counts["log_hits"] += 1
                owner = publisher.get(str(event.get("key")))
                if event.get("waited") or (
                    owner is not None and owner != event.get("pid")
                ):
                    counts["dedup_hits"] += 1
            elif ev == "steal":
                counts["steals"] += 1
            elif ev == "publish-fenced":
                counts["fenced_publishes"] += 1
            elif ev == "corrupt-drop":
                counts["corruption_drops"] += 1
            elif ev == "disk-error":
                counts["disk_errors"] += 1
            elif ev == "fallback":
                counts["fallbacks"] += 1
            elif ev == "publish-torn":
                counts["torn_publishes"] += 1
            elif ev == "fault":
                counts["faults_injected"] += 1
        return counts

    def clear(self) -> None:
        """Remove leases, per-key locks, and the event journal (artifact
        entries themselves are the cache layer's to manage)."""
        for pattern in ("*.lease", "*.lock"):
            for path in self.directory.glob(pattern):
                try:
                    path.unlink()
                except OSError:
                    pass
        try:
            self.events_path.unlink()
        except OSError:
            pass
