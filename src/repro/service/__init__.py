"""Compile-as-a-service: the paper's graceful degradation, one layer up.

The paper's run-time story (Fig. 5, §2.2) is *degraded, not dead*: when
the preheader alias/alignment/trip-count checks fail, execution falls
back to the safe uncoalesced loop instead of faulting.  PR 3 moved that
discipline into the compiler (transactional passes, skip/fallback);
this package moves it up to the process boundary — the whole
compile+simulate pipeline exposed as a long-running, fault-tolerant
service:

* :mod:`repro.service.protocol` — the JSON-lines request/response
  protocol spoken over a local Unix socket;
* :mod:`repro.service.server` — ``python -m repro serve``: a bounded
  request queue with load shedding, a worker pool sharing the disk
  compile cache (with single-flight dedup), per-request deadlines
  enforced at the pipeline's cancellation points, and per-(machine,
  config) circuit breakers that serve *degraded* compiles (offending
  passes disabled) while open;
* :mod:`repro.service.client` — ``python -m repro submit``: a client
  with exponential-backoff-plus-jitter retries for retryable failures
  (connection refused, load-shed rejections, deadline timeouts);
* :mod:`repro.service.breaker` — the circuit-breaker state machine
  (closed → open → half-open → closed);
* :mod:`repro.service.fleet` + :mod:`repro.service.supervisor` —
  ``python -m repro serve --fleet N``: a supervised multi-*process*
  worker fleet behind one socket, sharded by (machine, config) so
  breaker state stays per-shard, with heartbeat-based hang detection,
  exponential-backoff restarts, exactly-once requeue of in-flight
  requests from crashed workers, and quarantine (degraded local
  compile + crash bundle) for requests that kill workers repeatedly;
* :mod:`repro.service.artifacts` — the crash-safe content-addressed
  artifact store under the compile cache: integrity-framed entries
  published by fsync + link-once, a lease-based cross-process
  single-flight protocol (heartbeats, staleness detection, fenced
  steals), a durable event journal behind the ``dedup``/``steal``/
  ``corruption`` counters, and the seeded disk-fault hooks that
  ``python -m repro chaos --disk`` drives.
"""

from repro.service.artifacts import ArtifactStore, Lease
from repro.service.breaker import (
    BREAKER_STATES,
    BreakerBoard,
    CircuitBreaker,
)
from repro.service.client import ServiceClient, ServiceUnavailable
from repro.service.fleet import (
    FleetSupervisor,
    run_disk_chaos,
    run_fleet_chaos,
)
from repro.service.protocol import (
    PROTOCOL_VERSION,
    RETRYABLE_STATUSES,
    ProtocolError,
    default_socket_path,
)
from repro.service.server import CompileServer, LatencyRing
from repro.service.supervisor import Worker

__all__ = [
    "ArtifactStore",
    "BREAKER_STATES",
    "BreakerBoard",
    "CircuitBreaker",
    "CompileServer",
    "FleetSupervisor",
    "LatencyRing",
    "Lease",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RETRYABLE_STATUSES",
    "ServiceClient",
    "ServiceUnavailable",
    "Worker",
    "default_socket_path",
    "run_disk_chaos",
    "run_fleet_chaos",
]
