"""Transactional pass execution: snapshot, verify, roll back, record.

Mirrors the paper's run-time fallback (Fig. 5) at compile time: just as
the coalesced loop is entered only after preheader checks pass — with
control falling back to the original safe loop otherwise — every
optimization pass here runs against a snapshot and commits only if the
result survives the IR verifier (and, when enabled, the differential
pass-sanitizer).  A pass that throws, corrupts the IR, or miscompiles is
rolled back and compilation degrades gracefully to a still-correct, if
less optimized, program.

Snapshots are the RTL-text round trip (``format_module`` /
``parse_module``) already proven bit-exact by the compile-session cache;
restoring swaps block lists back into the *live* ``Function`` objects so
iteration order and object identity survive the rollback.

The policy knob (``PipelineConfig.on_pass_failure``):

==========  ============================================================
``raise``   legacy behaviour — the failure propagates (default)
``skip``    roll back this pass invocation and keep going
``fallback``  roll back *and* disable the pass for the rest of the
            compilation, like the paper's safe-loop fallback
==========  ============================================================
"""

from __future__ import annotations

import time
import traceback as _traceback
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.ir.function import Function, Module
from repro.ir.parser import parse_module
from repro.ir.printer import format_module
from repro.ir.verifier import verify_function, verify_module

PASS_FAILURE_POLICIES = ("raise", "skip", "fallback")


@dataclass
class PassFailure:
    """One recovered (or about-to-propagate) pass failure."""

    pass_name: str
    function: str                 # '' for module-level stages
    kind: str                     # 'exception' | 'verify' | 'differential'
    error_type: str
    message: str
    traceback: str
    pre_pass_rtl: str             # module RTL text before the pass ran
    invocation: int               # nth arrival at this pass site
    injected: str = ""            # the FaultSpec that fired, if any
    bundle: str = ""              # path of the written crash bundle, if any

    @property
    def signature(self) -> tuple:
        """What bisect/replay match on to call two failures 'the same'."""
        return (self.pass_name, self.kind, self.error_type)

    def describe(self) -> str:
        where = f" on {self.function}" if self.function else ""
        return (
            f"pass '{self.pass_name}'{where} failed "
            f"({self.kind}: {self.error_type}: {self.message})"
        )


def snapshot_module_text(module: Module) -> str:
    """The module's RTL text — the rollback point for one pass."""
    return format_module(module)


def _adopt_function(live: Function, saved: Function) -> None:
    """Copy ``saved``'s body into ``live`` without changing identity.

    ``_next_reg``/``_next_label`` are left at the live (higher) values:
    both counters are monotone, so keeping them can only waste names,
    never collide.
    """
    live.params = list(saved.params)
    live.blocks = saved.blocks
    live.frame_slots = dict(saved.frame_slots)
    live.reserve_reg_index(saved.max_reg_index())


def restore_module_text(module: Module, text: str) -> None:
    """Roll every function of ``module`` back to the snapshot ``text``.

    Globals are structural (no pass mutates them) and functions are never
    added or removed mid-pipeline, so restoring bodies in place suffices.
    """
    saved = parse_module(text, name=module.name)
    for name, live in module.functions.items():
        replacement = saved.functions.get(name)
        if replacement is not None:
            _adopt_function(live, replacement)


def _changed(result) -> bool:
    """The pipeline's historical did-anything-change heuristic."""
    if isinstance(result, bool):
        return result
    if isinstance(result, list):
        return any(getattr(r, "applied", True) for r in result)
    return True


class PassGuard:
    """Runs pipeline stages as transactions against a module snapshot.

    One guard serves one compilation.  It is *armed* (snapshots, per-pass
    verification, rollback) whenever the policy is not ``raise`` or a
    fault plan is present; otherwise every stage runs on the legacy fast
    path — no snapshot, failures propagate — so default compilations are
    byte-for-byte unchanged.
    """

    def __init__(
        self,
        module: Module,
        machine=None,
        policy: str = "raise",
        faults=None,
        sink=None,
        sanitizer=None,
        source: str = "",
        config=None,
        crash_dir: Optional[str] = None,
        disabled: tuple = (),
        verify: bool = True,
        max_bundles: Optional[int] = None,
    ):
        if policy not in PASS_FAILURE_POLICIES:
            from repro.errors import ReproError

            raise ReproError(
                f"unknown on_pass_failure policy {policy!r}; known: "
                f"{', '.join(PASS_FAILURE_POLICIES)}"
            )
        self.module = module
        self.machine = machine
        self.policy = policy
        self.faults = faults
        self.sink = sink
        self.sanitizer = sanitizer
        self.source = source
        self.config = config
        self.crash_dir = crash_dir
        self.max_bundles = max_bundles
        self.disabled: Set[str] = set(disabled)
        self.verify = verify
        self.armed = policy != "raise" or bool(faults)
        self.failures: List[PassFailure] = []
        self._arrivals: Dict[str, int] = {}

    # -- the transaction ----------------------------------------------------
    def stage(
        self,
        ctx,
        name: str,
        thunk,
        func: Optional[Function] = None,
        verify_after: Optional[bool] = None,
    ):
        """Run one stage; returns its result, or ``None`` when skipped or
        rolled back.  ``func`` names the function for per-function stages
        (``None`` for module-level ones like lowering/scheduling)."""
        if name in self.disabled:
            ctx.record_pass(name, False, 0.0)
            return None
        invocation = self._arrivals[name] = self._arrivals.get(name, 0) + 1
        do_verify = (
            verify_after if verify_after is not None
            else (self.armed and self.verify)
        )
        aliases = (f"{name}:{func.name}",) if func is not None else ()
        spec = self.faults.draw(name, aliases) if self.faults else None

        snapshot = snapshot_module_text(self.module) if self.armed else None
        behavior = None
        if self.sanitizer is not None:
            if func is not None:
                behavior = self.sanitizer.snapshot(func)
            else:
                behavior = {
                    f.name: self.sanitizer.snapshot(f) for f in self.module
                }

        error: Optional[BaseException] = None
        error_tb = ""
        failure_kind = "exception"
        result = None
        started = time.perf_counter()
        try:
            if spec is not None and spec.kind in ("raise", "stall", "sleep"):
                self.faults.execute(spec)
            result = thunk()
            if spec is not None and spec.kind == "corrupt":
                target = func if func is not None else next(
                    iter(self.module), None
                )
                self.faults.corrupt(spec, target)
            if do_verify:
                failure_kind = "verify"
                if func is not None:
                    verify_function(func)
                else:
                    verify_module(self.module)
        except Exception as exc:  # noqa: BLE001 — any pass bug must be containable
            error = exc
            error_tb = _traceback.format_exc()
        seconds = time.perf_counter() - started

        if error is None:
            changed = _changed(result)
            agreed = True
            if self.sanitizer is not None:
                if func is not None:
                    if changed:
                        agreed = self.sanitizer.compare(behavior, func, name)
                else:
                    for f in self.module:
                        if not self.sanitizer.compare(
                            behavior[f.name], f, name
                        ):
                            agreed = False
            if agreed or not self.armed:
                ctx.record_pass(name, changed, seconds)
                return result
            failure_kind = "differential"

        ctx.record_pass(name, False, seconds)
        if not self.armed:
            raise error  # legacy 'raise' path: propagate unchanged
        if self.policy == "raise" and error is not None:
            raise error

        restore_module_text(self.module, snapshot)
        failure = PassFailure(
            pass_name=name,
            function=func.name if func is not None else "",
            kind=failure_kind,
            error_type=(
                type(error).__name__ if error is not None else "Miscompile"
            ),
            message=(
                str(error) if error is not None
                else "differential sanitizer observed a behaviour change"
            ),
            traceback=error_tb,
            pre_pass_rtl=snapshot,
            invocation=invocation,
            injected=str(spec) if spec is not None else "",
        )
        self.failures.append(failure)
        self._report(failure)
        self._write_bundle(failure)
        if self.policy == "fallback":
            self.disabled.add(name)
        if self.policy == "raise":
            # Differential miscompile under the raise policy: surface it
            # as a hard error carrying the sink's findings.
            from repro.errors import LintError

            raise LintError(
                self.sink.errors if self.sink is not None else []
            )
        return None

    # -- reporting ----------------------------------------------------------
    def _report(self, failure: PassFailure) -> None:
        if self.sink is None:
            return
        from repro.sanitize.diagnostics import Location

        self.sink.warning(
            "pass-recovery",
            f"{failure.describe()}; rolled back to the last good module",
            location=(
                Location(failure.function) if failure.function else None
            ),
            provenance=failure.pass_name,
            hint="replay with 'python -m repro replay <bundle>' or pin "
                 "the pass with 'python -m repro bisect <bundle>'",
        )

    def _write_bundle(self, failure: PassFailure) -> None:
        if self.crash_dir is None:
            return
        from repro.resilience.bundle import write_bundle

        try:
            failure.bundle = write_bundle(
                failure,
                source=self.source,
                machine_name=getattr(self.machine, "name", str(self.machine)),
                config=self.config,
                directory=self.crash_dir,
                faults=str(self.faults) if self.faults else "",
                max_bundles=self.max_bundles,
            )
        except OSError:
            pass  # bundle writing must never turn recovery into a crash
