"""Failure classification: what a caller should *do* about an error.

The compile service (and any other retrying caller) needs a single
answer per failure: try again, fall back to a degraded compilation, or
give up.  The taxonomy mirrors the paper's run-time decision tree — the
preheader checks either pass (full speed), fail recoverably (take the
safe loop), or the program itself is wrong (no loop can help):

==============  ===========================================================
``retryable``   transient: deadline blown, connection lost, queue full —
                the identical request may succeed later
``degrade``     the optimizer is at fault: an injected or organic pass
                crash, IR corruption, a miscompile — recompile with the
                offending passes disabled (the Fig. 5 safe-loop move)
``fatal``       the *input* is at fault: parse/semantic errors, runtime
                faults in the simulated program — retrying or degrading
                the same request cannot succeed
==============  ===========================================================
"""

from __future__ import annotations

from repro.errors import (
    DeadlineExceeded,
    FaultInjected,
    IRError,
    LintError,
    LoweringError,
    ParseError,
    PassError,
    QuarantinedRequest,
    ReproError,
    SemanticError,
    SimulationError,
    SimulationTimeout,
    WorkerCrashed,
)

FAILURE_CLASSES = ("retryable", "degrade", "fatal")

RETRYABLE = "retryable"
DEGRADE = "degrade"
FATAL = "fatal"


def classify_failure(exc: BaseException, phase: str = "compile") -> str:
    """One of :data:`FAILURE_CLASSES` for ``exc``.

    ``phase`` is ``'compile'`` or ``'simulate'``: a
    :class:`SimulationTimeout` *during compilation* is a stalled pass
    (degrade it away), while during simulation it means the program ran
    past its step budget (retrying with a bigger budget may help, a
    degraded recompile will not).
    """
    if isinstance(exc, DeadlineExceeded):
        return RETRYABLE
    if isinstance(exc, QuarantinedRequest):
        # Two workers already died for this request; a third try is a
        # retry storm, not resilience.
        return FATAL
    if isinstance(exc, WorkerCrashed):
        # The worker died, not the request (until proven otherwise by a
        # second crash): requeue to a restarted worker.
        return RETRYABLE
    if isinstance(exc, (ConnectionError, TimeoutError, InterruptedError)):
        return RETRYABLE
    if isinstance(exc, (ParseError, SemanticError)):
        return FATAL
    if isinstance(exc, SimulationTimeout):
        return DEGRADE if phase == "compile" else RETRYABLE
    if isinstance(exc, (FaultInjected, IRError, LintError,
                        LoweringError, PassError)):
        return DEGRADE
    if isinstance(exc, SimulationError):
        # A bad address / alignment trap is the simulated program (or a
        # miscompile the sanitizer missed) — during compilation that is
        # the optimizer's doing, at run time it is the input's.
        return DEGRADE if phase == "compile" else FATAL
    if isinstance(exc, ReproError):
        return DEGRADE if phase == "compile" else FATAL
    if isinstance(exc, OSError):
        return RETRYABLE
    if isinstance(exc, (MemoryError, RecursionError)):
        return FATAL
    # An arbitrary Python exception escaping a pass is exactly what
    # graceful degradation exists for; outside compilation there is no
    # safe fallback to take.
    return DEGRADE if phase == "compile" else FATAL


def is_retryable(exc: BaseException, phase: str = "compile") -> bool:
    return classify_failure(exc, phase) == RETRYABLE
