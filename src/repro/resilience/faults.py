"""Deterministic fault injection for chaos-testing the recovery machinery.

A :class:`FaultPlan` describes *where* and *how* compilation should be
made to fail.  Two modes, freely combinable with the rest of the plan
string but mutually exclusive in effect (explicit sites win):

* **explicit sites** — ``unroll=raise``, ``coalesce=corrupt@2`` (fire on
  the second arrival), ``sim:f/loop=stall`` (stall the simulator the
  first time block ``loop`` of function ``f`` executes);
* **seeded sweep** — ``seed=42,rate=0.25,kinds=raise|corrupt`` fires at
  every pass site with probability ``rate``, decided by a deterministic
  hash of ``(seed, site, arrival)`` so a run is exactly reproducible
  from its plan string.

Three fault kinds:

=========  ==============================================================
``raise``  raise :class:`repro.errors.FaultInjected` before the pass runs
``corrupt``  damage the IR after the pass (drop a terminator) so the
           verifier must catch it
``stall``  raise :class:`repro.errors.SimulationTimeout`, emulating a
           stalled pass or a diverging simulation
``sleep``  actually stall: block the pass for ``seconds`` of wall clock
           (``site=sleep:0.5``), then continue normally.  Sleeps in
           small slices and honours :attr:`FaultPlan.cancel_check`, so
           a deadline can cut the stall short — this is how the
           compile service's per-request deadlines are exercised.
=========  ==============================================================

Plus three *fleet-level* kinds (:data:`FLEET_FAULT_KINDS`) that act on
whole worker processes rather than passes — ``kill`` (SIGKILL a worker
shortly after a request is dispatched to it), ``hang`` (SIGSTOP it until
the heartbeat timeout fires), and ``slowstart`` (delay a spawning
worker's socket bind).  They are drawn by the fleet supervisor at
``worker:<index>`` / ``worker:<index>:spawn`` sites and are inert
anywhere else; see :mod:`repro.service.fleet`.

And five *disk-level* kinds (:data:`DISK_FAULT_KINDS`) that act on the
content-addressed artifact store rather than on passes or workers —
``torn-write`` (the publishing process "crashes" between payload write
and rename, leaving a truncated temp-file image in the final location),
``stale-lease`` (a lease holder stops heartbeating so waiters must
steal), ``lease-steal-race`` (a stealing waiter pauses between
verifying the lease is stale and re-acquiring it, widening the race
window with a rival stealer), ``corrupt-artifact`` (flip payload bytes
after publish so the read-side checksum must catch it), and ``enospc``
(raise ``OSError(ENOSPC)`` from the write path).  They are drawn by
:class:`repro.service.artifacts.ArtifactStore` at ``artifact:read``,
``artifact:publish``, ``artifact:lease`` and ``artifact:steal`` sites
(each also answering to the key-qualified alias
``artifact:<op>:<key12>``) and are inert anywhere else.

Plans come from the ``REPRO_FAULTS`` environment variable (picked up by
``compile_minic`` automatically) or the ``--inject`` CLI flag, and
round-trip through ``str(plan)`` so a crash bundle can re-arm the exact
plan on replay.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import FaultInjected, ReproError, SimulationTimeout

FAULT_KINDS = (
    "raise", "corrupt", "stall", "sleep",
    # Fleet-level kinds, consulted by the fleet supervisor at *worker*
    # granularity rather than by the pass guard at pass sites:
    "kill", "hang", "slowstart",
    # Disk-level kinds, consulted by the artifact store at
    # artifact:<op> sites and inert everywhere else:
    "torn-write", "stale-lease", "lease-steal-race", "corrupt-artifact",
    "enospc",
)

#: Kinds that act on a whole worker process instead of a pass/block.
#: ``kill`` SIGKILLs the worker ``seconds`` after a request is
#: dispatched to it (default 0.05 — mid-compile for anything real);
#: ``hang`` SIGSTOPs it instead, wedging the process until the
#: supervisor's heartbeat timeout declares it dead and SIGKILLs it;
#: ``slowstart`` delays the worker's socket bind by ``seconds`` on
#: spawn, exercising the supervisor's startup grace period.  Sites are
#: ``worker:<index>`` (drawn per dispatch) and ``worker:<index>:spawn``
#: (drawn per spawn, for ``slowstart``).
FLEET_FAULT_KINDS = ("kill", "hang", "slowstart")

#: Kinds that act on the content-addressed artifact store.  They are
#: drawn by :class:`repro.service.artifacts.ArtifactStore` at
#: ``artifact:read`` / ``artifact:publish`` / ``artifact:lease`` /
#: ``artifact:steal`` sites (plus key-qualified aliases) and simulate
#: disk-layer misbehaviour: torn writes, holders that stop
#: heartbeating, widened steal races, bit-flipped payloads, and a full
#: disk.  The pass guard and the fleet supervisor both ignore them.
DISK_FAULT_KINDS = (
    "torn-write", "stale-lease", "lease-steal-race", "corrupt-artifact",
    "enospc",
)

#: Kinds that carry an optional ``:seconds`` amount in plan strings.
#: ``stale-lease`` and ``lease-steal-race`` take one too: how long the
#: holder plays dead / the stealer lingers inside the race window.
TIMED_FAULT_KINDS = (
    ("sleep",) + FLEET_FAULT_KINDS + ("stale-lease", "lease-steal-race")
)

#: Slice width of a ``sleep`` fault: the stall is interruptible at this
#: granularity whenever a ``cancel_check`` is installed.
SLEEP_SLICE = 0.01

#: Prefix of simulator block sites: ``sim:<function>/<block>``.
SIM_SITE_PREFIX = "sim:"


@dataclass(frozen=True)
class FaultSpec:
    """One planted fault: where, what, and on which arrival it fires."""

    site: str
    kind: str = "raise"
    hit: int = 1
    seconds: float = 0.0          # wall-clock stall of a 'sleep' fault

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ReproError(
                f"unknown fault kind {self.kind!r}; "
                f"known: {', '.join(FAULT_KINDS)}"
            )
        if self.hit < 1:
            raise ReproError(f"fault hit count must be >= 1, got {self.hit}")
        if self.seconds < 0:
            raise ReproError("fault sleep seconds must be >= 0")

    def __str__(self) -> str:
        text = f"{self.site}={self.kind}"
        if self.kind in TIMED_FAULT_KINDS and self.seconds:
            text += f":{self.seconds:g}"
        if self.hit != 1:
            text += f"@{self.hit}"
        return text


def _chance(seed: int, site: str, arrival: int) -> float:
    """Deterministic uniform draw in [0, 1) for one site arrival."""
    digest = hashlib.sha256(
        f"{seed}:{site}:{arrival}".encode()
    ).digest()
    return int.from_bytes(digest[:4], "big") / 2**32


class FaultPlan:
    """A reproducible schedule of injected failures.

    The plan is consulted by the pass guard at every pass site (and, via
    :meth:`sim_hook`, by the interpreter at every block).  ``fired``
    records every fault that actually triggered, so a chaos run can
    assert that each planted fault was both hit and recovered from.
    """

    def __init__(
        self,
        specs: Sequence[FaultSpec] = (),
        seed: Optional[int] = None,
        rate: float = 1.0,
        kinds: Sequence[str] = ("raise",),
    ):
        self.specs: List[FaultSpec] = list(specs)
        self.seed = seed
        self.rate = rate
        self.kinds: Tuple[str, ...] = tuple(kinds) or ("raise",)
        for kind in self.kinds:
            if kind not in FAULT_KINDS:
                raise ReproError(f"unknown fault kind {kind!r}")
        self._arrivals: Dict[str, int] = {}
        self.fired: List[FaultSpec] = []
        # Arrival counting must be safe under the compile service, where
        # one long-lived plan is consulted by concurrent worker threads.
        self._lock = threading.Lock()
        # Optional cooperative-cancellation probe (raises to abort); the
        # pipeline installs its deadline check here so 'sleep' faults
        # cannot outlive the request that triggered them.
        self.cancel_check = None

    def __bool__(self) -> bool:
        return bool(self.specs) or self.seed is not None

    def disk_only(self) -> bool:
        """Whether every fault in this plan is a disk-level kind.

        Compilation results under pass faults are not trustworthy, so
        the cached-compile path normally disarms itself whenever a plan
        is active.  A plan made purely of :data:`DISK_FAULT_KINDS`
        inverts that: its whole point is to exercise the artifact
        store, so the cache must stay ON.  (A seeded sweep counts only
        if *all* its candidate kinds are disk kinds.)
        """
        if not self:
            return False
        if any(spec.kind not in DISK_FAULT_KINDS for spec in self.specs):
            return False
        if self.seed is not None and any(
            kind not in DISK_FAULT_KINDS for kind in self.kinds
        ):
            return False
        return True

    def __str__(self) -> str:
        parts = [str(spec) for spec in self.specs]
        if self.seed is not None:
            parts.append(f"seed={self.seed}")
            parts.append(f"rate={self.rate:g}")
            parts.append("kinds=" + "|".join(self.kinds))
        return ",".join(parts)

    def __repr__(self) -> str:
        return f"<FaultPlan {str(self) or 'empty'}>"

    # -- construction -------------------------------------------------------
    @classmethod
    def parse(cls, text: Optional[str]) -> Optional["FaultPlan"]:
        """Parse a plan string; empty/None yields ``None`` (no plan)."""
        if not text or not text.strip():
            return None
        specs: List[FaultSpec] = []
        seed: Optional[int] = None
        rate = 1.0
        kinds: Tuple[str, ...] = ("raise",)
        for entry in text.split(","):
            entry = entry.strip()
            if not entry:
                continue
            key, eq, value = entry.partition("=")
            if not eq:
                raise ReproError(
                    f"bad fault entry {entry!r}; want site=kind[@hit] "
                    "or seed=/rate=/kinds="
                )
            key = key.strip()
            value = value.strip()
            if key == "seed":
                seed = int(value)
            elif key == "rate":
                rate = float(value)
            elif key == "kinds":
                kinds = tuple(
                    k.strip() for k in value.split("|") if k.strip()
                )
            else:
                kind, at, hit = value.partition("@")
                kind, colon, amount = kind.partition(":")
                if colon and kind.strip() not in TIMED_FAULT_KINDS:
                    raise ReproError(
                        f"bad fault entry {entry!r}: only "
                        f"{'/'.join(TIMED_FAULT_KINDS)} take a "
                        "':seconds' amount"
                    )
                specs.append(
                    FaultSpec(
                        key, kind.strip(), int(hit) if at else 1,
                        seconds=float(amount) if colon else 0.0,
                    )
                )
        return cls(specs, seed=seed, rate=rate, kinds=kinds)

    @classmethod
    def from_env(cls, environ=None) -> Optional["FaultPlan"]:
        """The plan named by ``REPRO_FAULTS``, or ``None``."""
        environ = environ if environ is not None else os.environ
        return cls.parse(environ.get("REPRO_FAULTS"))

    # -- consultation -------------------------------------------------------
    def reset(self) -> None:
        """Forget arrival counts and the fired log (fresh compilation)."""
        self._arrivals.clear()
        self.fired.clear()

    def draw(
        self, site: str, aliases: Sequence[str] = ()
    ) -> Optional[FaultSpec]:
        """One arrival at ``site``: the fault that fires now, or ``None``.

        ``aliases`` are additional names the same arrival answers to
        (e.g. ``unroll:dot`` for the per-function form of an ``unroll``
        site).  The returned spec is recorded in :attr:`fired`.
        """
        with self._lock:
            arrival = self._arrivals.get(site, 0) + 1
            self._arrivals[site] = arrival
            names = (site,) + tuple(aliases)
            for spec in self.specs:
                if spec.site in names and spec.hit == arrival:
                    self.fired.append(spec)
                    return spec
            if self.specs or self.seed is None:
                return None
            if _chance(self.seed, site, arrival) < self.rate:
                kind = self.kinds[
                    int(
                        _chance(self.seed + 1, site, arrival)
                        * len(self.kinds)
                    )
                    % len(self.kinds)
                ]
                spec = FaultSpec(site, kind, arrival)
                self.fired.append(spec)
                return spec
            return None

    # -- execution ----------------------------------------------------------
    def execute(self, spec: FaultSpec) -> None:
        """Act out a ``raise``/``stall``/``sleep`` spec.

        ``raise`` and ``stall`` raise; ``sleep`` blocks for the spec's
        wall-clock amount (sliced, honouring :attr:`cancel_check`) and
        returns so the pass then runs normally — a genuinely slow pass
        rather than a failing one.
        """
        if spec.kind == "sleep":
            end = time.monotonic() + spec.seconds
            while True:
                if self.cancel_check is not None:
                    self.cancel_check()
                remaining = end - time.monotonic()
                if remaining <= 0:
                    return
                time.sleep(min(SLEEP_SLICE, remaining))
        if spec.kind == "stall":
            raise SimulationTimeout(
                0, limit=0, function=spec.site,
            )
        if spec.kind in FLEET_FAULT_KINDS:
            raise ReproError(
                f"fault kind {spec.kind!r} is fleet-level; it only fires "
                "at worker:<index> sites under the fleet supervisor"
            )
        if spec.kind in DISK_FAULT_KINDS:
            raise ReproError(
                f"fault kind {spec.kind!r} is disk-level; it only fires "
                "at artifact:<op> sites inside the artifact store"
            )
        raise FaultInjected(spec.site, spec.kind)

    def corrupt(self, spec: FaultSpec, func) -> bool:
        """Deterministically damage ``func``'s IR (for ``corrupt`` specs).

        Drops the terminator of the last non-empty block, which the
        structural verifier is guaranteed to reject.  Returns whether any
        damage was done (a function with no instructions cannot be
        corrupted this way).
        """
        if func is None:
            raise FaultInjected(spec.site, spec.kind)
        for block in reversed(func.blocks):
            if block.instrs:
                block.instrs.pop()
                return True
        return False

    def sim_hook(self):
        """A per-block interpreter hook honouring ``sim:<func>/<block>``
        sites; pass it to ``Simulator(fault_hook=...)``."""

        def hook(func_name: str, label: str) -> None:
            site = f"{SIM_SITE_PREFIX}{func_name}/{label}"
            spec = self.draw(site)
            if spec is not None:
                raise SimulationTimeout(
                    0, limit=0, function=func_name, block=label
                )

        return hook
