"""Fault-isolated compilation: recovery, reproduction, and reduction.

The paper's central trick is *run-time* graceful degradation: the
coalesced loop is guarded by preheader alias/alignment/trip-count checks
and control falls back to the original safe loop when they fail
(Fig. 5, §2.2).  This package applies the same check-then-fall-back
discipline to the compiler itself:

* :mod:`repro.resilience.transaction` — transactional pass execution.
  Every pipeline stage runs against a snapshot (the RTL-text round trip
  already proven by the compile-session cache); on an exception, an
  IR-verifier failure, or a differential-sanitizer miscompile the module
  rolls back to last-good and compilation degrades gracefully to a
  still-correct (if less optimized) program.  The policy knob is
  ``PipelineConfig.on_pass_failure`` (``raise`` | ``skip`` |
  ``fallback``).
* :mod:`repro.resilience.faults` — a deterministic, seeded
  fault-injection harness (``REPRO_FAULTS`` / ``--inject``) that plants
  exceptions, IR corruption, and simulator stalls at chosen pass/block
  sites to chaos-test the recovery machinery.
* :mod:`repro.resilience.bundle` — reproducer bundles.  Every recovered
  failure can be serialized into a ``repro_crash_<hash>/`` directory
  (source, machine, config, pre-pass RTL, traceback, git SHA) with a
  one-command replay: ``python -m repro replay <bundle>``.
* :mod:`repro.resilience.bisect` — ``python -m repro bisect <bundle>``
  delta-debugs the pass list (and unroll factors) down to the minimal
  failing set, then greedily shrinks the Mini-C source while the failure
  still reproduces, bugpoint-style.
* :mod:`repro.resilience.classify` — the retryable / degrade / fatal
  failure taxonomy the compile service's retry and circuit-breaker
  logic is built on.
"""

from repro.resilience.classify import (
    DEGRADE,
    FAILURE_CLASSES,
    FATAL,
    RETRYABLE,
    classify_failure,
    is_retryable,
)
from repro.resilience.faults import (
    DISK_FAULT_KINDS,
    FAULT_KINDS,
    FLEET_FAULT_KINDS,
    FaultPlan,
    FaultSpec,
)
from repro.resilience.transaction import (
    PASS_FAILURE_POLICIES,
    PassFailure,
    PassGuard,
    restore_module_text,
    snapshot_module_text,
)

__all__ = [
    "DEGRADE",
    "FAILURE_CLASSES",
    "FATAL",
    "RETRYABLE",
    "classify_failure",
    "is_retryable",
    "DISK_FAULT_KINDS",
    "FAULT_KINDS",
    "FLEET_FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "PASS_FAILURE_POLICIES",
    "PassFailure",
    "PassGuard",
    "restore_module_text",
    "snapshot_module_text",
]
