"""Auto-bisect and test-case reduction for crash bundles, bugpoint-style.

``python -m repro bisect <bundle>`` answers three questions about a
recovered failure:

1. **Which passes?**  Delta-debug the optional pipeline stages (disable
   halves, then single stages) down to the minimal set whose presence
   still reproduces the failure signature.  An injected fault at pass
   ``P`` can only fire while ``P`` runs, so the search provably pins it.
2. **Which unroll factor?**  When ``unroll`` is implicated, binary-search
   the smallest explicit factor that still fails.
3. **How little source?**  Greedily drop line chunks (halving chunk
   sizes, ddmin-style) from the MiniC source while the failure keeps
   reproducing; unparseable candidates simply fail the predicate.

Every probe is one full (cache-bypassing) compilation under
``on_pass_failure='skip'`` with the bundle's fault plan re-armed, so the
probe itself can never crash the bisector.
"""

from __future__ import annotations

from dataclasses import dataclass, field as _field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.resilience.bundle import Bundle, config_from_bundle
from repro.resilience.faults import FaultPlan

#: Stages a failing compilation can do without (layout order).  ``lower``
#: is mandatory — when a failure survives with every optional stage
#: disabled, the bundle's own pass is reported as the irreducible culprit.
OPTIONAL_STAGES = (
    "cleanup",
    "licm",
    "strength_reduce",
    "unroll",
    "coalesce",
    "schedule",
    "regalloc",
)


@dataclass
class BisectResult:
    """What the bisector pinned down."""

    culprit: List[str]                  # minimal failing pass set
    unroll_factor: Optional[int] = None  # smallest factor that still fails
    reduced_source: Optional[str] = None
    original_lines: int = 0
    reduced_lines: int = 0
    attempts: int = 0
    log: List[str] = _field(default_factory=list)

    def describe(self) -> str:
        lines = [
            "culprit pass set: "
            + (", ".join(self.culprit) if self.culprit else "(none pinned)")
        ]
        if self.unroll_factor is not None:
            lines.append(
                f"smallest failing unroll factor: {self.unroll_factor}"
            )
        if self.reduced_source is not None:
            lines.append(
                f"source reduced {self.original_lines} -> "
                f"{self.reduced_lines} lines"
            )
        lines.append(f"{self.attempts} probe compilations")
        return "\n".join(lines)


class _Prober:
    """Compiles probe variants and checks the failure signature."""

    def __init__(self, bundle: Bundle):
        self.bundle = bundle
        self.signature = bundle.signature
        self.attempts = 0

    def fails(
        self,
        source: Optional[str] = None,
        disabled: Sequence[str] = (),
        unroll_factor: Optional[int] = None,
    ) -> bool:
        """Does this variant still reproduce the bundle's failure?"""
        from repro.pipeline import compile_minic

        self.attempts += 1
        overrides = {
            "name": "bisect",
            "on_pass_failure": "skip",
            "disabled_passes": tuple(disabled),
        }
        if unroll_factor is not None:
            overrides["unroll_factor"] = unroll_factor
        config = config_from_bundle(self.bundle, **overrides)
        faults = FaultPlan.parse(self.bundle.manifest.get("faults"))
        try:
            program = compile_minic(
                source if source is not None else self.bundle.source,
                self.bundle.machine,
                config,
                faults=faults,
            )
        except ReproError:
            return False  # unparseable/uncompilable probe: not our failure
        return any(
            f.signature == self.signature for f in program.pass_failures
        )


def _minimize_stages(
    candidates: Sequence[str], still_fails: Callable[[Sequence[str]], bool]
) -> List[str]:
    """ddmin over the stage list: drop halves, then singles, while the
    failure persists with only the surviving stages enabled."""
    needed = list(candidates)
    chunk = max(1, len(needed) // 2)
    while chunk >= 1:
        start = 0
        while start < len(needed):
            trial = needed[:start] + needed[start + chunk:]
            if still_fails(trial):
                needed = trial
            else:
                start += chunk
        if chunk == 1:
            break
        chunk = max(1, chunk // 2)
    return needed


def _minimize_unroll(
    prober: _Prober, disabled: Sequence[str], upper: int
) -> Optional[int]:
    """Binary-search the smallest explicit unroll factor still failing."""
    factors = [f for f in (2, 4, 8, 16) if f <= max(upper, 2)]
    failing: Optional[int] = None
    lo, hi = 0, len(factors) - 1
    while lo <= hi:
        mid = (lo + hi) // 2
        if prober.fails(disabled=disabled, unroll_factor=factors[mid]):
            failing = factors[mid]
            hi = mid - 1
        else:
            lo = mid + 1
    return failing


def reduce_source(
    source: str,
    predicate: Callable[[str], bool],
    progress: Optional[Callable[[str], None]] = None,
) -> str:
    """Greedy line-chunk reduction: keep dropping the largest chunk whose
    removal still satisfies ``predicate`` until nothing more drops."""
    lines = source.splitlines()
    shrunk = True
    while shrunk:
        shrunk = False
        size = max(1, len(lines) // 2)
        while size >= 1:
            start = 0
            while start < len(lines):
                trial = lines[:start] + lines[start + size:]
                text = "\n".join(trial) + "\n"
                # Cheap pre-filter: wildly unbalanced braces cannot parse.
                if text.count("{") == text.count("}") and predicate(text):
                    lines = trial
                    shrunk = True
                    if progress:
                        progress(f"reduced to {len(lines)} lines")
                else:
                    start += size
            size //= 2
    return "\n".join(lines) + "\n"


def bisect_bundle(
    bundle: Bundle,
    reduce: bool = True,
    progress: Optional[Callable[[str], None]] = None,
) -> BisectResult:
    """Pin the minimal failing pass set (and unroll factor), then shrink
    the source.  Returns a :class:`BisectResult`; ``culprit`` is empty
    only when the bundle's failure no longer reproduces at all."""
    prober = _Prober(bundle)
    result = BisectResult(culprit=[])
    say = progress or (lambda _msg: None)

    if not prober.fails():
        result.attempts = prober.attempts
        result.log.append("failure does not reproduce from the bundle")
        return result
    say(f"failure reproduces: {'/'.join(bundle.signature)}")

    def still_fails(enabled: Sequence[str]) -> bool:
        disabled = tuple(s for s in OPTIONAL_STAGES if s not in enabled)
        return prober.fails(disabled=disabled)

    culprit = _minimize_stages(OPTIONAL_STAGES, still_fails)
    if not culprit:
        # Survives with every optional stage disabled: the failure lives
        # in a mandatory stage (frontend/lower) — report the bundle's own.
        culprit = [bundle.pass_name]
    result.culprit = culprit
    say(f"culprit pass set: {', '.join(culprit)}")

    disabled = tuple(s for s in OPTIONAL_STAGES if s not in culprit)
    if "unroll" in culprit:
        config = config_from_bundle(bundle)
        upper = config.unroll_factor or 8
        result.unroll_factor = _minimize_unroll(prober, disabled, upper)
        if result.unroll_factor is not None:
            say(f"smallest failing unroll factor: {result.unroll_factor}")

    if reduce:
        result.original_lines = len(bundle.source.splitlines())
        reduced = reduce_source(
            bundle.source,
            lambda text: prober.fails(source=text, disabled=disabled),
            progress=progress,
        )
        result.reduced_source = reduced
        result.reduced_lines = len(reduced.splitlines())
        say(
            f"source reduced {result.original_lines} -> "
            f"{result.reduced_lines} lines"
        )

    result.attempts = prober.attempts
    return result
