"""Reproducer bundles: one directory per recovered compilation failure.

A bundle is everything needed to replay a pass failure on another
machine, months later::

    repro_crash_1a2b3c4d5e6f/
        manifest.json     machine, full PipelineConfig, failing pass,
                          fault plan, git SHA, python version, timestamps
        source.c          the MiniC translation unit
        pre_pass.rtl      module RTL immediately before the failing pass
        traceback.txt     the Python traceback (empty for miscompiles)
        README.txt        the one-command replay/bisect instructions

Replay recompiles under ``on_pass_failure='skip'`` with the recorded
fault plan re-armed and reports whether the same (pass, kind, error)
signature recurs.  ``python -m repro bisect`` builds on this to shrink
the failure (see :mod:`repro.resilience.bisect`).
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
import time
from dataclasses import asdict, dataclass, fields
from pathlib import Path
from typing import Optional, Union

from repro.errors import ReproError
from repro.resilience.transaction import PassFailure

BUNDLE_SCHEMA = 1
BUNDLE_PREFIX = "repro_crash_"

#: How many bundles one crash directory keeps before the oldest are
#: evicted; REPRO_MAX_BUNDLES or --max-bundles override.
DEFAULT_MAX_BUNDLES = 20


def default_max_bundles() -> int:
    try:
        return max(1, int(os.environ.get(
            "REPRO_MAX_BUNDLES", DEFAULT_MAX_BUNDLES
        )))
    except ValueError:
        return DEFAULT_MAX_BUNDLES


def _bundle_age(path: Path) -> tuple:
    """Sort key: manifest creation time (mtime fallback), oldest first."""
    try:
        manifest = json.loads((path / "manifest.json").read_text())
        created = int(manifest.get("created_unix", 0))
    except (OSError, ValueError):
        created = 0
    try:
        mtime = path.stat().st_mtime
    except OSError:
        mtime = 0.0
    return (created, mtime, path.name)


def _rmtree_tolerant(path: Path) -> None:
    """``shutil.rmtree`` that shrugs at files vanishing underneath it.

    Two workers pruning the same crash directory race on every unlink:
    whoever loses sees ENOENT mid-walk.  That is success (the tree is
    going away either way), not an error.
    """
    import shutil

    def _ignore_missing(function, failed_path, exc_info):
        exc = exc_info if isinstance(exc_info, BaseException) else exc_info[1]
        if isinstance(exc, FileNotFoundError):
            return
        raise exc

    try:
        # 3.12 deprecates onerror= in favour of onexc=.
        import sys
        if sys.version_info >= (3, 12):
            shutil.rmtree(path, onexc=_ignore_missing)
        else:
            shutil.rmtree(path, onerror=_ignore_missing)
    except FileNotFoundError:
        pass


def prune_bundles(
    directory: Union[str, Path],
    max_bundles: Optional[int] = None,
) -> list:
    """Evict oldest-first until at most ``max_bundles`` bundles remain.

    Returns the paths removed.  Unbounded crash directories are a real
    operational hazard (a crash-looping service writes a bundle per
    recovered failure); the cap keeps disk usage bounded while always
    retaining the newest reproducers.

    Safe under concurrent pruners: every fleet worker prunes after every
    bundle write, so two prunes routinely target the same victim.  The
    walk tolerates ENOENT at every step and a bundle only counts as
    *removed by us* if it is actually gone afterwards.
    """
    if max_bundles is None:
        max_bundles = default_max_bundles()
    directory = Path(directory)
    if not directory.is_dir():
        return []
    bundles = sorted(
        (p for p in directory.glob(f"{BUNDLE_PREFIX}*") if p.is_dir()),
        key=_bundle_age,
    )
    removed = []
    for path in bundles[: max(0, len(bundles) - max_bundles)]:
        try:
            _rmtree_tolerant(path)
        except OSError:
            pass  # eviction is best-effort, never a crash
        if not path.exists():
            removed.append(str(path))
    return removed


def _git_sha() -> str:
    """The repository HEAD, or 'unknown' outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except OSError:
        pass
    return "unknown"


def failure_hash(
    source: str, machine_name: str, config_json: str, failure: PassFailure
) -> str:
    """Stable 12-hex identity of one failure (names the bundle dir)."""
    blob = "\x00".join(
        (
            source,
            machine_name,
            config_json,
            failure.pass_name,
            failure.kind,
            failure.error_type,
            failure.injected,
        )
    )
    return hashlib.sha256(blob.encode()).hexdigest()[:12]


def write_bundle(
    failure: PassFailure,
    source: str,
    machine_name: str,
    config,
    directory: Union[str, Path] = ".",
    faults: str = "",
    max_bundles: Optional[int] = None,
) -> str:
    """Serialize one recovered failure; returns the bundle path.

    Idempotent: the directory name is a hash of the failure identity, so
    re-recovering the same failure reuses the existing bundle.  After a
    new bundle is written the directory is pruned to ``max_bundles``
    (``REPRO_MAX_BUNDLES``, default 20), oldest-first.
    """
    config_dict = asdict(config) if config is not None else {}
    config_json = json.dumps(config_dict, sort_keys=True)
    digest = failure_hash(source, machine_name, config_json, failure)
    bundle = Path(directory) / f"{BUNDLE_PREFIX}{digest}"
    if (bundle / "manifest.json").exists():
        return str(bundle)
    bundle.mkdir(parents=True, exist_ok=True)

    manifest = {
        "schema": BUNDLE_SCHEMA,
        "machine": machine_name,
        "config": config_dict,
        "pass": failure.pass_name,
        "function": failure.function,
        "kind": failure.kind,
        "error_type": failure.error_type,
        "message": failure.message,
        "invocation": failure.invocation,
        "injected": failure.injected,
        "faults": faults,
        "git_sha": _git_sha(),
        "python": platform.python_version(),
        "created_unix": int(time.time()),
    }
    (bundle / "source.c").write_text(source)
    (bundle / "pre_pass.rtl").write_text(failure.pre_pass_rtl)
    (bundle / "traceback.txt").write_text(failure.traceback)
    (bundle / "README.txt").write_text(
        f"Recovered compilation failure: {failure.describe()}\n"
        "\n"
        "Replay (expects the same failure to recur):\n"
        f"    python -m repro replay {bundle.name}\n"
        "\n"
        "Pin the failing pass set and shrink the source:\n"
        f"    python -m repro bisect {bundle.name}\n"
    )
    tmp = bundle / "manifest.json.tmp"
    with open(tmp, "w") as handle:
        json.dump(manifest, handle, indent=1, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, bundle / "manifest.json")
    prune_bundles(directory, max_bundles)
    return str(bundle)


def write_quarantine_bundle(
    request: dict,
    reason: str,
    directory: Union[str, Path] = ".",
    worker: int = -1,
    max_bundles: Optional[int] = None,
) -> str:
    """Serialize a request that repeatedly killed fleet workers.

    A quarantined request has no :class:`PassFailure` — the process died
    before Python could hand us one — so the bundle records the raw
    request (``request.json``), its source, and the supervisor's account
    of what happened.  Replay instructions still apply: the source
    compiles standalone, which is exactly how the investigation starts.
    """
    source = str(request.get("source", ""))
    blob = "\x00".join((
        source,
        str(request.get("machine", "")),
        str(request.get("config", "")),
        reason,
    ))
    digest = hashlib.sha256(blob.encode()).hexdigest()[:12]
    bundle = Path(directory) / f"{BUNDLE_PREFIX}{digest}"
    if (bundle / "manifest.json").exists():
        return str(bundle)
    bundle.mkdir(parents=True, exist_ok=True)

    manifest = {
        "schema": BUNDLE_SCHEMA,
        "kind": "quarantine",
        "machine": str(request.get("machine", "")),
        "config": {},
        "config_name": str(request.get("config", "")),
        "pass": "",
        "function": "",
        "error_type": "QuarantinedRequest",
        "message": reason,
        "invocation": 0,
        "injected": "",
        "worker": worker,
        "faults": str(request.get("faults", "") or ""),
        "git_sha": _git_sha(),
        "python": platform.python_version(),
        "created_unix": int(time.time()),
    }
    (bundle / "source.c").write_text(source)
    (bundle / "request.json").write_text(
        json.dumps(request, indent=1, sort_keys=True, default=str) + "\n"
    )
    (bundle / "README.txt").write_text(
        f"Quarantined service request: {reason}\n"
        "\n"
        "This request crashed its fleet worker more than once and was\n"
        "answered with a degraded local compile instead of a third try.\n"
        "\n"
        "Reproduce the crash by compiling the bundled source directly:\n"
        f"    python -m repro compile {bundle.name}/source.c"
        " --machine "
        f"{request.get('machine', 'alpha')}\n"
    )
    tmp = bundle / "manifest.json.tmp"
    with open(tmp, "w") as handle:
        json.dump(manifest, handle, indent=1, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, bundle / "manifest.json")
    prune_bundles(directory, max_bundles)
    return str(bundle)


@dataclass
class Bundle:
    """A loaded reproducer bundle."""

    path: str
    manifest: dict
    source: str
    pre_pass_rtl: str
    traceback: str

    @property
    def machine(self) -> str:
        return self.manifest["machine"]

    @property
    def pass_name(self) -> str:
        return self.manifest["pass"]

    @property
    def signature(self) -> tuple:
        return (
            self.manifest["pass"],
            self.manifest["kind"],
            self.manifest["error_type"],
        )


def load_bundle(path: Union[str, Path]) -> Bundle:
    bundle = Path(path)
    manifest_path = bundle / "manifest.json"
    try:
        manifest = json.loads(manifest_path.read_text())
    except FileNotFoundError:
        raise ReproError(f"{bundle}: not a crash bundle (no manifest.json)")
    except ValueError as exc:
        raise ReproError(f"{manifest_path}: corrupt manifest: {exc}")
    if manifest.get("schema") != BUNDLE_SCHEMA:
        raise ReproError(
            f"{bundle}: unsupported bundle schema "
            f"{manifest.get('schema')!r} (want {BUNDLE_SCHEMA})"
        )
    def _read(name: str) -> str:
        try:
            return (bundle / name).read_text()
        except OSError:
            return ""
    return Bundle(
        path=str(bundle),
        manifest=manifest,
        source=_read("source.c"),
        pre_pass_rtl=_read("pre_pass.rtl"),
        traceback=_read("traceback.txt"),
    )


def config_from_bundle(bundle: Bundle, **overrides):
    """Rebuild the bundle's :class:`PipelineConfig` (tolerating fields
    added or removed since the bundle was written)."""
    from repro.pipeline import PipelineConfig

    known = {f.name for f in fields(PipelineConfig)}
    data = {
        key: value
        for key, value in bundle.manifest.get("config", {}).items()
        if key in known
    }
    if isinstance(data.get("disabled_passes"), list):
        data["disabled_passes"] = tuple(data["disabled_passes"])
    data.update(overrides)
    return PipelineConfig(**data)


@dataclass
class ReplayResult:
    """Outcome of re-running a bundle's compilation."""

    reproduced: bool
    failure: Optional[PassFailure]
    program: Optional[object]     # CompiledProgram
    error: str = ""

    def describe(self) -> str:
        if self.reproduced:
            return f"reproduced: {self.failure.describe()}"
        if self.error:
            return f"did not reproduce (compilation error: {self.error})"
        return "did not reproduce (compilation recovered nothing matching)"


def replay_bundle(
    bundle: Union[str, Path, Bundle],
    source: Optional[str] = None,
) -> ReplayResult:
    """Recompile the bundle's source and look for the same failure.

    The compilation runs under ``on_pass_failure='skip'`` with the
    recorded fault plan re-armed, so an organic crash *or* an injected
    one recurs as a recovered :class:`PassFailure` we can match on.
    """
    from repro.pipeline import compile_minic
    from repro.resilience.faults import FaultPlan

    if not isinstance(bundle, Bundle):
        bundle = load_bundle(bundle)
    config = config_from_bundle(
        bundle, name="replay", on_pass_failure="skip"
    )
    faults = FaultPlan.parse(bundle.manifest.get("faults"))
    want = bundle.signature
    try:
        program = compile_minic(
            source if source is not None else bundle.source,
            bundle.machine,
            config,
            faults=faults,
        )
    except ReproError as exc:
        return ReplayResult(False, None, None, error=str(exc))
    for failure in program.pass_failures:
        if failure.signature == want:
            return ReplayResult(True, failure, program)
    return ReplayResult(False, None, program)
