"""Exception hierarchy for the repro package.

Every error raised by the compiler, the analyses, or the simulator derives
from :class:`ReproError` so callers can catch the whole family at once.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class IRError(ReproError):
    """Malformed IR: verifier failures, bad operands, unknown opcodes.

    Attributes:
        location: optional structured location of the problem (the
            sanitizer's ``Location``), so the verifier and the lint
            checkers report positions uniformly.
    """

    def __init__(self, message: str, location: object = None):
        super().__init__(message)
        self.location = location


class LintError(ReproError):
    """One or more sanitizer findings of error severity.

    Carries the list of :class:`repro.sanitize.diagnostics.Diagnostic`
    values so callers can inspect findings programmatically; the message
    is the rendered single-line form of each, newline-joined.
    """

    def __init__(self, diagnostics):
        self.diagnostics = list(diagnostics)
        rendered = "\n".join(
            d.render() if hasattr(d, "render") else str(d)
            for d in self.diagnostics
        )
        count = len(self.diagnostics)
        super().__init__(
            f"{count} lint error(s):\n{rendered}" if rendered
            else "lint errors"
        )


class ParseError(ReproError):
    """Syntax error in MiniC source or in the RTL text format.

    Attributes:
        line: 1-based line number of the offending token, if known.
        column: 1-based column of the offending token, if known.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        if line:
            message = f"{line}:{column}: {message}"
        super().__init__(message)
        self.line = line
        self.column = column


class SemanticError(ReproError):
    """Type errors and other semantic violations in MiniC source."""


class LoweringError(ReproError):
    """A machine lowering could not legalize an instruction."""


class SimulationError(ReproError):
    """Runtime faults in the simulator (bad address, alignment trap, ...)."""


class SimulationTimeout(SimulationError):
    """The simulator exceeded its step budget (a stalled or diverging
    program).

    Carries the structured context a crash bundle or a watchdog needs:
    how many steps had executed, the configured limit, and the program
    counter (function/block) at which the budget ran out.
    """

    def __init__(
        self,
        steps: int,
        limit: "int | None" = None,
        function: str = "",
        block: str = "",
    ):
        at = f" in {function}" if function else ""
        if function and block:
            at = f" in {function}/{block}"
        limit_text = (
            f"the {limit}-step limit" if limit is not None else "its step limit"
        )
        super().__init__(
            f"simulation exceeded {limit_text} after {steps} steps{at}"
        )
        self.steps = steps
        self.limit = limit
        self.function = function
        self.block = block


class DeadlineExceeded(ReproError):
    """A compile or simulate request outlived its wall-clock budget.

    Raised by the cancellation points the pipeline checks between
    stages (and by the simulator's per-block deadline hook), so a
    stuck request dies at the next pass boundary instead of holding a
    worker forever.
    """

    def __init__(self, budget: float, elapsed: float, where: str = ""):
        at = f" at {where}" if where else ""
        super().__init__(
            f"deadline of {budget:g}s exceeded after {elapsed:.3f}s{at}"
        )
        self.budget = budget
        self.elapsed = elapsed
        self.where = where


class FaultInjected(ReproError):
    """An artificial failure raised by the fault-injection harness.

    Only :mod:`repro.resilience.faults` raises this; seeing it escape a
    compilation means the recovery machinery failed to contain a fault it
    was explicitly told about.
    """

    def __init__(self, site: str, kind: str = "raise"):
        super().__init__(f"injected {kind!r} fault at site {site!r}")
        self.site = site
        self.kind = kind


class WorkerCrashed(ReproError):
    """A fleet worker process died while holding a request.

    Raised inside the fleet supervisor when a forwarded request's
    connection is severed mid-flight (the worker exited, was signalled,
    or was killed by the hang detector).  Transient at fleet level: the
    supervisor restarts the worker and requeues the request once.
    """

    def __init__(self, worker: int, detail: str = ""):
        at = f": {detail}" if detail else ""
        super().__init__(f"worker {worker} crashed mid-request{at}")
        self.worker = worker
        self.detail = detail


class QuarantinedRequest(ReproError):
    """A request took down its worker more than once and was isolated.

    The fleet answers such a request with a degraded local compile (plus
    a crash bundle) instead of feeding it to a third worker; this error
    is raised only when even the degraded local path cannot serve it.
    """

    def __init__(self, request_id, reason: str = ""):
        why = f": {reason}" if reason else ""
        super().__init__(
            f"request {request_id!r} quarantined after repeated worker "
            f"crashes{why}"
        )
        self.request_id = request_id
        self.reason = reason


class AlignmentTrap(SimulationError):
    """An aligned memory access was attempted at an unaligned address.

    Real hardware (e.g. the DEC Alpha) traps on such accesses; the simulator
    mirrors that so safety bugs in the coalescer surface as hard failures
    instead of silently wrong data.
    """

    def __init__(self, address: int, width: int):
        super().__init__(
            f"unaligned {width}-byte access at address {address:#x}"
        )
        self.address = address
        self.width = width


class PassError(ReproError):
    """An optimization pass was applied in an unsupported situation."""
