"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``compile FILE`` — compile a MiniC file and print the final RTL.
* ``run FILE --entry F --args ...`` — compile, simulate, report cycles.
* ``lint FILE`` — run the sanitizer checkers over a MiniC or RTL file.
* ``tables`` — regenerate the paper's tables.
* ``bench`` — run the benchmark matrix in parallel, persist a
  ``BENCH_<tag>.json`` baseline, and/or gate against one.
* ``machines`` — list the supported machine models.

Examples::

    python -m repro compile kernel.c --machine alpha --config coalesce-all
    python -m repro run kernel.c --entry dotproduct --array a:2:1,2,3,4 \\
        --array b:2:5,6,7,8 --args a b 4
    python -m repro lint kernel.c --config coalesce-all --differential
    python -m repro lint hand_written.rtl --checks coalesce-safety
    python -m repro tables --machine alpha --size 48
    python -m repro bench --jobs 4 --tag nightly
    python -m repro bench --quick --compare BENCH_seed.json
"""

from __future__ import annotations

import argparse
import sys

from repro import MACHINE_NAMES, PRESETS, compile_minic
from repro.ir import format_module


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--machine", default="alpha", choices=sorted(MACHINE_NAMES),
        help="target machine model",
    )
    parser.add_argument(
        "--config", default="vpo", choices=sorted(PRESETS),
        help="pipeline configuration",
    )
    parser.add_argument(
        "--unroll-factor", type=int, default=None,
        help="override the unroll heuristic",
    )
    parser.add_argument(
        "--force-coalesce", action="store_true",
        help="bypass the profitability analysis",
    )
    parser.add_argument(
        "--unaligned-loads", action="store_true",
        help="use unaligned wide loads (no alignment checks; Alpha only)",
    )
    parser.add_argument(
        "--regalloc", action="store_true",
        help="bind virtual registers to the machine register file",
    )


def _compile_from_args(args, **extra) -> object:
    with open(args.file) as handle:
        source = handle.read()
    return compile_minic(
        source,
        args.machine,
        args.config,
        unroll_factor=args.unroll_factor,
        force_coalesce=args.force_coalesce,
        unaligned_loads=args.unaligned_loads,
        regalloc=args.regalloc,
        **extra,
    )


def cmd_compile(args) -> int:
    program = _compile_from_args(args)
    print(format_module(program.module))
    for report in program.coalesce_reports:
        if report.runs_found:
            print(f"# {report}", file=sys.stderr)
    return 0


def cmd_run(args) -> int:
    program = _compile_from_args(args)
    sim = program.simulator()
    addresses = {}
    for spec in args.array or []:
        name, width, values = spec.split(":", 2)
        width = int(width)
        values = [int(v, 0) for v in values.split(",")] if values else []
        address = sim.alloc_array(
            name, size=max(len(values), 1) * width
        )
        sim.write_words(address, values, width)
        addresses[name] = address

    call_args = []
    for arg in args.args or []:
        if arg in addresses:
            call_args.append(addresses[arg])
        else:
            call_args.append(int(arg, 0))
    result = sim.call(args.entry, *call_args)
    if result is not None:
        bits = program.machine.word_bits
        if result >= 1 << (bits - 1):
            result -= 1 << bits
        print(f"result: {result}")
    report = sim.report()
    print(f"cycles: {report.total_cycles}")
    print(f"instructions: {report.instr_count}")
    print(f"memory references: {report.memory_accesses}")
    for name in addresses:
        if args.dump:
            width = int(
                next(s for s in args.array if s.startswith(name + ":"))
                .split(":")[1]
            )
            count = min(args.dump, 64)
            print(f"{name}[0:{count}] =",
                  sim.read_words(addresses[name], count, width))
    return 0


def cmd_lint(args) -> int:
    from repro import ReproError, get_machine
    from repro.sanitize import DiagnosticSink, lint_module

    checks = (
        [c.strip() for c in args.checks.split(",") if c.strip()]
        if args.checks else None
    )
    machine = get_machine(args.machine)
    sink = DiagnosticSink()
    stats = {}

    try:
        if args.file.endswith(".rtl"):
            # Hand-written RTL: verify structurally (into the sink), then
            # lint; --differential runs the cleanup bundle under the
            # differential pass-sanitizer.
            from repro.ir.parser import parse_module
            from repro.ir.verifier import verify_module
            from repro.opt.pass_manager import (
                PassContext, PassManager, cleanup,
            )

            with open(args.file) as handle:
                module = parse_module(handle.read(), name=args.file)
            verify_module(module, sink=sink)
            if not sink.has_errors:
                lint_module(module, machine, checks=checks, sink=sink)
                if args.differential:
                    ctx = PassContext(
                        machine, sink=sink, differential=True
                    )
                    manager = PassManager(ctx).add("cleanup", cleanup)
                    manager.run(module)
                    stats = ctx.stats
        else:
            program = _compile_from_args(
                args, differential=args.differential
            )
            sink.extend(program.diagnostics)
            lint_module(
                program.module, program.machine,
                checks=checks, sink=sink,
            )
            stats = program.pass_stats
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    print(sink.render_grouped())
    if args.stats and stats:
        print()
        print("pass statistics:")
        for name in sorted(stats):
            entry = stats[name]
            print(
                f"  {name:20s} runs {entry['runs']:3d}  "
                f"changed {entry['changed']:3d}  "
                f"{entry['seconds'] * 1000:8.1f} ms"
            )
    return 1 if sink.has_errors else 0


def cmd_tables(args) -> int:
    from repro.bench.tables import format_table, format_table1, table_rows

    if args.machine_filter in (None, "table1"):
        print(format_table1())
        print()
    machines = (
        [args.machine_filter]
        if args.machine_filter in MACHINE_NAMES
        else sorted(MACHINE_NAMES)
    )
    for machine in machines:
        rows = table_rows(machine, width=args.size, height=args.size)
        print(format_table(machine, rows))
        print()
    return 0


def cmd_bench(args) -> int:
    from repro.bench import runner
    from repro.errors import ReproError

    if args.quick:
        size = args.size if args.size is not None else runner.QUICK_SIZE
        machines = list(runner.QUICK_MACHINES)
    else:
        size = args.size if args.size is not None else runner.FULL_SIZE
        machines = sorted(MACHINE_NAMES)
    if args.machines and args.machines != "all":
        machines = [m.strip() for m in args.machines.split(",")]
        unknown = set(machines) - set(MACHINE_NAMES)
        if unknown:
            print(
                f"error: unknown machine(s) {', '.join(sorted(unknown))}",
                file=sys.stderr,
            )
            return 2
    programs = list(runner.ALL_PROGRAMS)
    if args.programs:
        programs = [p.strip() for p in args.programs.split(",")]
    variants = list(runner.COLUMNS)
    if args.variants:
        variants = [v.strip() for v in args.variants.split(",")]
        unknown = set(variants) - set(runner.COLUMNS)
        if unknown:
            print(
                f"error: unknown variant(s) {', '.join(sorted(unknown))}",
                file=sys.stderr,
            )
            return 2

    jobs = args.jobs if args.jobs is not None else runner.default_jobs()
    total = len(programs) * len(machines) * len(variants)
    print(
        f"bench: {len(programs)} programs x {len(machines)} machines x "
        f"{len(variants)} variants = {total} records "
        f"({size}x{size} images, {jobs} job{'s' if jobs != 1 else ''})",
        file=sys.stderr,
    )

    done = []

    def progress(record):
        done.append(record)
        flag = "" if record["output_ok"] else "  [OUTPUT MISMATCH]"
        cached = " (cached)" if record["compile_cache_hit"] else ""
        print(
            f"  [{len(done):3d}/{total}] {record['program']}/"
            f"{record['machine']}/{record['variant']}: "
            f"{record['cycles']} cycles in "
            f"{record['wall_seconds']:.2f}s{cached}{flag}",
            file=sys.stderr,
        )

    try:
        records = runner.run_matrix(
            programs=programs, machines=machines, variants=variants,
            width=size, jobs=jobs, progress=progress,
        )
    except (ReproError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    out = args.out or f"BENCH_{args.tag}.json"
    document = runner.make_run_document(
        records, tag=args.tag, jobs=jobs, width=size,
    )
    runner.save_run(document, out)
    print(f"wrote {len(records)} records to {out}", file=sys.stderr)

    if args.stats:
        print(runner.format_stats(records))

    bad_output = [r for r in records if not r["output_ok"]]
    if bad_output:
        print(
            f"error: {len(bad_output)} records produced wrong output",
            file=sys.stderr,
        )
        return 1

    if args.compare:
        tolerance = (
            args.tolerance if args.tolerance is not None
            else runner.default_tolerance()
        )
        try:
            baseline = runner.load_run(args.compare)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        rows = runner.compare_runs(records, baseline, tolerance)
        print(runner.format_compare_table(rows, tolerance))
        if not runner.gate_passed(rows):
            return 1
    return 0


def cmd_machines(args) -> int:
    from repro import get_machine

    for name in sorted(MACHINE_NAMES):
        machine = get_machine(name)
        traits = []
        if not machine.supports_load(1):
            traits.append("no narrow loads/stores")
        if machine.has_unaligned_wide:
            traits.append("unaligned wide access")
        if not machine.has_insert:
            traits.append("no field insert")
        if not machine.pipelined:
            traits.append("non-pipelined")
        print(
            f"{name:8s} {machine.word_bytes * 8}-bit {machine.endian}-"
            f"endian, issue {machine.issue_width}, "
            f"{machine.num_registers} regs"
            + (f" ({', '.join(traits)})" if traits else "")
        )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Memory access coalescing (PLDI 1994) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_compile = sub.add_parser("compile", help="compile and print RTL")
    p_compile.add_argument("file")
    _add_common(p_compile)
    p_compile.set_defaults(func=cmd_compile)

    p_run = sub.add_parser("run", help="compile and simulate")
    p_run.add_argument("file")
    p_run.add_argument("--entry", required=True)
    p_run.add_argument(
        "--array", action="append",
        help="stage an array: NAME:WIDTH:v1,v2,...",
    )
    p_run.add_argument(
        "--args", nargs="*",
        help="call arguments (array names resolve to addresses)",
    )
    p_run.add_argument("--dump", type=int, default=0,
                       help="dump first N elements of each array after")
    _add_common(p_run)
    p_run.set_defaults(func=cmd_run)

    p_lint = sub.add_parser(
        "lint", help="run the sanitizer checkers over a file"
    )
    p_lint.add_argument("file", help="a MiniC .c file or an .rtl file")
    p_lint.add_argument(
        "--checks", default=None,
        help="comma-separated checker ids (default: all)",
    )
    p_lint.add_argument(
        "--differential", action="store_true",
        help="re-execute each function before/after every pass and "
             "report the pass on behaviour divergence",
    )
    p_lint.add_argument(
        "--stats", action="store_true",
        help="print per-pass changed/timing statistics",
    )
    _add_common(p_lint)
    p_lint.set_defaults(func=cmd_lint)

    p_tables = sub.add_parser("tables", help="regenerate paper tables")
    p_tables.add_argument("--machine", dest="machine_filter", default=None)
    p_tables.add_argument("--size", type=int, default=48)
    p_tables.set_defaults(func=cmd_tables)

    p_bench = sub.add_parser(
        "bench",
        help="run the benchmark matrix, persist/compare baselines",
    )
    p_bench.add_argument(
        "--programs", default=None,
        help="comma-separated benchmark names (default: all)",
    )
    p_bench.add_argument(
        "--machines", default=None,
        help="comma-separated machine names or 'all'",
    )
    p_bench.add_argument(
        "--variants", default=None,
        help="comma-separated column names "
             "(cc,vpo,coalesce-loads,coalesce-all)",
    )
    p_bench.add_argument(
        "--size", type=int, default=None,
        help="image width=height (default 48; 16 with --quick)",
    )
    p_bench.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default: $BENCH_JOBS or 1)",
    )
    p_bench.add_argument(
        "--quick", action="store_true",
        help="the CI smoke tier: alpha only, 16x16 images",
    )
    p_bench.add_argument(
        "--tag", default="run",
        help="baseline tag; the run is written to BENCH_<tag>.json",
    )
    p_bench.add_argument(
        "--out", default=None,
        help="output path (overrides the --tag naming)",
    )
    p_bench.add_argument(
        "--compare", default=None, metavar="BASELINE.json",
        help="diff against a stored baseline; non-zero exit on "
             "regression past the tolerance",
    )
    p_bench.add_argument(
        "--tolerance", type=float, default=None,
        help="allowed cycle growth in percent "
             "(default: $BENCH_TOLERANCE or 2.0)",
    )
    p_bench.add_argument(
        "--stats", action="store_true",
        help="print aggregated per-phase compile/simulate timings",
    )
    p_bench.set_defaults(func=cmd_bench)

    p_machines = sub.add_parser("machines", help="list machine models")
    p_machines.set_defaults(func=cmd_machines)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
