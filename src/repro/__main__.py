"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``compile FILE`` — compile a MiniC file and print the final RTL.
* ``run FILE --entry F --args ...`` — compile, simulate, report cycles.
* ``lint FILE`` — run the sanitizer checkers over a MiniC or RTL file.
* ``tables`` — regenerate the paper's tables.
* ``bench`` — run the benchmark matrix in parallel, persist a
  ``BENCH_<tag>.json`` baseline, and/or gate against one.
* ``machines`` — list the supported machine models.
* ``replay BUNDLE`` — re-run a crash bundle's compilation and check the
  recorded failure recurs.
* ``bisect BUNDLE`` — pin the minimal failing pass set and shrink the
  bundle's source, bugpoint-style.
* ``chaos FILES...`` — inject one fault into every pipeline stage in
  turn and verify each compilation recovers and still behaves like the
  unoptimized baseline.
* ``serve`` — run the concurrent compile server on a local socket
  (bounded queue, deadlines, circuit breakers, degraded fallbacks).
* ``submit FILE`` — send a compile (or, with ``--entry``, simulate)
  request to a running server, retrying retryable failures.
* ``status`` — print a running server's queue/breaker/cache state;
  ``--shutdown`` asks it to drain and exit.
* ``cache`` — inspect (``--stats``) or empty (``--clear``) the disk
  compile cache.

``replay``/``bisect``/``chaos`` take ``--json`` for machine-readable
output; all three exit 0 on success, 1 when the check fails (did not
reproduce / nothing pinned / problems found), 2 on bad input.

Examples::

    python -m repro compile kernel.c --machine alpha --config coalesce-all
    python -m repro run kernel.c --entry dotproduct --array a:2:1,2,3,4 \\
        --array b:2:5,6,7,8 --args a b 4
    python -m repro lint kernel.c --config coalesce-all --differential
    python -m repro lint hand_written.rtl --checks coalesce-safety
    python -m repro tables --machine alpha --size 48
    python -m repro bench --jobs 4 --tag nightly
    python -m repro bench --quick --compare BENCH_seed.json
    python -m repro compile kernel.c --inject unroll=raise \\
        --on-pass-failure skip --crash-dir ./crashes
    python -m repro replay crashes/repro_crash_1a2b3c4d5e6f
    python -m repro bisect crashes/repro_crash_1a2b3c4d5e6f
    python -m repro chaos examples/*.c --seed 1234
    python -m repro serve --workers 4 --queue-limit 32
    python -m repro submit kernel.c --config coalesce-all --deadline 10
    python -m repro submit kernel.c --entry dot --array a:2:1,2,3,4 \\
        --array b:2:5,6,7,8 --args a b 4
    python -m repro status --json
    python -m repro cache --stats
"""

from __future__ import annotations

import argparse
import sys

from repro import MACHINE_NAMES, PRESETS, compile_minic
from repro.ir import format_module


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--machine", default="alpha", choices=sorted(MACHINE_NAMES),
        help="target machine model",
    )
    parser.add_argument(
        "--config", default="vpo", choices=sorted(PRESETS),
        help="pipeline configuration",
    )
    parser.add_argument(
        "--unroll-factor", type=int, default=None,
        help="override the unroll heuristic",
    )
    parser.add_argument(
        "--force-coalesce", action="store_true",
        help="bypass the profitability analysis",
    )
    parser.add_argument(
        "--unaligned-loads", action="store_true",
        help="use unaligned wide loads (no alignment checks; Alpha only)",
    )
    parser.add_argument(
        "--regalloc", action="store_true",
        help="bind virtual registers to the machine register file",
    )
    parser.add_argument(
        "--on-pass-failure", default=None,
        choices=("raise", "skip", "fallback"),
        help="recovery policy when a pass crashes/corrupts/miscompiles: "
             "raise (default), skip (roll back and continue), fallback "
             "(roll back and disable the pass)",
    )
    parser.add_argument(
        "--inject", default=None, metavar="PLAN",
        help="fault-injection plan, e.g. 'unroll=raise,coalesce=corrupt@2'"
             " or 'seed=42,rate=0.25,kinds=raise|corrupt'",
    )
    parser.add_argument(
        "--crash-dir", default=None, metavar="DIR",
        help="write a replayable repro_crash_<hash>/ bundle for every "
             "recovered pass failure into DIR",
    )
    parser.add_argument(
        "--max-bundles", type=int, default=None, metavar="N",
        help="cap the crash directory at N bundles, evicting oldest "
             "first (default: $REPRO_MAX_BUNDLES or 20)",
    )


def _add_sim_backend(parser: argparse.ArgumentParser) -> None:
    from repro.sim import SIM_BACKENDS

    parser.add_argument(
        "--sim-backend", default=None, choices=SIM_BACKENDS,
        help="simulator backend: interp (reference) or compiled "
             "(block-compiling, bit-identical counts; default: "
             "$REPRO_SIM_BACKEND or interp)",
    )


def _compile_from_args(args, **extra) -> object:
    from repro.resilience.faults import FaultPlan

    with open(args.file) as handle:
        source = handle.read()
    if getattr(args, "on_pass_failure", None) is not None:
        extra.setdefault("on_pass_failure", args.on_pass_failure)
    program = compile_minic(
        source,
        args.machine,
        args.config,
        faults=FaultPlan.parse(getattr(args, "inject", None)),
        crash_dir=getattr(args, "crash_dir", None),
        max_bundles=getattr(args, "max_bundles", None),
        unroll_factor=args.unroll_factor,
        force_coalesce=args.force_coalesce,
        unaligned_loads=args.unaligned_loads,
        regalloc=args.regalloc,
        **extra,
    )
    for failure in program.pass_failures:
        where = f" [{failure.bundle}]" if failure.bundle else ""
        print(f"recovered: {failure.describe()}{where}", file=sys.stderr)
    return program


def cmd_compile(args) -> int:
    program = _compile_from_args(args)
    print(format_module(program.module))
    for report in program.coalesce_reports:
        if report.runs_found:
            print(f"# {report}", file=sys.stderr)
    return 0


def cmd_run(args) -> int:
    program = _compile_from_args(args)
    sim = program.simulator(
        max_steps=args.max_steps, backend=args.sim_backend
    )
    addresses = {}
    for spec in args.array or []:
        name, width, values = spec.split(":", 2)
        width = int(width)
        values = [int(v, 0) for v in values.split(",")] if values else []
        address = sim.alloc_array(
            name, size=max(len(values), 1) * width
        )
        sim.write_words(address, values, width)
        addresses[name] = address

    call_args = []
    for arg in args.args or []:
        if arg in addresses:
            call_args.append(addresses[arg])
        else:
            call_args.append(int(arg, 0))
    result = sim.call(args.entry, *call_args)
    if result is not None:
        bits = program.machine.word_bits
        if result >= 1 << (bits - 1):
            result -= 1 << bits
        print(f"result: {result}")
    report = sim.report()
    print(f"cycles: {report.total_cycles}")
    print(f"instructions: {report.instr_count}")
    print(f"memory references: {report.memory_accesses}")
    for name in addresses:
        if args.dump:
            width = int(
                next(s for s in args.array if s.startswith(name + ":"))
                .split(":")[1]
            )
            count = min(args.dump, 64)
            print(f"{name}[0:{count}] =",
                  sim.read_words(addresses[name], count, width))
    return 0


def cmd_lint(args) -> int:
    from repro import ReproError, get_machine
    from repro.sanitize import DiagnosticSink, lint_module

    checks = (
        [c.strip() for c in args.checks.split(",") if c.strip()]
        if args.checks else None
    )
    machine = get_machine(args.machine)
    sink = DiagnosticSink()
    stats = {}

    try:
        if args.file.endswith(".rtl"):
            # Hand-written RTL: verify structurally (into the sink), then
            # lint; --differential runs the cleanup bundle under the
            # differential pass-sanitizer.
            from repro.ir.parser import parse_module
            from repro.ir.verifier import verify_module
            from repro.opt.pass_manager import (
                PassContext, PassManager, cleanup,
            )

            with open(args.file) as handle:
                module = parse_module(handle.read(), name=args.file)
            verify_module(module, sink=sink)
            if not sink.has_errors:
                lint_module(module, machine, checks=checks, sink=sink)
                if args.differential:
                    ctx = PassContext(
                        machine, sink=sink, differential=True
                    )
                    manager = PassManager(ctx).add("cleanup", cleanup)
                    manager.run(module)
                    stats = ctx.stats
        else:
            program = _compile_from_args(
                args, differential=args.differential
            )
            sink.extend(program.diagnostics)
            lint_module(
                program.module, program.machine,
                checks=checks, sink=sink,
            )
            stats = program.pass_stats
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.json:
        import json

        payload = {
            "file": args.file,
            "machine": args.machine,
            "ok": not sink.has_errors,
            "counts": sink.counts(),
            "diagnostics": [
                {
                    "severity": d.severity,
                    "check": d.check,
                    "message": d.message,
                    "function": d.location.function if d.location else None,
                    "block": d.location.block if d.location else None,
                    "index": d.location.index if d.location else None,
                    "provenance": d.provenance,
                    "hint": d.hint,
                }
                for d in sink.sorted()
            ],
        }
        if args.stats and stats:
            payload["pass_stats"] = stats
        print(json.dumps(payload, indent=1, sort_keys=True))
        return 1 if sink.has_errors else 0

    print(sink.render_grouped())
    if args.stats and stats:
        print()
        print("pass statistics:")
        for name in sorted(stats):
            entry = stats[name]
            print(
                f"  {name:20s} runs {entry['runs']:3d}  "
                f"changed {entry['changed']:3d}  "
                f"{entry['seconds'] * 1000:8.1f} ms"
            )
    return 1 if sink.has_errors else 0


def cmd_tables(args) -> int:
    from repro.bench.tables import format_table, format_table1, table_rows

    if args.machine_filter in (None, "table1"):
        print(format_table1())
        print()
    machines = (
        [args.machine_filter]
        if args.machine_filter in MACHINE_NAMES
        else sorted(MACHINE_NAMES)
    )
    for machine in machines:
        rows = table_rows(machine, width=args.size, height=args.size)
        print(format_table(machine, rows))
        print()
    return 0


def cmd_bench(args) -> int:
    from repro.bench import runner
    from repro.errors import ReproError

    if args.quick:
        size = args.size if args.size is not None else runner.QUICK_SIZE
        machines = list(runner.QUICK_MACHINES)
    else:
        size = args.size if args.size is not None else runner.FULL_SIZE
        machines = sorted(MACHINE_NAMES)
    if args.machines and args.machines != "all":
        machines = [m.strip() for m in args.machines.split(",")]
        unknown = set(machines) - set(MACHINE_NAMES)
        if unknown:
            print(
                f"error: unknown machine(s) {', '.join(sorted(unknown))}",
                file=sys.stderr,
            )
            return 2
    programs = list(runner.ALL_PROGRAMS)
    if args.programs:
        programs = [p.strip() for p in args.programs.split(",")]
    variants = list(runner.COLUMNS)
    if args.variants:
        variants = [v.strip() for v in args.variants.split(",")]
        unknown = set(variants) - set(runner.COLUMNS)
        if unknown:
            print(
                f"error: unknown variant(s) {', '.join(sorted(unknown))}",
                file=sys.stderr,
            )
            return 2

    try:
        budgets = runner.parse_phase_budgets(args.phase_budget or [])
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    jobs = args.jobs if args.jobs is not None else runner.default_jobs()
    total = len(programs) * len(machines) * len(variants)
    print(
        f"bench: {len(programs)} programs x {len(machines)} machines x "
        f"{len(variants)} variants = {total} records "
        f"({size}x{size} images, {jobs} job{'s' if jobs != 1 else ''})",
        file=sys.stderr,
    )

    done = []

    def progress(record):
        done.append(record)
        flag = "" if record["output_ok"] else "  [OUTPUT MISMATCH]"
        cached = " (cached)" if record["compile_cache_hit"] else ""
        print(
            f"  [{len(done):3d}/{total}] {record['program']}/"
            f"{record['machine']}/{record['variant']}: "
            f"{record['cycles']} cycles in "
            f"{record['wall_seconds']:.2f}s{cached}{flag}",
            file=sys.stderr,
        )

    try:
        records = runner.run_matrix(
            programs=programs, machines=machines, variants=variants,
            width=size, jobs=jobs, progress=progress,
            cell_timeout=args.cell_timeout,
            sim_backend=args.sim_backend,
        )
    except (ReproError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    failed = [r for r in records if r.get("status", "ok") != "ok"]
    for record in failed:
        print(
            f"failed cell {record['program']}/{record['machine']}/"
            f"{record['variant']}: {record['error']}",
            file=sys.stderr,
        )

    out = args.out or f"BENCH_{args.tag}.json"
    document = runner.make_run_document(
        records, tag=args.tag, jobs=jobs, width=size,
    )
    runner.save_run(document, out)
    print(f"wrote {len(records)} records to {out}", file=sys.stderr)

    if args.stats:
        print(runner.format_stats(records))

    overruns = (
        runner.check_phase_budgets(records, budgets) if budgets else []
    )
    for overrun in overruns:
        print(f"phase budget: {overrun}", file=sys.stderr)

    rate_problems = (
        runner.check_sim_rate(records, args.min_sim_rate)
        if args.min_sim_rate else []
    )
    for problem in rate_problems:
        print(f"sim rate: {problem}", file=sys.stderr)

    bad_output = [
        r for r in records
        if r.get("status", "ok") == "ok" and not r["output_ok"]
    ]
    if bad_output:
        print(
            f"error: {len(bad_output)} records produced wrong output",
            file=sys.stderr,
        )
        return 1

    if args.compare:
        tolerance = (
            args.tolerance if args.tolerance is not None
            else runner.default_tolerance()
        )
        try:
            baseline = runner.load_run(args.compare)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if not args.allow_backend_mismatch:
            mismatch = runner.backend_mismatch(records, baseline)
            if mismatch:
                print(f"error: {mismatch}", file=sys.stderr)
                return 1
        rows = runner.compare_runs(records, baseline, tolerance)
        print(runner.format_compare_table(rows, tolerance))
        if not runner.gate_passed(rows):
            return 1
    elif failed:
        print(
            f"error: {len(failed)} cells failed to measure",
            file=sys.stderr,
        )
        return 1
    if overruns:
        print(
            f"error: {len(overruns)} phase budget(s) exceeded",
            file=sys.stderr,
        )
        return 1
    if rate_problems:
        print(
            f"error: {len(rate_problems)} simulation-rate floor "
            "violation(s)",
            file=sys.stderr,
        )
        return 1
    return 0


def _emit_json(payload) -> None:
    import json

    print(json.dumps(payload, indent=1, sort_keys=True))


def cmd_simdiff(args) -> int:
    """Differential interp-vs-compiled gate over the benchmark matrix.

    Runs every requested cell on both simulator backends and fails on
    any divergence in outputs, cycles, loads/stores or cache misses —
    the parity contract, enforced end to end.  ``--expect-speedup``
    additionally asserts the compiled backend's throughput advantage.
    """
    import json

    from repro.bench import runner
    from repro.errors import ReproError

    programs = list(runner.ALL_PROGRAMS)
    if args.programs:
        programs = [p.strip() for p in args.programs.split(",")]
    machines = list(runner.ALL_MACHINES)
    if args.machines:
        machines = [m.strip() for m in args.machines.split(",")]
        unknown = set(machines) - set(MACHINE_NAMES)
        if unknown:
            print(
                f"error: unknown machine(s) {', '.join(sorted(unknown))}",
                file=sys.stderr,
            )
            return 2
    variants = list(runner.COLUMNS)
    if args.variants:
        variants = [v.strip() for v in args.variants.split(",")]
        unknown = set(variants) - set(runner.COLUMNS)
        if unknown:
            print(
                f"error: unknown variant(s) {', '.join(sorted(unknown))}",
                file=sys.stderr,
            )
            return 2

    jobs = args.jobs if args.jobs is not None else runner.default_jobs()
    total = len(programs) * len(machines) * len(variants)
    runs = {}
    try:
        for backend in ("interp", "compiled"):
            print(
                f"simdiff: {total} cells on the {backend} backend "
                f"({args.size}x{args.size} images, {jobs} "
                f"job{'s' if jobs != 1 else ''})",
                file=sys.stderr,
            )
            runs[backend] = runner.run_matrix(
                programs=programs, machines=machines, variants=variants,
                width=args.size, jobs=jobs, sim_backend=backend,
            )
    except (ReproError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    problems = runner.compare_backends(runs["interp"], runs["compiled"])
    for record in runs["compiled"]:
        if (
            record.get("status", "ok") == "ok"
            and record.get("sim_backend") != "compiled"
        ):
            problems.append(
                f"{record['program']}/{record['machine']}/"
                f"{record['variant']}: requested the compiled backend "
                f"but ran {record['sim_backend']!r} — no differential "
                "coverage for this cell"
            )

    def cell_key(record):
        return (
            record["program"], record["machine"], record["variant"],
        )

    interp_rates = {
        cell_key(r): r["sim_instrs_per_sec"]
        for r in runs["interp"]
        if r.get("status", "ok") == "ok"
        and r.get("sim_instrs_per_sec")
    }
    speedups = []
    for record in runs["compiled"]:
        base = interp_rates.get(cell_key(record))
        rate = record.get("sim_instrs_per_sec")
        if (
            base and rate
            and record.get("status", "ok") == "ok"
            and record.get("sim_backend") == "compiled"
        ):
            speedups.append((rate / base, rate, base, cell_key(record)))
    speedups.sort(reverse=True)
    best = speedups[0] if speedups else None

    if args.expect_speedup is not None:
        if best is None:
            problems.append(
                "no cell produced measurable throughput on both "
                f"backends (--expect-speedup {args.expect_speedup:g} "
                "unenforceable)"
            )
        elif best[0] < args.expect_speedup:
            problems.append(
                f"best compiled/interp speedup {best[0]:.2f}x "
                f"({'/'.join(best[3])}) is below the "
                f"{args.expect_speedup:g}x floor"
            )

    payload = {
        "cells": total,
        "size": args.size,
        "machines": machines,
        "programs": programs,
        "variants": variants,
        "divergences": problems,
        "ok": not problems,
        "best_speedup": round(best[0], 2) if best else None,
        "speedups": [
            {
                "program": key[0],
                "machine": key[1],
                "variant": key[2],
                "speedup": round(ratio, 2),
                "compiled_instrs_per_sec": round(rate, 1),
                "interp_instrs_per_sec": round(base, 1),
            }
            for ratio, rate, base, key in speedups
        ],
    }
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
            handle.write("\n")
    if args.json:
        _emit_json(payload)
        return 1 if problems else 0

    for ratio, rate, base, key in speedups[:10]:
        print(
            f"  {'/'.join(key):<42} {base / 1e6:6.2f}M -> "
            f"{rate / 1e6:6.2f}M instrs/sec  ({ratio:.2f}x)"
        )
    if problems:
        print(f"simdiff: FAIL ({len(problems)} problem(s))")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print(
        f"simdiff: PASS — {total} cells bit-identical on both backends"
        + (f", best speedup {best[0]:.2f}x" if best else "")
    )
    return 0


def cmd_replay(args) -> int:
    import json

    from repro.errors import ReproError
    from repro.resilience.bundle import load_bundle, replay_bundle

    try:
        bundle = load_bundle(args.bundle)
        result = replay_bundle(bundle)
    except ReproError as exc:
        if args.json:
            print(json.dumps({"error": str(exc)}))
        else:
            print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        _emit_json({
            "bundle": bundle.path,
            "reproduced": result.reproduced,
            "signature": list(bundle.signature),
            "failure": (
                result.failure.describe() if result.failure else None
            ),
            "error": result.error,
        })
    else:
        print(result.describe())
    return 0 if result.reproduced else 1


def cmd_bisect(args) -> int:
    import json
    from pathlib import Path

    from repro.errors import ReproError
    from repro.resilience.bisect import bisect_bundle
    from repro.resilience.bundle import load_bundle

    try:
        bundle = load_bundle(args.bundle)
        result = bisect_bundle(
            bundle,
            reduce=not args.no_reduce,
            progress=lambda msg: print(f"  {msg}", file=sys.stderr),
        )
    except ReproError as exc:
        if args.json:
            print(json.dumps({"error": str(exc)}))
        else:
            print(f"error: {exc}", file=sys.stderr)
        return 2
    reduced_path = None
    if result.reduced_source is not None:
        out = Path(bundle.path) / "reduced.c"
        out.write_text(result.reduced_source)
        reduced_path = str(out)
    if args.json:
        _emit_json({
            "bundle": bundle.path,
            "culprit": list(result.culprit),
            "attempts": result.attempts,
            "reduced_source": reduced_path,
        })
    else:
        print(result.describe())
        if reduced_path is not None:
            print(f"reduced source written to {reduced_path}")
    return 0 if result.culprit else 1


#: Stages the chaos sweep plants one fault into, in pipeline order.
CHAOS_SITES = (
    "cleanup", "licm", "strength_reduce", "unroll",
    "coalesce", "lower", "schedule",
)


def cmd_chaos(args) -> int:
    """Fault-injection smoke: one planted fault per stage per file.

    For every input file and every pipeline stage, compile under the
    recovery policy with one fault injected into that stage, then check
    (a) the compilation survived, (b) every fired fault was recovered
    (and produced a bundle that replays), and (c) the degraded program
    still behaves like the unoptimized baseline on the differential
    sanitizer's fixtures.
    """
    import hashlib
    import tempfile

    from repro.errors import ReproError
    from repro.pipeline import compile_minic as compile_pipeline
    from repro.resilience.bundle import replay_bundle
    from repro.resilience.faults import FaultPlan
    from repro.sanitize.differential import make_fixtures, run_fixture

    if args.fleet:
        return _fleet_chaos(args)
    if args.disk:
        return _disk_chaos(args)
    if not args.files:
        print(
            "error: chaos needs FILES (or --fleet / --disk for the "
            "service-level sweeps)",
            file=sys.stderr,
        )
        return 2

    crash_dir = args.crash_dir or tempfile.mkdtemp(prefix="repro-chaos-")
    problems = []
    checked = recovered = 0

    for path in args.files:
        with open(path) as handle:
            source = handle.read()
        try:
            # An empty plan keeps a stray REPRO_FAULTS out of the baseline.
            baseline = compile_pipeline(
                source, args.machine, "naive", faults=FaultPlan()
            )
        except (ReproError, OSError) as exc:
            print(f"error: {path}: {exc}", file=sys.stderr)
            return 2
        fixtures = {
            func.name: make_fixtures(func) for func in baseline.module
        }
        expected = {
            name: [
                run_fixture(baseline.module, name, baseline.machine, f)
                for f in fixtures[name]
            ]
            for name in fixtures
        }

        for site in CHAOS_SITES:
            # Deterministic kind choice: the seed decides raise vs
            # corrupt per (file, site), so a sweep covers both.
            digest = hashlib.sha256(
                f"{args.seed}:{path}:{site}".encode()
            ).digest()
            kind = ("raise", "corrupt")[digest[0] % 2]
            plan = FaultPlan.parse(f"{site}={kind}")
            checked += 1
            tag = f"{path}:{site}={kind}"
            try:
                program = compile_pipeline(
                    source, args.machine, "coalesce-all",
                    faults=plan, crash_dir=crash_dir,
                    on_pass_failure=args.policy,
                )
            except Exception as exc:  # noqa: BLE001 — unrecovered = finding
                problems.append(
                    f"{tag}: UNRECOVERED {type(exc).__name__}: {exc}"
                )
                print(f"  {tag}: UNRECOVERED ({exc})", file=sys.stderr)
                continue

            notes = []
            if plan.fired and not program.pass_failures:
                notes.append("fault fired but no failure was recorded")
            for failure in program.pass_failures:
                if not failure.bundle:
                    notes.append("no crash bundle was written")
                    continue
                replay = replay_bundle(failure.bundle)
                if not replay.reproduced:
                    notes.append(
                        f"bundle {failure.bundle} did not replay"
                    )
            for name, outcomes in expected.items():
                for fixture, want in zip(fixtures[name], outcomes):
                    if want.status != "ok":
                        continue  # inconclusive baseline
                    got = run_fixture(
                        program.module, name, program.machine, fixture
                    )
                    difference = want.diverges_from(got)
                    if difference is not None:
                        notes.append(
                            f"behaviour diverged from baseline in "
                            f"{name}{fixture.describe()}: {difference}"
                        )
                        break
            if notes:
                problems.extend(f"{tag}: {note}" for note in notes)
                print(f"  {tag}: " + "; ".join(notes), file=sys.stderr)
            else:
                recovered += 1
                if args.verbose:
                    hit = "fired" if plan.fired else "did not fire"
                    print(f"  {tag}: recovered ({hit})", file=sys.stderr)

            if args.bisect:
                for failure in program.pass_failures:
                    if not failure.bundle:
                        continue
                    from repro.resilience.bisect import bisect_bundle
                    from repro.resilience.bundle import load_bundle

                    result = bisect_bundle(
                        load_bundle(failure.bundle), reduce=True
                    )
                    if site not in result.culprit:
                        problems.append(
                            f"{tag}: bisect pinned {result.culprit} "
                            f"instead of {site}"
                        )
                    elif args.verbose:
                        print(
                            f"  {tag}: bisect pinned "
                            f"{', '.join(result.culprit)} in "
                            f"{result.attempts} probes",
                            file=sys.stderr,
                        )

    if args.json:
        _emit_json({
            "checked": checked,
            "recovered": recovered,
            "problems": problems,
            "crash_dir": crash_dir,
        })
    else:
        print(
            f"chaos: {recovered}/{checked} injections fully recovered "
            f"({len(problems)} problem(s)); bundles in {crash_dir}"
        )
        for problem in problems:
            print(f"  {problem}")
    return 1 if problems else 0


def _fleet_chaos(args) -> int:
    """``chaos --fleet``: SIGKILL/SIGSTOP fleet workers under a live
    mixed workload and fail on any lost, hung, or untyped request."""
    from repro.errors import ReproError
    from repro.service.fleet import run_fleet_chaos

    try:
        summary, problems = run_fleet_chaos(
            requests=args.requests,
            workers=args.workers,
            seed=args.seed,
            deadline=args.deadline,
            kills=args.kills,
            hangs=args.hangs,
            socket_path=args.socket,
            run_dir=args.run_dir,
            crash_dir=args.crash_dir,
            echo=(
                (lambda m: print(f"  {m}", file=sys.stderr))
                if args.verbose else None
            ),
        )
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        _emit_json({**summary, "problems": problems})
    else:
        print(
            f"fleet chaos: {summary['answered']}/{summary['requests']} "
            f"requests answered, {summary['worker_restarts']} worker "
            f"restart(s), {summary['requeued']} requeue(s), "
            f"{summary['quarantined']} quarantine(s) "
            f"({len(problems)} problem(s)); "
            f"logs in {summary['run_dir']}"
        )
        for status, count in summary["by_status"].items():
            print(f"  {status}: {count}")
        for problem in problems:
            print(f"  PROBLEM: {problem}")
    return 1 if problems else 0


def _disk_chaos(args) -> int:
    """``chaos --disk``: seeded disk faults against a shared artifact
    cache under a live fleet; fail on any duplicate compile, corrupt
    artifact served, lost request, or unmatched lease steal."""
    from repro.errors import ReproError
    from repro.service.fleet import run_disk_chaos

    try:
        summary, problems = run_disk_chaos(
            requests=args.requests,
            workers=args.workers,
            seed=args.seed,
            deadline=args.deadline,
            kills=args.kills,
            rate=args.rate,
            socket_path=args.socket,
            run_dir=args.run_dir,
            crash_dir=args.crash_dir,
            lease_ttl=args.lease_ttl,
            echo=(
                (lambda m: print(f"  {m}", file=sys.stderr))
                if args.verbose else None
            ),
        )
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        _emit_json({**summary, "problems": problems})
    else:
        cache = summary["cache"]
        print(
            f"disk chaos: {summary['answered']}/{summary['requests']} "
            f"requests answered, {summary['worker_restarts']} worker "
            f"restart(s) ({len(problems)} problem(s)); "
            f"logs in {summary['run_dir']}"
        )
        print(
            f"  cache: {cache['publishes']} publish(es), "
            f"{cache['dedup_hits']} dedup hit(s), "
            f"{cache['steals']} steal(s), "
            f"{cache['corruption_drops']} corruption drop(s), "
            f"{cache['torn_publishes']} torn, "
            f"{cache['fenced_publishes']} fenced, "
            f"{cache['disk_errors']} disk error(s), "
            f"{cache['fallbacks']} fallback(s), "
            f"{cache['faults_injected']} fault(s) injected"
        )
        for status, count in summary["by_status"].items():
            print(f"  {status}: {count}")
        for problem in problems:
            print(f"  PROBLEM: {problem}")
    return 1 if problems else 0


def cmd_serve(args) -> int:
    from repro.errors import ReproError
    from repro.resilience.faults import FaultPlan
    from repro.service.server import CompileServer

    if args.fleet:
        from repro.service.fleet import FleetSupervisor

        fleet = FleetSupervisor(
            socket_path=args.socket,
            workers=args.fleet,
            worker_threads=args.workers,
            queue_limit=args.queue_limit,
            breaker_threshold=args.breaker_threshold,
            breaker_cooldown=args.breaker_cooldown,
            default_deadline=args.default_deadline,
            crash_dir=args.crash_dir,
            worker_inject=args.inject or "",
            fleet_faults=FaultPlan.parse(args.fleet_inject),
            run_dir=args.run_dir,
            heartbeat_interval=args.heartbeat_interval,
            heartbeat_timeout=args.heartbeat_timeout,
            requeue_limit=args.requeue_limit,
            cache_dir=args.cache_dir,
            lease_ttl=args.lease_ttl,
        )
        print(
            f"fleet on {fleet.socket_path}: {args.fleet} worker "
            f"processes x {args.workers} threads "
            f"(run dir {fleet.run_dir})",
            file=sys.stderr,
        )
        try:
            fleet.serve_forever()
        except (ReproError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print("fleet stopped", file=sys.stderr)
        return 0

    faults = FaultPlan.parse(args.inject) if args.inject else None
    server = CompileServer(
        socket_path=args.socket,
        workers=args.workers,
        queue_limit=args.queue_limit,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
        default_deadline=args.default_deadline,
        faults=faults,
        crash_dir=args.crash_dir,
        start_delay=args.slowstart,
        worker_id=args.worker_id,
        exit_with_parent=args.exit_with_parent,
        cache_dir=args.cache_dir,
        lease_ttl=args.lease_ttl,
    )
    print(
        f"serving on {server.socket_path} "
        f"({server.workers} workers, queue limit {server.queue_limit})",
        file=sys.stderr,
    )
    try:
        server.serve_forever()
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print("server stopped", file=sys.stderr)
    return 0


def _print_submit_response(response, as_json: bool) -> None:
    import json

    if as_json:
        print(json.dumps(response, indent=1, sort_keys=True))
        return
    status = response.get("status")
    print(f"status: {status}")
    if response.get("degraded") or status == "degraded":
        disabled = response.get("disabled_passes") or []
        recovered = response.get("recovered_passes") or []
        print(
            "degraded: served with reduced optimization "
            f"(breaker {response.get('breaker')}; "
            f"disabled: {', '.join(disabled) or '-'}; "
            f"recovered: {', '.join(recovered) or '-'})"
        )
    for field in ("result", "cycles", "instr_count", "memory_accesses",
                  "coalesced_loops", "cache_hit", "error"):
        if response.get(field) is not None:
            print(f"{field}: {response[field]}")
    if response.get("rtl"):
        print(response["rtl"])


def cmd_submit(args) -> int:
    from repro.errors import ReproError
    from repro.service.client import (
        ServiceClient,
        ServiceUnavailable,
        parse_array_specs,
    )

    client = ServiceClient(
        args.socket, retries=args.retries,
        backoff_base=args.backoff_base,
    )
    fields = {}
    if args.deadline is not None:
        fields["deadline"] = args.deadline
    if args.inject:
        fields["faults"] = args.inject
    if args.sim_backend is not None:
        fields["sim_backend"] = args.sim_backend
    try:
        if args.bench:
            response = client.bench(
                args.bench, machine=args.machine,
                variant=args.variant, size=args.size, **fields,
            )
        elif args.entry:
            with open(args.file) as handle:
                source = handle.read()
            call_args = [
                arg if not arg.lstrip("-").isdigit() else int(arg, 0)
                for arg in args.args or []
            ]
            response = client.simulate(
                source, args.entry, call_args,
                arrays=parse_array_specs(args.array),
                machine=args.machine, config=args.config,
                max_steps=args.max_steps, **fields,
            )
        else:
            if not args.file:
                print(
                    "error: a FILE (or --bench PROGRAM) is required",
                    file=sys.stderr,
                )
                return 2
            with open(args.file) as handle:
                source = handle.read()
            response = client.compile(
                source, machine=args.machine, config=args.config,
                include_rtl=args.rtl, **fields,
            )
    except ServiceUnavailable as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    _print_submit_response(response, args.json)
    return 0 if response.get("status") in ("ok", "degraded") else 1


def _format_latency(snapshot) -> str:
    """'p50 12.3ms / p90 40.0ms / p99 80.1ms (37 in window)' or ''."""
    if not snapshot or not snapshot.get("count"):
        return ""
    parts = []
    for quantile in ("p50", "p90", "p99"):
        value = snapshot.get(quantile)
        if value is None:
            return ""
        parts.append(f"{quantile} {value * 1000.0:.1f}ms")
    return (
        " / ".join(parts) + f" ({snapshot.get('window', 0)} in window)"
    )


def cmd_status(args) -> int:
    import json

    from repro.service.client import ServiceClient, ServiceUnavailable

    client = ServiceClient(args.socket, retries=1)
    try:
        if args.shutdown:
            response = client.shutdown_server()
        else:
            response = client.status()
    except (ServiceUnavailable, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3
    if args.json:
        print(json.dumps(response, indent=1, sort_keys=True))
        return 0 if response.get("status") == "ok" else 1
    if args.shutdown:
        print(f"shutdown: {response.get('status')}")
        return 0 if response.get("status") == "ok" else 1
    if response.get("fleet"):
        fleet = response["fleet"]
        print(f"fleet on {fleet.get('socket')}")
        for field in ("uptime_seconds", "workers", "in_flight",
                      "accepted", "completed", "ok", "degraded",
                      "rejected", "timeouts", "errors", "forwarded",
                      "requeued", "quarantined", "hang_kills",
                      "worker_restarts", "run_dir"):
            print(f"  {field}: {fleet.get(field)}")
        cache = response.get("cache")
        if cache:
            print(
                f"  cache: {cache.get('dedup_hits', 0)} dedup hit(s), "
                f"{cache.get('steals', 0)} steal(s), "
                f"{cache.get('corruption_drops', 0)} corruption "
                f"drop(s)"
            )
        for worker in response.get("workers") or []:
            server = worker.get("server") or {}
            breakers = worker.get("breakers") or {}
            open_breakers = sum(
                1 for snap in breakers.values()
                if snap.get("state") != "closed"
            )
            print(
                f"worker {worker['index']}: {worker['state']} "
                f"(pid {worker.get('pid')}, "
                f"restarts {worker.get('restarts')}, "
                f"queue {server.get('queue_depth', '-')}, "
                f"in-flight {server.get('in_flight', '-')}, "
                f"breakers {len(breakers)} "
                f"({open_breakers} not closed))"
            )
            latency = _format_latency(worker.get("latency"))
            if latency:
                print(f"  latency: {latency}")
        return 0
    server = response.get("server", {})
    print(f"server on {server.get('socket')}")
    for field in ("uptime_seconds", "workers", "queue_depth",
                  "queue_limit", "in_flight", "accepted", "completed",
                  "ok", "degraded", "rejected", "timeouts", "errors"):
        print(f"  {field}: {server.get(field)}")
    breakers = response.get("breakers") or {}
    print(f"breakers: {len(breakers)}")
    for key, snap in sorted(breakers.items()):
        bad = ", ".join(snap.get("bad_passes") or []) or "-"
        print(
            f"  {key}: {snap['state']} "
            f"(failures {snap['consecutive_failures']}, bad passes {bad}, "
            f"served degraded {snap['served_degraded']})"
        )
    cache = response.get("cache")
    if cache:
        print(
            f"cache: {cache['entries']} entries, {cache['bytes']} bytes "
            f"in {cache['directory']}"
        )
    print(f"single-flight shared compiles: "
          f"{response.get('single_flight_shared', 0)}")
    latency = _format_latency(response.get("latency"))
    if latency:
        print(f"latency: {latency}")
    return 0


def cmd_cache(args) -> int:
    import json

    from repro.bench.cache import CompileCache, cache_enabled

    cache = CompileCache(args.dir)
    if args.clear:
        removed = cache.clear()
        print(f"removed {removed} cache entr{'y' if removed == 1 else 'ies'}")
        return 0
    stats = cache.stats()
    stats["enabled"] = cache_enabled()
    if args.json:
        print(json.dumps(stats, indent=1, sort_keys=True))
    else:
        cap = stats["max_bytes"]
        print(f"compile cache at {stats['directory']} "
              f"({'enabled' if stats['enabled'] else 'DISABLED'})")
        print(f"  entries:   {stats['entries']}")
        print(f"  bytes:     {stats['bytes']}")
        print(f"  max bytes: {cap if cap is not None else 'unlimited'}")
        print(f"  lease ttl: {stats['lease_ttl']:g}s")
        # The durable journal's fleet-wide view: dedup_hits are reads
        # that saved another process's compile; steals are crashed or
        # stalled holders whose lease a waiter took over.
        print(
            f"  journal:   {stats['log_hits']} hit(s), "
            f"{stats['dedup_hits']} dedup, "
            f"{stats['compiles']} compile(s), "
            f"{stats['publishes']} publish(es)"
        )
        print(
            f"  incidents: {stats['steals']} steal(s), "
            f"{stats['fenced_publishes']} fenced, "
            f"{stats['torn_publishes']} torn, "
            f"{stats['corruption_drops']} corruption drop(s), "
            f"{stats['disk_errors']} disk error(s), "
            f"{stats['fallbacks']} fallback(s)"
        )
    return 0


def cmd_machines(args) -> int:
    from repro import get_machine

    for name in sorted(MACHINE_NAMES):
        machine = get_machine(name)
        traits = []
        if not machine.supports_load(1):
            traits.append("no narrow loads/stores")
        if machine.has_unaligned_wide:
            traits.append("unaligned wide access")
        if not machine.has_insert:
            traits.append("no field insert")
        if not machine.pipelined:
            traits.append("non-pipelined")
        print(
            f"{name:8s} {machine.word_bytes * 8}-bit {machine.endian}-"
            f"endian, issue {machine.issue_width}, "
            f"{machine.num_registers} regs"
            + (f" ({', '.join(traits)})" if traits else "")
        )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Memory access coalescing (PLDI 1994) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_compile = sub.add_parser("compile", help="compile and print RTL")
    p_compile.add_argument("file")
    _add_common(p_compile)
    p_compile.set_defaults(func=cmd_compile)

    p_run = sub.add_parser("run", help="compile and simulate")
    p_run.add_argument("file")
    p_run.add_argument("--entry", required=True)
    p_run.add_argument(
        "--array", action="append",
        help="stage an array: NAME:WIDTH:v1,v2,...",
    )
    p_run.add_argument(
        "--args", nargs="*",
        help="call arguments (array names resolve to addresses)",
    )
    p_run.add_argument("--dump", type=int, default=0,
                       help="dump first N elements of each array after")
    p_run.add_argument(
        "--max-steps", type=int, default=None,
        help="simulator watchdog: abort with SimulationTimeout after N "
             "executed instructions (default: $REPRO_MAX_STEPS or 200M)",
    )
    _add_sim_backend(p_run)
    _add_common(p_run)
    p_run.set_defaults(func=cmd_run)

    p_lint = sub.add_parser(
        "lint", help="run the sanitizer checkers over a file"
    )
    p_lint.add_argument("file", help="a MiniC .c file or an .rtl file")
    p_lint.add_argument(
        "--checks", default=None,
        help="comma-separated checker ids (default: all)",
    )
    p_lint.add_argument(
        "--differential", action="store_true",
        help="re-execute each function before/after every pass and "
             "report the pass on behaviour divergence",
    )
    p_lint.add_argument(
        "--stats", action="store_true",
        help="print per-pass changed/timing statistics",
    )
    p_lint.add_argument(
        "--json", action="store_true",
        help="machine-readable diagnostics on stdout",
    )
    _add_common(p_lint)
    p_lint.set_defaults(func=cmd_lint)

    p_tables = sub.add_parser("tables", help="regenerate paper tables")
    p_tables.add_argument("--machine", dest="machine_filter", default=None)
    p_tables.add_argument("--size", type=int, default=48)
    p_tables.set_defaults(func=cmd_tables)

    p_bench = sub.add_parser(
        "bench",
        help="run the benchmark matrix, persist/compare baselines",
    )
    p_bench.add_argument(
        "--programs", default=None,
        help="comma-separated benchmark names (default: all)",
    )
    p_bench.add_argument(
        "--machines", default=None,
        help="comma-separated machine names or 'all'",
    )
    p_bench.add_argument(
        "--variants", default=None,
        help="comma-separated column names "
             "(cc,vpo,coalesce-loads,coalesce-all)",
    )
    p_bench.add_argument(
        "--size", type=int, default=None,
        help="image width=height (default 48; 16 with --quick)",
    )
    p_bench.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default: $BENCH_JOBS or 1)",
    )
    p_bench.add_argument(
        "--quick", action="store_true",
        help="the CI smoke tier: alpha only, 16x16 images",
    )
    p_bench.add_argument(
        "--tag", default="run",
        help="baseline tag; the run is written to BENCH_<tag>.json",
    )
    p_bench.add_argument(
        "--out", default=None,
        help="output path (overrides the --tag naming)",
    )
    p_bench.add_argument(
        "--compare", default=None, metavar="BASELINE.json",
        help="diff against a stored baseline; non-zero exit on "
             "regression past the tolerance",
    )
    p_bench.add_argument(
        "--tolerance", type=float, default=None,
        help="allowed cycle growth in percent "
             "(default: $BENCH_TOLERANCE or 2.0)",
    )
    p_bench.add_argument(
        "--stats", action="store_true",
        help="print aggregated per-phase compile/simulate timings",
    )
    p_bench.add_argument(
        "--phase-budget", action="append", default=None,
        metavar="PHASE=SECONDS",
        help="fail the run when a compile phase's aggregated time "
             "(summed across records, as --stats reports it) exceeds "
             "SECONDS; repeatable, comma-separable, e.g. cleanup=0.3",
    )
    p_bench.add_argument(
        "--cell-timeout", type=float, default=None,
        help="per-cell wall-clock budget in seconds before a cell is "
             "marked failed (default: $BENCH_CELL_TIMEOUT or 600)",
    )
    _add_sim_backend(p_bench)
    p_bench.add_argument(
        "--min-sim-rate", type=float, default=None, metavar="INSTRS_PER_SEC",
        help="fail unless the fastest compiled-backend cell simulates at "
             "least this many instructions per second",
    )
    p_bench.add_argument(
        "--allow-backend-mismatch", action="store_true",
        help="compare against a baseline measured with a different "
             "simulator backend instead of failing",
    )
    p_bench.set_defaults(func=cmd_bench)

    p_simdiff = sub.add_parser(
        "simdiff",
        help="differential gate: run the matrix on both simulator "
             "backends and fail on any observable divergence",
    )
    p_simdiff.add_argument(
        "--programs", default=None,
        help="comma-separated benchmark names (default: all)",
    )
    p_simdiff.add_argument(
        "--machines", default=None,
        help="comma-separated machine names (default: all three)",
    )
    p_simdiff.add_argument(
        "--variants", default=None,
        help="comma-separated column names (default: all four)",
    )
    p_simdiff.add_argument(
        "--size", type=int, default=32,
        help="image width=height for every cell (default 32)",
    )
    p_simdiff.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default: $BENCH_JOBS or 1)",
    )
    p_simdiff.add_argument(
        "--expect-speedup", type=float, default=None, metavar="FACTOR",
        help="additionally fail unless the best per-cell compiled/interp "
             "throughput ratio reaches FACTOR",
    )
    p_simdiff.add_argument(
        "--out", default=None, metavar="FILE.json",
        help="also write the machine-readable summary to FILE.json",
    )
    p_simdiff.add_argument("--json", action="store_true")
    p_simdiff.set_defaults(func=cmd_simdiff)

    p_replay = sub.add_parser(
        "replay", help="re-run a crash bundle's compilation"
    )
    p_replay.add_argument("bundle", help="a repro_crash_<hash>/ directory")
    p_replay.add_argument(
        "--json", action="store_true",
        help="machine-readable result on stdout",
    )
    p_replay.set_defaults(func=cmd_replay)

    p_bisect = sub.add_parser(
        "bisect",
        help="pin a bundle's failing pass set and shrink its source",
    )
    p_bisect.add_argument("bundle", help="a repro_crash_<hash>/ directory")
    p_bisect.add_argument(
        "--no-reduce", action="store_true",
        help="skip the source-reduction phase",
    )
    p_bisect.add_argument(
        "--json", action="store_true",
        help="machine-readable result on stdout",
    )
    p_bisect.set_defaults(func=cmd_bisect)

    p_chaos = sub.add_parser(
        "chaos",
        help="inject one fault per pipeline stage and verify recovery",
    )
    p_chaos.add_argument(
        "files", nargs="*",
        help="MiniC source files (not used with --fleet)",
    )
    p_chaos.add_argument(
        "--seed", type=int, default=0,
        help="decides raise-vs-corrupt per (file, stage); the sweep is "
             "fully reproducible from this value",
    )
    p_chaos.add_argument(
        "--fleet", action="store_true",
        help="fleet-level sweep instead: SIGKILL/SIGSTOP worker "
             "processes under a live mixed workload and assert zero "
             "lost requests",
    )
    p_chaos.add_argument(
        "--disk", action="store_true",
        help="disk-fault sweep instead: batter a shared artifact "
             "cache (torn writes, corrupt artifacts, silent leases, "
             "steal races, ENOSPC) under a live fleet and audit the "
             "exactly-once cross-process dedup contract",
    )
    p_chaos.add_argument(
        "--rate", type=float, default=0.08,
        help="--disk: per-arrival probability of the seeded disk "
             "fault sweep (default 0.08)",
    )
    p_chaos.add_argument(
        "--lease-ttl", type=float, default=1.0,
        help="--disk: artifact lease TTL in seconds (default 1.0; "
             "short, so stale-lease steals happen within the run)",
    )
    p_chaos.add_argument(
        "--requests", type=int, default=100,
        help="--fleet: mixed-workload requests to drive (default 100)",
    )
    p_chaos.add_argument(
        "--workers", type=int, default=4,
        help="--fleet: worker processes in the fleet (default 4)",
    )
    p_chaos.add_argument(
        "--deadline", type=float, default=10.0,
        help="--fleet: per-request deadline in seconds (default 10)",
    )
    p_chaos.add_argument(
        "--kills", type=int, default=3,
        help="--fleet/--disk: seeded SIGKILL faults to plant "
             "(default 3)",
    )
    p_chaos.add_argument(
        "--hangs", type=int, default=1,
        help="--fleet: seeded SIGSTOP faults to plant (default 1)",
    )
    p_chaos.add_argument(
        "--socket", default=None,
        help="--fleet: fleet socket path (default: a fresh temp path)",
    )
    p_chaos.add_argument(
        "--run-dir", default=None,
        help="--fleet: directory for worker sockets and logs",
    )
    p_chaos.add_argument(
        "--machine", default="alpha", choices=sorted(MACHINE_NAMES),
    )
    p_chaos.add_argument(
        "--policy", default="skip", choices=("skip", "fallback"),
        help="recovery policy to test under (default: skip)",
    )
    p_chaos.add_argument(
        "--crash-dir", default=None,
        help="where bundles land (default: a fresh temp directory)",
    )
    p_chaos.add_argument(
        "--bisect", action="store_true",
        help="also bisect every written bundle and check it pins the "
             "injected stage",
    )
    p_chaos.add_argument("--verbose", action="store_true")
    p_chaos.add_argument(
        "--json", action="store_true",
        help="machine-readable summary on stdout",
    )
    p_chaos.set_defaults(func=cmd_chaos)

    p_serve = sub.add_parser(
        "serve",
        help="run the compile server on a local Unix socket",
    )
    p_serve.add_argument(
        "--socket", default=None,
        help="socket path (default: REPRO_SERVICE_SOCKET or a per-user "
             "path under the temp dir)",
    )
    p_serve.add_argument("--workers", type=int, default=2)
    p_serve.add_argument(
        "--queue-limit", type=int, default=16,
        help="bounded request queue depth; beyond it requests are "
             "load-shed with a retryable 'rejected' response",
    )
    p_serve.add_argument(
        "--breaker-threshold", type=int, default=3,
        help="consecutive pass failures before a circuit opens",
    )
    p_serve.add_argument(
        "--breaker-cooldown", type=float, default=30.0,
        help="seconds an open circuit waits before a half-open probe",
    )
    p_serve.add_argument(
        "--default-deadline", type=float, default=None,
        help="per-request deadline in seconds when the request sets none",
    )
    p_serve.add_argument(
        "--inject", default=None, metavar="PLAN",
        help="server-wide fault plan (same syntax as REPRO_FAULTS); "
             "arrival counts span requests",
    )
    p_serve.add_argument(
        "--crash-dir", default=None,
        help="where crash bundles land (default: cwd)",
    )
    p_serve.add_argument(
        "--cache-dir", default=None,
        help="compile-cache directory (default: REPRO_CACHE_DIR or "
             "~/.cache/repro-compile); fleet workers share it, so "
             "cross-process lease dedup spans the whole fleet",
    )
    p_serve.add_argument(
        "--lease-ttl", type=float, default=None,
        help="artifact lease TTL in seconds (default: REPRO_LEASE_TTL "
             "or 5.0) — how long a silent compile holder may go "
             "without a heartbeat before waiters steal its lease",
    )
    p_serve.add_argument(
        "--fleet", type=int, default=0, metavar="N",
        help="run a supervised fleet of N worker *processes* (each a "
             "--workers-threaded server on a private socket) behind "
             "this socket, with crash recovery, exactly-once requeue, "
             "and quarantine",
    )
    p_serve.add_argument(
        "--fleet-inject", default=None, metavar="PLAN",
        help="fleet-level fault plan (kill/hang/slowstart at "
             "worker:<index> sites), e.g. 'worker:0=kill:0.1@3'",
    )
    p_serve.add_argument(
        "--run-dir", default=None,
        help="fleet only: directory for worker sockets and logs "
             "(default: a fresh temp directory)",
    )
    p_serve.add_argument(
        "--heartbeat-interval", type=float, default=0.25,
        help="fleet only: seconds between worker heartbeat pings",
    )
    p_serve.add_argument(
        "--heartbeat-timeout", type=float, default=2.0,
        help="fleet only: unanswered-heartbeat window before a wedged "
             "worker is SIGKILLed and restarted",
    )
    p_serve.add_argument(
        "--requeue-limit", type=int, default=1,
        help="fleet only: crashes one request may cause before it is "
             "quarantined (default 1: requeued exactly once)",
    )
    p_serve.add_argument(
        "--worker-id", type=int, default=None,
        help=argparse.SUPPRESS,  # set by the fleet supervisor
    )
    p_serve.add_argument(
        "--exit-with-parent", action="store_true",
        help=argparse.SUPPRESS,  # set by the fleet supervisor
    )
    p_serve.add_argument(
        "--slowstart", type=float, default=0.0,
        help=argparse.SUPPRESS,  # the fleet 'slowstart' fault
    )
    p_serve.set_defaults(func=cmd_serve)

    p_submit = sub.add_parser(
        "submit",
        help="submit one request to a running compile server",
    )
    p_submit.add_argument(
        "file", nargs="?", default=None,
        help="MiniC source to compile (or simulate with --entry)",
    )
    p_submit.add_argument("--socket", default=None)
    p_submit.add_argument("--machine", default="alpha",
                          choices=sorted(MACHINE_NAMES))
    p_submit.add_argument("--config", default="vpo")
    p_submit.add_argument(
        "--entry", default=None,
        help="simulate: function to call after compiling",
    )
    p_submit.add_argument(
        "--args", nargs="*", default=None,
        help="simulate: arguments (ints or staged array names)",
    )
    p_submit.add_argument(
        "--array", action="append", default=[], metavar="NAME:WIDTH:VALUES",
        help="simulate: stage an array, e.g. a:2:1,2,3,4 (repeatable)",
    )
    p_submit.add_argument("--max-steps", type=int, default=None)
    _add_sim_backend(p_submit)
    p_submit.add_argument(
        "--bench", default=None, metavar="PROGRAM",
        help="run a benchmark program instead of compiling a file",
    )
    p_submit.add_argument("--variant", default="coalesce-all")
    p_submit.add_argument("--size", type=int, default=16)
    p_submit.add_argument("--rtl", action="store_true",
                          help="include the final RTL in the response")
    p_submit.add_argument(
        "--deadline", type=float, default=None,
        help="per-request deadline in seconds",
    )
    p_submit.add_argument(
        "--inject", default=None, metavar="PLAN",
        help="request-scoped fault plan (for testing degradation)",
    )
    p_submit.add_argument("--retries", type=int, default=5)
    p_submit.add_argument("--backoff-base", type=float, default=0.05)
    p_submit.add_argument("--json", action="store_true")
    p_submit.set_defaults(func=cmd_submit)

    p_status = sub.add_parser(
        "status", help="query (or shut down) a running compile server"
    )
    p_status.add_argument("--socket", default=None)
    p_status.add_argument(
        "--shutdown", action="store_true",
        help="ask the server to drain and exit",
    )
    p_status.add_argument("--json", action="store_true")
    p_status.set_defaults(func=cmd_status)

    p_cache = sub.add_parser(
        "cache", help="inspect or clear the on-disk compile cache"
    )
    p_cache.add_argument(
        "--dir", default=None,
        help="cache directory (default: REPRO_CACHE_DIR or "
             ".repro_cache/compile)",
    )
    p_cache.add_argument(
        "--clear", action="store_true", help="remove every cache entry"
    )
    p_cache.add_argument(
        "--stats", action="store_true",
        help="print entry/byte counts (the default action)",
    )
    p_cache.add_argument("--json", action="store_true")
    p_cache.set_defaults(func=cmd_cache)

    p_machines = sub.add_parser("machines", help="list machine models")
    p_machines.set_defaults(func=cmd_machines)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
