"""Compile-and-measure harness for the paper's experiments.

One *column* of a paper table = one pipeline configuration:

=====================  =====================================================
``cc``                 native-compiler proxy (no scheduling)
``vpo``                full optimizer, loops unrolled (the baseline column)
``coalesce-loads``     loads coalesced — **forced**, as the paper measures
                       the transformation itself (col. 4)
``coalesce-all``       loads and stores coalesced — forced (col. 5)
=====================  =====================================================

The Motorola 68030 needs ``unroll_factor=4`` forced in every column: its
256-byte instruction cache makes the unrolling heuristic refuse, and the
paper's point there is precisely what happens when the transformation is
applied anyway.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from repro.bench.programs import get_benchmark
from repro.bench import workloads
from repro.bench.cache import cached_compile_minic
from repro.pipeline import CompiledProgram
from repro.sim import Simulator, instructions_per_second

COLUMN_CONFIGS: Dict[str, Tuple[str, Dict[str, object]]] = {
    "cc": ("cc", {}),
    "vpo": ("vpo", {}),
    "coalesce-loads": ("coalesce-loads", {"force_coalesce": True}),
    "coalesce-all": ("coalesce-all", {"force_coalesce": True}),
}

COLUMNS = ("cc", "vpo", "coalesce-loads", "coalesce-all")


def machine_overrides(machine: str) -> Dict[str, object]:
    """Per-machine pipeline overrides used by every column."""
    if machine == "m68030":
        return {"unroll_factor": 4}
    return {}


@dataclass
class BenchResult:
    """Outcome of one (benchmark, machine, column) measurement."""

    benchmark: str
    machine: str
    column: str
    cycles: int
    base_cycles: int
    dcache_miss_cycles: int
    icache_miss_cycles: int
    instr_count: int
    memory_accesses: int
    output_ok: bool
    coalesced_loops: int
    # Figure 5 runtime checks the static alias engine discharged.
    checks_elided: int = 0
    # Accepted runs per access shape ('unit'/'strided'/'affine'/
    # 'indirect') summed over applied loops.
    coalesced_by_shape: Dict[str, int] = field(default_factory=dict)
    result: Optional[int] = None
    loads: int = 0
    stores: int = 0
    dcache_misses: int = 0
    icache_misses: int = 0
    compile_seconds: float = 0.0
    sim_seconds: float = 0.0
    compile_cache_hit: bool = False
    # Which simulator backend actually ran (after any fallback) and its
    # throughput in simulated instructions per host second (None when the
    # run was too short to time).
    sim_backend: str = "interp"
    sim_instrs_per_sec: Optional[float] = None
    # stage name -> seconds, from CompiledProgram.pass_stats (describes
    # the original compilation when compile_cache_hit is True)
    phase_seconds: Dict[str, float] = field(default_factory=dict)

    def __repr__(self) -> str:
        return (
            f"<BenchResult {self.benchmark}/{self.machine}/{self.column}: "
            f"{self.cycles} cycles, ok={self.output_ok}>"
        )


@lru_cache(maxsize=256)
def _compile(
    name: str, machine: str, column: str, extra: Tuple[Tuple[str, object], ...]
) -> CompiledProgram:
    program = get_benchmark(name)
    preset, overrides = COLUMN_CONFIGS[column]
    merged = dict(machine_overrides(machine))
    merged.update(overrides)
    merged.update(dict(extra))
    return cached_compile_minic(program.source, machine, preset, **merged)


def compile_benchmark(
    name: str, machine: str, column: str, **extra
) -> CompiledProgram:
    """Compile one benchmark for one table column (cached)."""
    return _compile(name, machine, column, tuple(sorted(extra.items())))


def run_benchmark(
    name: str,
    machine: str,
    column: str,
    width: int = 64,
    height: int = 64,
    check: bool = True,
    sim_backend: Optional[str] = None,
    **extra,
) -> BenchResult:
    """Compile, stage inputs, simulate, verify and measure one benchmark.

    ``sim_backend`` picks the simulator backend (``interp`` or
    ``compiled``); None defers to ``REPRO_SIM_BACKEND``.  The result
    records the backend that actually ran — the compiled backend falls
    back to the interpreter under fault injection.
    """
    compile_started = time.perf_counter()
    compiled = compile_benchmark(name, machine, column, **extra)
    compile_seconds = time.perf_counter() - compile_started
    sim_started = time.perf_counter()
    sim = compiled.simulator(backend=sim_backend)
    result, ok = _stage_and_run(name, sim, width, height, check)
    sim_seconds = time.perf_counter() - sim_started
    report = sim.report()
    return BenchResult(
        benchmark=name,
        machine=machine,
        column=column,
        cycles=report.total_cycles,
        base_cycles=report.base_cycles,
        dcache_miss_cycles=report.dcache_miss_cycles,
        icache_miss_cycles=report.icache_miss_cycles,
        instr_count=report.instr_count,
        memory_accesses=report.memory_accesses,
        output_ok=ok,
        coalesced_loops=compiled.coalesced_loops,
        checks_elided=compiled.checks_elided,
        coalesced_by_shape=compiled.coalesced_by_shape,
        result=result,
        loads=report.load_count,
        stores=report.store_count,
        dcache_misses=report.dcache_misses,
        icache_misses=report.icache_misses,
        compile_seconds=compile_seconds,
        sim_seconds=sim_seconds,
        compile_cache_hit=compiled.cache_hit,
        sim_backend=sim.backend,
        sim_instrs_per_sec=instructions_per_second(
            report.instr_count, sim.wall_seconds
        ),
        phase_seconds={
            stage: stats["seconds"]
            for stage, stats in compiled.pass_stats.items()
        },
    )


def _stage_and_run(
    name: str, sim: Simulator, width: int, height: int, check: bool
) -> Tuple[Optional[int], bool]:
    pixels = width * height

    if name == "convolution":
        src = workloads.lcg_bytes(pixels)
        a = sim.alloc_array("src", bytes(src))
        d = sim.alloc_array("dst", size=pixels)
        sim.call("convolve", a, d, width, height)
        if not check:
            return None, True
        got = sim.read_words(d, pixels, 1, signed=False)
        return None, got == workloads.ref_convolution(src, width, height)

    if name in ("image_add", "image_xor"):
        a_vals = workloads.lcg_bytes(pixels, seed=11)
        b_vals = workloads.lcg_bytes(pixels, seed=22)
        d = sim.alloc_array("dst", size=pixels)
        a = sim.alloc_array("a", bytes(a_vals))
        b = sim.alloc_array("b", bytes(b_vals))
        sim.call(get_benchmark(name).entry, d, a, b, pixels)
        if not check:
            return None, True
        got = sim.read_words(d, pixels, 1, signed=False)
        reference = (
            workloads.ref_image_add(a_vals, b_vals)
            if name == "image_add"
            else workloads.ref_image_xor(a_vals, b_vals)
        )
        return None, got == reference

    if name == "image_add16":
        a_vals = [v * 257 for v in workloads.lcg_bytes(pixels, seed=33)]
        b_vals = [v * 257 for v in workloads.lcg_bytes(pixels, seed=44)]
        d = sim.alloc_array("dst", size=2 * pixels)
        a = sim.alloc_array("a", size=2 * pixels)
        b = sim.alloc_array("b", size=2 * pixels)
        sim.write_words(a, a_vals, 2)
        sim.write_words(b, b_vals, 2)
        sim.call("image_add16", d, a, b, pixels)
        if not check:
            return None, True
        got = sim.read_words(d, pixels, 2, signed=False)
        return None, got == workloads.ref_image_add16(a_vals, b_vals)

    if name == "translate":
        tx, ty = 8, 4
        src = workloads.lcg_bytes(pixels, seed=55)
        a = sim.alloc_array("src", bytes(src))
        d = sim.alloc_array("dst", size=pixels)
        sim.call("translate", a, d, width, height, tx, ty)
        if not check:
            return None, True
        got = sim.read_words(d, pixels, 1, signed=False)
        return None, got == workloads.ref_translate(
            src, width, height, tx, ty
        )

    if name == "mirror":
        src = workloads.lcg_bytes(pixels, seed=66)
        a = sim.alloc_array("src", bytes(src))
        d = sim.alloc_array("dst", size=pixels)
        sim.call("mirror", a, d, width, height)
        if not check:
            return None, True
        got = sim.read_words(d, pixels, 1, signed=False)
        return None, got == workloads.ref_mirror(src, width, height)

    if name == "eqntott":
        nterms, term_width = max(height, 4), max(width, 8)
        terms = workloads.eqntott_terms(nterms, term_width)
        t = sim.alloc_array("terms", size=2 * len(terms))
        sim.write_words(t, terms, 2)
        w = sim.alloc_array("work", size=2 * term_width)
        value = sim.call("eqntott", t, w, nterms, term_width)
        value = _to_signed(value, sim.machine.word_bits)
        if not check:
            return value, True
        return value, value == workloads.ref_eqntott(
            terms, nterms, term_width
        )

    if name == "blockstage":
        src = workloads.lcg_bytes(pixels, seed=99)
        a = sim.alloc_array("src", bytes(src))
        value = sim.call("blockstage", a, pixels)
        value = _to_signed(value, sim.machine.word_bits)
        if not check:
            return value, True
        return value, value == workloads.ref_blockstage(src, pixels)

    if name == "spmv_csr":
        nrows = max(height, 4)
        vals, cols, rowptr = workloads.csr_matrix(nrows)
        ncols = 128
        x_vals = workloads.lcg_shorts(ncols, seed=4321, span=128)
        y = sim.alloc_array("y", size=4 * nrows)
        v = sim.alloc_array("val", size=2 * len(vals))
        c = sim.alloc_array("col", size=2 * len(cols))
        rp = sim.alloc_array("rowptr", size=4 * len(rowptr))
        x = sim.alloc_array("x", size=2 * ncols)
        sim.write_words(v, vals, 2)
        sim.write_words(c, cols, 2)
        sim.write_words(rp, rowptr, 4)
        sim.write_words(x, x_vals, 2)
        value = sim.call("spmv", y, v, c, rp, x, nrows)
        value = _to_signed(value, sim.machine.word_bits)
        if not check:
            return value, True
        got_y = sim.read_words(y, nrows, 4)
        ref_y, ref_total = workloads.ref_spmv(
            vals, cols, rowptr, x_vals, nrows
        )
        return value, value == ref_total and got_y == ref_y

    if name == "histogram":
        src = workloads.lcg_bytes(pixels, seed=17)
        h = sim.alloc_array("hist", size=4 * 256)
        s = sim.alloc_array("src", bytes(src))
        value = sim.call("histogram", h, s, pixels)
        value = _to_signed(value, sim.machine.word_bits)
        reference = workloads.ref_histogram(src)
        if not check:
            return value, True
        got = sim.read_words(h, 256, 4)
        return value, value == reference[0] and got == reference

    if name == "strided_copy":
        src = workloads.lcg_bytes(2 * pixels, seed=23)
        d = sim.alloc_array("dst", size=pixels)
        s = sim.alloc_array("src", bytes(src))
        sim.call("strided_copy", d, s, pixels)
        if not check:
            return None, True
        got = sim.read_words(d, pixels, 1, signed=False)
        return None, got == workloads.ref_strided_copy(src, pixels)

    if name == "conv2d_rowwalk":
        rows = max(height, 3)
        w = max(4, min(width, 64))
        m_vals = workloads.lcg_bytes(rows * 64, seed=29)
        m = sim.alloc_array("m", bytes(m_vals))
        out = sim.alloc_array("out", size=w)
        y_row = rows // 2
        value = sim.call("conv2d_rowwalk", m, out, y_row, w)
        value = _to_signed(value, sim.machine.word_bits)
        reference = workloads.ref_conv2d_rowwalk(m_vals, y_row, w)
        if not check:
            return value, True
        got = sim.read_words(out, w, 1, signed=False)
        return value, value == reference[1] and got == reference

    if name == "dotproduct":
        count = pixels
        a_vals = workloads.lcg_shorts(count, seed=77, span=2000)
        b_vals = workloads.lcg_shorts(count, seed=88, span=2000)
        a = sim.alloc_array("a", size=2 * count)
        b = sim.alloc_array("b", size=2 * count)
        sim.write_words(a, a_vals, 2)
        sim.write_words(b, b_vals, 2)
        value = sim.call("dotproduct", a, b, count)
        value = _to_signed(value, sim.machine.word_bits)
        if not check:
            return value, True
        return value, value == workloads.ref_dotproduct(a_vals, b_vals)

    raise KeyError(f"no staging recipe for benchmark {name!r}")


def _to_signed(value: int, bits: int) -> int:
    if value >= 1 << (bits - 1):
        value -= 1 << bits
    return value
