"""Input generation and golden-output references for the benchmarks.

Everything is deterministic (seeded LCG, not ``random``) so cycle counts
and outputs are reproducible run to run.
"""

from __future__ import annotations

from typing import List, Tuple


def lcg_bytes(count: int, seed: int = 12345) -> List[int]:
    """Deterministic pseudo-random bytes."""
    state = seed & 0x7FFFFFFF
    output = []
    for _ in range(count):
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        output.append((state >> 16) & 0xFF)
    return output


def lcg_shorts(count: int, seed: int = 54321, span: int = 1 << 15) -> List[int]:
    """Deterministic pseudo-random signed 16-bit values in [-span/2, span/2)."""
    state = seed & 0x7FFFFFFF
    output = []
    for _ in range(count):
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        output.append(((state >> 12) % span) - span // 2)
    return output


# ---------------------------------------------------------------------------
# Reference implementations (plain Python, exact integer semantics)
# ---------------------------------------------------------------------------

def ref_convolution(src: List[int], width: int, height: int) -> List[int]:
    dst = [0] * (width * height)
    for y in range(1, height - 1):
        for x in range(1, width - 1):
            gx = (
                src[(y - 1) * width + x + 1] - src[(y - 1) * width + x - 1]
                + src[y * width + x + 1] - src[y * width + x - 1]
                + src[(y + 1) * width + x + 1]
                - src[(y + 1) * width + x - 1]
            )
            gy = (
                src[(y + 1) * width + x - 1] - src[(y - 1) * width + x - 1]
                + src[(y + 1) * width + x] - src[(y - 1) * width + x]
                + src[(y + 1) * width + x + 1]
                - src[(y - 1) * width + x + 1]
            )
            value = abs(gx) + abs(gy)
            dst[(y - 1) * width + x - 1] = min(value, 255) & 0xFF
    return dst


def ref_image_add(a: List[int], b: List[int]) -> List[int]:
    return [min(x + y, 255) for x, y in zip(a, b)]


def ref_image_add16(a: List[int], b: List[int]) -> List[int]:
    return [min(x + y, 65535) for x, y in zip(a, b)]


def ref_image_xor(a: List[int], b: List[int]) -> List[int]:
    return [x ^ y for x, y in zip(a, b)]


def ref_translate(
    src: List[int], width: int, height: int, tx: int, ty: int
) -> List[int]:
    dst = [0] * (width * height)
    for y in range(height - ty):
        for x in range(width - tx):
            dst[(y + ty) * width + x + tx] = src[y * width + x]
    return dst


def ref_mirror(src: List[int], width: int, height: int) -> List[int]:
    dst = [0] * (width * height)
    for y in range(height):
        for x in range(width):
            dst[y * width + width - 1 - x] = src[y * width + x]
    return dst


def ref_cmppt(a: List[int], b: List[int]) -> int:
    for x, y in zip(a, b):
        if x != y:
            if x == 2:
                return 1
            if y == 2:
                return -1
            return -1 if x < y else 1
    return 0


def ref_eqntott(terms: List[int], nterms: int, width: int) -> int:
    total = 0

    def row(index: int) -> List[int]:
        return terms[index * width:(index + 1) * width]

    for i in range(nterms - 4):
        left = row(i)
        for offset in (1, 2, 3, 4):
            total += ref_cmppt(left, row(i + offset))
    return total


def ref_dotproduct(a: List[int], b: List[int]) -> int:
    return sum(x * y for x, y in zip(a, b))


def ref_blockstage(src: List[int], n: int) -> int:
    total = 0
    for t in range(0, n - 63, 64):
        total += sum(255 - value for value in src[t:t + 64])
    return total


def ref_spmv(
    vals: List[int], cols: List[int], rowptr: List[int],
    x: List[int], nrows: int,
) -> Tuple[List[int], int]:
    """CSR product: the y vector and the summed total."""
    y = [0] * nrows
    total = 0
    for r in range(nrows):
        acc = 0
        for k in range(rowptr[r], rowptr[r + 1]):
            acc += vals[k] * x[cols[k]]
        y[r] = acc
        total += acc
    return y, total


def ref_histogram(src: List[int], bins: int = 256) -> List[int]:
    hist = [0] * bins
    for value in src:
        hist[value] += 1
    return hist


def ref_strided_copy(src: List[int], n: int) -> List[int]:
    return [src[2 * i] for i in range(n)]


def ref_conv2d_rowwalk(
    m: List[int], y: int, w: int, pitch: int = 64
) -> List[int]:
    """The out vector (length ``w``; untouched slots stay zero)."""
    out = [0] * w
    for x in range(1, w - 1):
        acc = (
            m[(y - 1) * pitch + x] + m[y * pitch + x - 1]
            + 2 * m[y * pitch + x] + m[y * pitch + x + 1]
            + m[(y + 1) * pitch + x]
        )
        out[x] = (acc // 6) & 0xFF
    return out


def csr_matrix(
    nrows: int, ncols: int = 128, row_len: int = 8, seed: int = 4242
) -> Tuple[List[int], List[int], List[int]]:
    """A deterministic CSR matrix of ``(vals, cols, rowptr)``.

    Even rows are *banded*: ``row_len`` consecutive columns starting at
    a multiple of four, so the coalesced gather's index-adjacency probe
    passes and the wide copy runs.  Odd rows are *scattered* (every
    other column), so the probe fails and the original loop serves as
    the fallback — both arms of the run-time check execute in one call.
    """
    assert row_len * 2 <= ncols
    vals: List[int] = []
    cols: List[int] = []
    rowptr: List[int] = [0]
    state = seed & 0x7FFFFFFF
    for r in range(nrows):
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        if r % 2 == 0:
            start = ((state >> 16) % (ncols - row_len)) & ~3
            row_cols = [start + j for j in range(row_len)]
        else:
            start = (state >> 16) % (ncols - 2 * row_len)
            row_cols = [start + 2 * j for j in range(row_len)]
        for c in row_cols:
            state = (state * 1103515245 + 12345) & 0x7FFFFFFF
            vals.append(((state >> 12) % 64) - 32)
            cols.append(c)
        rowptr.append(len(cols))
    return vals, cols, rowptr


def eqntott_terms(nterms: int, width: int, seed: int = 777) -> List[int]:
    """Product-term table: 0/1/2 values (2 = don't care) with long equal
    prefixes, like eqntott's bit vectors — comparisons scan deep before
    the early exit fires, so ``cmppt`` dominates the runtime as it did in
    the original program."""
    state = seed
    terms: List[int] = []
    base = []
    for _ in range(width):
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        base.append((state >> 16) % 3)
    for t in range(nterms):
        row = list(base)
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        # Rows differ only in the last ~10% of the vector.
        tail = max(1, width // 10)
        flip_at = width - 1 - ((state >> 16) % tail)
        row[flip_at] = (row[flip_at] + 1 + t % 2) % 3
        terms.extend(row)
    return terms
