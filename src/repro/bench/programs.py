"""The paper's benchmark programs (Table I) as MiniC sources.

Each benchmark bundles the MiniC source, an entry point, and a pure-Python
reference implementation the test suite checks the simulated output
against bit-for-bit.

Notes on fidelity:

* The paper used 500×500 byte images; image size is a parameter here
  (Python interpretation of RTL makes 500×500 needlessly slow, and the
  percentage results are size-independent once the loop dominates — the
  test suite verifies that).  Widths that are multiples of 8 keep every
  image row quadword-aligned, which the run-time alignment checks reward;
  the ablation benchmark measures the paper's 500-wide case too.
* ``abs``/clamp operations are written branchlessly (shift-mask idiom), as
  1990s DSP code did — MiniC's coalescer, like vpo's, wants single-block
  inner loops.
* ``eqntott`` is SPEC89 and not redistributable: following the
  substitution rule, we reproduce its documented hot structure — the
  ``cmppt`` bit-vector comparison (early-exit, *not* coalescible) plus a
  vector copy (coalescible) — so the benchmark shows the paper's "small
  but positive" speedup rather than an image-kernel-sized one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List


@dataclass
class BenchmarkProgram:
    """One Table I entry."""

    name: str
    description: str
    source: str
    entry: str

    @property
    def lines_of_code(self) -> int:
        return sum(
            1 for line in self.source.splitlines() if line.strip()
        )


CONVOLUTION_SOURCE = """
/* Gradient directional edge convolution of a black-and-white image
 * (Lindley, "Practical Image Processing in C").  3x3 horizontal and
 * vertical gradients, absolute values summed and clamped to 255; output
 * written compactly at the interior's origin so the result stream stays
 * aligned with the destination base.
 */
void convolve(unsigned char *src, unsigned char *dst, int width,
              int height) {
    int x, y, gx, gy, m;
    for (y = 1; y < height - 1; y++) {
        for (x = 1; x < width - 1; x++) {
            gx = src[(y-1)*width + (x+1)] - src[(y-1)*width + (x-1)]
               + src[y*width + (x+1)]     - src[y*width + (x-1)]
               + src[(y+1)*width + (x+1)] - src[(y+1)*width + (x-1)];
            gy = src[(y+1)*width + (x-1)] - src[(y-1)*width + (x-1)]
               + src[(y+1)*width + x]     - src[(y-1)*width + x]
               + src[(y+1)*width + (x+1)] - src[(y-1)*width + (x+1)];
            /* branchless |gx| + |gy|, clamped to 255 */
            m = gx >> 31;
            gx = (gx ^ m) - m;
            m = gy >> 31;
            gy = (gy ^ m) - m;
            gx = gx + gy;
            gx = gx | ((255 - gx) >> 31);
            dst[(y-1)*width + (x-1)] = gx;
        }
    }
}
"""

IMAGE_ADD_SOURCE = """
/* Image addition of two black-and-white frames, saturating at white. */
void image_add(unsigned char *dst, unsigned char *a, unsigned char *b,
               int n) {
    int i, s;
    for (i = 0; i < n; i++) {
        s = a[i] + b[i];
        s = s | ((255 - s) >> 31);   /* branchless clamp to 255 */
        dst[i] = s;
    }
}
"""

IMAGE_ADD16_SOURCE = """
/* Image addition on 16-bit samples, saturating at 65535. */
void image_add16(unsigned short *dst, unsigned short *a,
                 unsigned short *b, int n) {
    int i, s;
    for (i = 0; i < n; i++) {
        s = a[i] + b[i];
        s = s | ((65535 - s) >> 31);  /* branchless clamp */
        dst[i] = s;
    }
}
"""

IMAGE_XOR_SOURCE = """
/* Exclusive-or of two black-and-white frames (image differencing). */
void image_xor(unsigned char *dst, unsigned char *a, unsigned char *b,
               int n) {
    int i;
    for (i = 0; i < n; i++)
        dst[i] = a[i] ^ b[i];
}
"""

TRANSLATE_SOURCE = """
/* Translate an image region to a new position in the destination. */
void translate(unsigned char *src, unsigned char *dst, int width,
               int height, int tx, int ty) {
    int x, y;
    for (y = 0; y < height - ty; y++) {
        for (x = 0; x < width - tx; x++) {
            dst[(y + ty)*width + (x + tx)] = src[y*width + x];
        }
    }
}
"""

MIRROR_SOURCE = """
/* Mirror image: reverse every row of the frame. */
void mirror(unsigned char *src, unsigned char *dst, int width,
            int height) {
    int x, y;
    for (y = 0; y < height; y++) {
        for (x = 0; x < width; x++) {
            dst[y*width + (width - 1 - x)] = src[y*width + x];
        }
    }
}
"""

EQNTOTT_SOURCE = """
/* SPEC89 eqntott stand-in: the documented hot structure of eqntott is
 * cmppt(), an early-exit comparison of product-term bit vectors of
 * shorts (values 0/1/2, 2 = don't care), fed by vector staging copies.
 * The copy loop coalesces; the early-exit compares do not -- and they
 * dominate the runtime, giving the small overall speedup the paper
 * reports for this benchmark.
 */
int cmppt(short *a, short *b, int n) {
    int i, aa, bb;
    for (i = 0; i < n; i++) {
        aa = a[i];
        bb = b[i];
        if (aa != bb) {
            if (aa == 2) return 1;      /* don't-care sorts last */
            if (bb == 2) return -1;
            if (aa < bb) return -1;
            return 1;
        }
    }
    return 0;
}

void stage(short *dst, short *src, int n) {
    int i;
    for (i = 0; i < n; i++)
        dst[i] = src[i];
}

int eqntott(short *terms, short *work, int nterms, int width) {
    int i, total;
    total = 0;
    for (i = 0; i + 4 < nterms; i++) {
        stage(work, terms + i*width, width);
        total = total + cmppt(work, terms + (i+1)*width, width);
        total = total + cmppt(work, terms + (i+2)*width, width);
        total = total + cmppt(work, terms + (i+3)*width, width);
        total = total + cmppt(work, terms + (i+4)*width, width);
    }
    return total;
}
"""

DOTPRODUCT_SOURCE = """
/* Figure 1 of the paper: dot product of two 16-bit vectors. */
int dotproduct(short a[], short b[], int n) {
    int c, i;
    c = 0;
    for (i = 0; i < n; i++)
        c += a[i] * b[i];
    return c;
}
"""

BLOCKSTAGE_SOURCE = """
/* Tile-staged stream complement/checksum.  Each 64-byte tile of the
 * input is staged through an on-stack buffer, complemented into a
 * second on-stack buffer, and folded into a checksum.  The staging
 * buffers live in the frame, so the static alias engine can discharge
 * the Figure 5 checks the pointer-parameter kernels need at run time:
 * tile/out never alias each other or src, and both are wide-aligned by
 * construction.  src's own alignment stays a run-time question --
 * realistic partial elision.
 */
int blockstage(unsigned char *src, int n) {
    unsigned char tile[64];
    unsigned char out[64];
    int i, t, sum, limit;
    sum = 0;
    limit = n - 64;
    for (t = 0; t <= limit; t = t + 64) {
        for (i = 0; i < 64; i = i + 1)
            tile[i] = src[t + i];
        for (i = 0; i < 64; i = i + 1)
            out[i] = 255 - tile[i];
        for (i = 0; i < 64; i = i + 1)
            sum = sum + out[i];
    }
    return sum;
}
"""

SPMV_CSR_SOURCE = """
/* Sparse matrix-vector product over compressed-sparse-row storage.
 * The inner loop mixes every access shape the coalescer knows: val[k]
 * and col[k] are unit streams, x[col[k]] is an indirect gather whose
 * wide form is guarded by the run-time index-adjacency probe (banded
 * rows pass it and take the coalesced copy; scattered rows fail it and
 * fall back to the original loop).
 */
int spmv(int *y, short *val, short *col, int *rowptr, short *x,
         int nrows) {
    int r; int k; int kend; int sum; int total;
    total = 0;
    for (r = 0; r < nrows; r = r + 1) {
        sum = 0;
        kend = rowptr[r + 1];
        for (k = rowptr[r]; k < kend; k = k + 1) {
            sum = sum + val[k] * x[col[k]];
        }
        y[r] = sum;
        total = total + sum;
    }
    return total;
}
"""

HISTOGRAM_SOURCE = """
/* Byte histogram: the negative control for indirect coalescing.  The
 * src[i] index loads coalesce (unit stream), but the hist[src[i]]++
 * read-modify-write is a gather crossed by a data-dependent scatter --
 * the hazard audit must reject every indirect run here.
 */
int histogram(int *hist, unsigned char *src, int n) {
  int i;
  for (i = 0; i < n; i = i + 1) {
    hist[src[i]] = hist[src[i]] + 1;
  }
  return hist[0];
}
"""

STRIDED_COPY_SOURCE = """
/* Every-other-byte decimation copy.  The src stream advances two bytes
 * per element, so each wide word holds a *sparse* window of loads; the
 * stores stay a dense unit stream.  Exercises the strided shape and the
 * stride-divisibility form of the Figure 5 checks.
 */
void strided_copy(unsigned char *dst, unsigned char *src, int n) {
    int i;
    for (i = 0; i < n; i = i + 1) {
        dst[i] = src[2 * i];
    }
}
"""

CONV2D_ROWWALK_SOURCE = """
/* Five-point stencil over one row of a 2-D array parameter.  The three
 * row bases are multi-term affine addresses (m + 64*(y+c)), which the
 * symbolic engine proves pairwise disjoint -- the affine-bound form of
 * the Figure 5 checks covers what remains.
 */
int conv2d_rowwalk(unsigned char m[][64], unsigned char *out, int y,
                   int w) {
  int x;
  int acc;
  for (x = 1; x < w - 1; x = x + 1) {
    acc = m[y - 1][x] + m[y][x - 1] + 2 * m[y][x] + m[y][x + 1]
        + m[y + 1][x];
    out[x] = acc / 6;
  }
  return out[1];
}
"""

BENCHMARKS: Dict[str, BenchmarkProgram] = {
    program.name: program
    for program in [
        BenchmarkProgram(
            "convolution",
            "Gradient directional edge convolution of a black-and-white "
            "image",
            CONVOLUTION_SOURCE,
            "convolve",
        ),
        BenchmarkProgram(
            "image_add",
            "Image addition of two black-and-white frames",
            IMAGE_ADD_SOURCE,
            "image_add",
        ),
        BenchmarkProgram(
            "image_add16",
            "Image addition of two 16-bit frames",
            IMAGE_ADD16_SOURCE,
            "image_add16",
        ),
        BenchmarkProgram(
            "image_xor",
            "Exclusive-or of two black-and-white frames",
            IMAGE_XOR_SOURCE,
            "image_xor",
        ),
        BenchmarkProgram(
            "translate",
            "Translate a black-and-white image to a new position",
            TRANSLATE_SOURCE,
            "translate",
        ),
        BenchmarkProgram(
            "eqntott",
            "SPEC89 eqntott hot-loop stand-in (bit-vector compares)",
            EQNTOTT_SOURCE,
            "eqntott",
        ),
        BenchmarkProgram(
            "mirror",
            "Generate the mirror image of a black-and-white image",
            MIRROR_SOURCE,
            "mirror",
        ),
        BenchmarkProgram(
            "dotproduct",
            "Dot product of two 16-bit vectors (the paper's Figure 1)",
            DOTPRODUCT_SOURCE,
            "dotproduct",
        ),
        BenchmarkProgram(
            "blockstage",
            "Tile-staged stream complement/checksum through on-stack "
            "buffers (static check elision showcase)",
            BLOCKSTAGE_SOURCE,
            "blockstage",
        ),
        BenchmarkProgram(
            "spmv_csr",
            "Sparse matrix-vector product (CSR): indirect gathers "
            "behind the index-adjacency probe",
            SPMV_CSR_SOURCE,
            "spmv",
        ),
        BenchmarkProgram(
            "histogram",
            "Byte histogram: indirect read-modify-write the hazard "
            "audit must reject (negative control)",
            HISTOGRAM_SOURCE,
            "histogram",
        ),
        BenchmarkProgram(
            "strided_copy",
            "Every-other-byte decimation copy: sparse strided windows "
            "behind stride-divisibility checks",
            STRIDED_COPY_SOURCE,
            "strided_copy",
        ),
        BenchmarkProgram(
            "conv2d_rowwalk",
            "Five-point stencil over a 2-D array parameter: multi-term "
            "affine row bases",
            CONV2D_ROWWALK_SOURCE,
            "conv2d_rowwalk",
        ),
    ]
}

#: The access-shape benchmark family: one program per non-unit point of
#: the shape lattice plus the indirect negative control.  Not part of
#: the paper's tables — they exercise the generalized pipeline.
SHAPE_FAMILY = (
    "spmv_csr",
    "histogram",
    "strided_copy",
    "conv2d_rowwalk",
)

# The six programs the paper's Tables II/III report (in table order).
TABLE_ORDER = [
    "convolution",
    "image_add",
    "image_add16",
    "image_xor",
    "translate",
    "eqntott",
    "mirror",
]


def get_benchmark(name: str) -> BenchmarkProgram:
    try:
        return BENCHMARKS[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; known: {', '.join(BENCHMARKS)}"
        ) from None
