"""Benchmarks and the experiment harness.

``programs`` holds the MiniC sources of the paper's Table I benchmark set
(plus the Figure 1 dot product), ``workloads`` generates inputs and golden
outputs, ``harness`` compiles/runs one benchmark under one configuration,
and ``tables`` regenerates the paper's tables.
"""

from repro.bench.programs import BENCHMARKS, BenchmarkProgram, get_benchmark
from repro.bench.harness import (
    BenchResult,
    COLUMN_CONFIGS,
    run_benchmark,
    machine_overrides,
)
from repro.bench.tables import (
    TableRow,
    format_table,
    table1_rows,
    table_rows,
)

__all__ = [
    "BENCHMARKS",
    "BenchResult",
    "BenchmarkProgram",
    "COLUMN_CONFIGS",
    "TableRow",
    "format_table",
    "get_benchmark",
    "machine_overrides",
    "run_benchmark",
    "table1_rows",
    "table_rows",
]
