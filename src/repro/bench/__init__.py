"""Benchmarks and the experiment harness.

``programs`` holds the MiniC sources of the paper's Table I benchmark set
(plus the Figure 1 dot product), ``workloads`` generates inputs and golden
outputs, ``harness`` compiles/runs one benchmark under one configuration,
``tables`` regenerates the paper's tables, ``cache`` persists finished
compilations across processes, and ``runner`` fans the measurement matrix
out over worker processes, stores ``BENCH_<tag>.json`` baselines and
implements the CI regression gate.
"""

from repro.bench.programs import BENCHMARKS, BenchmarkProgram, get_benchmark
from repro.bench.cache import CompileCache, cached_compile_minic
from repro.bench.harness import (
    BenchResult,
    COLUMN_CONFIGS,
    run_benchmark,
    machine_overrides,
)
from repro.bench.runner import (
    BenchSpec,
    ComparisonRow,
    compare_runs,
    format_compare_table,
    gate_passed,
    load_run,
    make_run_document,
    run_matrix,
    save_run,
)
from repro.bench.tables import (
    TableRow,
    format_table,
    table1_rows,
    table_rows,
)

__all__ = [
    "BENCHMARKS",
    "BenchResult",
    "BenchSpec",
    "BenchmarkProgram",
    "COLUMN_CONFIGS",
    "ComparisonRow",
    "CompileCache",
    "TableRow",
    "cached_compile_minic",
    "compare_runs",
    "format_compare_table",
    "format_table",
    "gate_passed",
    "get_benchmark",
    "load_run",
    "machine_overrides",
    "make_run_document",
    "run_benchmark",
    "run_matrix",
    "save_run",
    "table1_rows",
    "table_rows",
]
