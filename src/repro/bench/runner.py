"""Parallel benchmark runner, persisted baselines, and the regression gate.

Three layers on top of :mod:`repro.bench.harness`:

* :func:`run_matrix` fans the program × machine × variant simulation
  matrix out over a :class:`~concurrent.futures.ProcessPoolExecutor`
  (``--jobs N`` / ``BENCH_JOBS``).  Results are merged deterministically
  (sorted by program, machine, variant), so the measured cycle counts of
  a ``--jobs 4`` run are identical to a ``--jobs 1`` run — only the
  wall-clock fields differ.
* :func:`save_run` / :func:`load_run` persist a run to ``BENCH_<tag>.json``
  with a versioned schema (see :data:`RUN_SCHEMA`): per-record program,
  machine, variant, simulated cycles, loads/stores (and how many the
  variant eliminated vs ``vpo``), cache misses, wall-clock and per-phase
  compile timings, plus run-level metadata (git SHA, image size, jobs).
* :func:`compare_runs` diffs a fresh run against a stored baseline and
  :func:`format_compare_table` renders the regression table the CI gate
  prints; cycles past the tolerance (or a record missing from the
  baseline) make the gate fail.

Workers share the on-disk compile-session cache (:mod:`repro.bench.cache`),
so a warm matrix run spends its time simulating, not recompiling.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.bench.harness import COLUMNS, run_benchmark
from repro.bench.programs import BENCHMARKS, TABLE_ORDER
from repro.sim import default_sim_backend

RUN_SCHEMA = 1

#: Record fields that describe the *host measurement*, not the simulated
#: program: they differ run-to-run and backend-to-backend by design and
#: are never part of any regression or differential comparison.
HOST_METRIC_FIELDS = (
    "wall_seconds",
    "compile_seconds",
    "sim_seconds",
    "sim_instrs_per_sec",
    "sim_backend",
    "compile_cache_hit",
    "phase_seconds",
)

#: Record fields the interp and compiled backends must agree on exactly
#: (the parity contract): everything the simulated machine observed.
DIFF_FIELDS = (
    "result",
    "output_ok",
    "cycles",
    "base_cycles",
    "dcache_miss_cycles",
    "icache_miss_cycles",
    "dcache_misses",
    "icache_misses",
    "instr_count",
    "loads",
    "stores",
    "memory_accesses",
)

#: Default regression tolerance, percent of baseline cycles.  Simulated
#: cycles are deterministic, so this only needs to absorb intentional
#: noise-level changes; BENCH_TOLERANCE overrides it.
DEFAULT_TOLERANCE = 2.0

#: The quick tier CI smokes on: every program, the Alpha only, small
#: images.  The full tier covers all three machines at 48×48.
QUICK_SIZE = 16
QUICK_MACHINES = ("alpha",)
FULL_SIZE = 48
ALL_MACHINES = ("alpha", "m88100", "m68030")

#: Default program set: the Table II/III programs plus Figure 1's
#: dotproduct (every program the harness can stage).
ALL_PROGRAMS = tuple(TABLE_ORDER) + tuple(
    name for name in sorted(BENCHMARKS) if name not in TABLE_ORDER
)


def default_jobs() -> int:
    """``BENCH_JOBS`` or 1 (serial)."""
    try:
        return max(1, int(os.environ.get("BENCH_JOBS", "1")))
    except ValueError:
        return 1


def default_tolerance() -> float:
    try:
        return float(os.environ.get("BENCH_TOLERANCE", DEFAULT_TOLERANCE))
    except ValueError:
        return DEFAULT_TOLERANCE


#: Per-cell wall-clock budget (seconds) before a parallel run gives up on
#: a worker and marks the cell failed; BENCH_CELL_TIMEOUT overrides.
DEFAULT_CELL_TIMEOUT = 600.0


def default_cell_timeout() -> float:
    try:
        return max(
            1.0,
            float(os.environ.get(
                "BENCH_CELL_TIMEOUT", DEFAULT_CELL_TIMEOUT
            )),
        )
    except ValueError:
        return DEFAULT_CELL_TIMEOUT


def git_sha() -> str:
    """The repository HEAD, or 'unknown' outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except OSError:
        pass
    return "unknown"


@dataclass(frozen=True, order=True)
class BenchSpec:
    """One cell of the measurement matrix."""

    program: str
    machine: str
    variant: str
    width: int
    height: int
    sim_backend: str = "interp"


def build_matrix(
    programs: Sequence[str],
    machines: Sequence[str],
    variants: Sequence[str],
    width: int,
    height: int,
    sim_backend: str = "interp",
) -> List[BenchSpec]:
    """Every (program, machine, variant) cell, in deterministic order."""
    return sorted(
        BenchSpec(p, m, v, width, height, sim_backend)
        for p in programs for m in machines for v in variants
    )


def _run_spec(spec: BenchSpec) -> Dict[str, object]:
    """Measure one cell; must stay module-level (pickled to workers)."""
    started = time.perf_counter()
    result = run_benchmark(
        spec.program, spec.machine, spec.variant,
        width=spec.width, height=spec.height,
        sim_backend=spec.sim_backend,
    )
    wall = time.perf_counter() - started
    return {
        "program": spec.program,
        "machine": spec.machine,
        "variant": spec.variant,
        "width": spec.width,
        "height": spec.height,
        "result": result.result,
        "cycles": result.cycles,
        "base_cycles": result.base_cycles,
        "dcache_miss_cycles": result.dcache_miss_cycles,
        "icache_miss_cycles": result.icache_miss_cycles,
        "dcache_misses": result.dcache_misses,
        "icache_misses": result.icache_misses,
        "instr_count": result.instr_count,
        "loads": result.loads,
        "stores": result.stores,
        "memory_accesses": result.memory_accesses,
        "output_ok": result.output_ok,
        "coalesced_loops": result.coalesced_loops,
        "checks_elided": result.checks_elided,
        "coalesced_by_shape": dict(
            sorted(result.coalesced_by_shape.items())
        ),
        "wall_seconds": round(wall, 6),
        "compile_seconds": round(result.compile_seconds, 6),
        "sim_seconds": round(result.sim_seconds, 6),
        "compile_cache_hit": result.compile_cache_hit,
        "sim_backend": result.sim_backend,
        "sim_instrs_per_sec": (
            round(result.sim_instrs_per_sec, 1)
            if result.sim_instrs_per_sec is not None else None
        ),
        "status": "ok",
        "error": "",
        "phase_seconds": {
            stage: round(seconds, 6)
            for stage, seconds in sorted(result.phase_seconds.items())
        },
    }


def _failed_record(spec: BenchSpec, error: str) -> Dict[str, object]:
    """The record shape for a cell whose measurement died or timed out."""
    return {
        "program": spec.program,
        "machine": spec.machine,
        "variant": spec.variant,
        "width": spec.width,
        "height": spec.height,
        "result": None,
        "cycles": 0,
        "base_cycles": 0,
        "dcache_miss_cycles": 0,
        "icache_miss_cycles": 0,
        "dcache_misses": 0,
        "icache_misses": 0,
        "instr_count": 0,
        "loads": 0,
        "stores": 0,
        "memory_accesses": 0,
        "output_ok": False,
        "coalesced_loops": 0,
        "checks_elided": 0,
        "coalesced_by_shape": {},
        "wall_seconds": 0.0,
        "compile_seconds": 0.0,
        "sim_seconds": 0.0,
        "compile_cache_hit": False,
        "sim_backend": spec.sim_backend,
        "sim_instrs_per_sec": None,
        "status": "failed",
        "error": error,
        "phase_seconds": {},
    }


def _run_spec_safe(spec: BenchSpec) -> Dict[str, object]:
    """Worker entry point: one crashed cell must not sink the matrix."""
    try:
        return _run_spec(spec)
    except Exception as exc:  # noqa: BLE001 — any cell failure is recorded
        return _failed_record(spec, f"{type(exc).__name__}: {exc}")


def _annotate_eliminated(records: List[Dict[str, object]]) -> None:
    """Add loads/stores-eliminated-vs-vpo to every record in place."""
    vpo: Dict[Tuple[str, str], Dict[str, object]] = {
        (r["program"], r["machine"]): r
        for r in records
        if r["variant"] == "vpo" and r.get("status", "ok") == "ok"
    }
    for record in records:
        base = vpo.get((record["program"], record["machine"]))
        if base is None or record.get("status", "ok") != "ok":
            record["loads_eliminated"] = 0
            record["stores_eliminated"] = 0
        else:
            record["loads_eliminated"] = base["loads"] - record["loads"]
            record["stores_eliminated"] = (
                base["stores"] - record["stores"]
            )


def run_matrix(
    programs: Optional[Sequence[str]] = None,
    machines: Optional[Sequence[str]] = None,
    variants: Optional[Sequence[str]] = None,
    width: int = FULL_SIZE,
    height: Optional[int] = None,
    jobs: Optional[int] = None,
    progress=None,
    cell_timeout: Optional[float] = None,
    sim_backend: Optional[str] = None,
) -> List[Dict[str, object]]:
    """Measure the whole matrix; returns records sorted deterministically.

    ``jobs > 1`` fans the cells out across worker processes; each worker
    compiles through the shared disk cache, so concurrent workers never
    repeat each other's compilations across runs.  ``progress`` (if
    given) is called with each finished record.

    Fault tolerance: a cell that raises, kills its worker process, or
    exceeds ``cell_timeout`` seconds (``BENCH_CELL_TIMEOUT``) becomes a
    ``status='failed'`` record instead of aborting the run; the
    regression gate treats such cells as failures.
    """
    specs = build_matrix(
        programs or ALL_PROGRAMS,
        machines or ALL_MACHINES,
        variants or COLUMNS,
        width,
        height if height is not None else width,
        sim_backend if sim_backend is not None else default_sim_backend(),
    )
    jobs = jobs if jobs is not None else default_jobs()
    if cell_timeout is None:
        cell_timeout = default_cell_timeout()
    records: List[Dict[str, object]] = []
    if jobs <= 1 or len(specs) <= 1:
        for spec in specs:
            record = _run_spec_safe(spec)
            records.append(record)
            if progress:
                progress(record)
    else:
        # Workers normally catch their own exceptions (_run_spec_safe);
        # the parent-side handling below only fires for hard worker
        # deaths (BrokenProcessPool) and the overall deadline.
        deadline = time.monotonic() + cell_timeout * len(specs)
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            pending = {
                pool.submit(_run_spec_safe, spec): spec for spec in specs
            }
            while pending:
                done, _ = wait(
                    pending,
                    timeout=max(0.0, deadline - time.monotonic()),
                    return_when=FIRST_COMPLETED,
                )
                if not done:
                    for future, spec in pending.items():
                        future.cancel()
                        records.append(_failed_record(
                            spec,
                            f"cell timed out (>{cell_timeout:g}s budget)",
                        ))
                    pool.shutdown(wait=False, cancel_futures=True)
                    break
                for future in done:
                    spec = pending.pop(future)
                    try:
                        record = future.result()
                    except Exception as exc:  # noqa: BLE001 — worker died
                        record = _failed_record(
                            spec, f"worker died: {exc}"
                        )
                    records.append(record)
                    if progress:
                        progress(record)
    records.sort(
        key=lambda r: (r["program"], r["machine"], r["variant"])
    )
    _annotate_eliminated(records)
    return records


# -- baseline store ---------------------------------------------------------
def make_run_document(
    records: List[Dict[str, object]],
    tag: str = "run",
    jobs: int = 1,
    width: int = FULL_SIZE,
    height: Optional[int] = None,
    sim_backend: Optional[str] = None,
) -> Dict[str, object]:
    if sim_backend is None:
        # Derive from the records themselves so the document can never
        # disagree with its measurements; mixed backends (a fallback hit
        # some cells) are recorded as 'mixed' and always flagged later.
        backends = sorted({
            str(r.get("sim_backend", "interp")) for r in records
        }) or ["interp"]
        sim_backend = backends[0] if len(backends) == 1 else "mixed"
    return {
        "schema": RUN_SCHEMA,
        "tag": tag,
        "created_unix": int(time.time()),
        "git_sha": git_sha(),
        "width": width,
        "height": height if height is not None else width,
        "jobs": jobs,
        "sim_backend": sim_backend,
        "records": records,
    }


def save_run(document: Dict[str, object], path: str) -> None:
    with open(path, "w") as handle:
        json.dump(document, handle, indent=1, sort_keys=True)
        handle.write("\n")


def load_run(path: str) -> Dict[str, object]:
    with open(path) as handle:
        document = json.load(handle)
    if document.get("schema") != RUN_SCHEMA:
        raise ValueError(
            f"{path}: unsupported baseline schema "
            f"{document.get('schema')!r} (want {RUN_SCHEMA})"
        )
    return document


# -- regression gate --------------------------------------------------------
@dataclass
class ComparisonRow:
    """One record of the current run diffed against the baseline."""

    program: str
    machine: str
    variant: str
    baseline_cycles: Optional[int]
    # None for a baseline record the current run did not measure.
    current_cycles: Optional[int]
    # 'ok' | 'improved' | 'regression' | 'missing' | 'failed' | 'skipped'
    status: str

    @property
    def delta_percent(self) -> Optional[float]:
        if not self.baseline_cycles or self.current_cycles is None:
            return None
        return (
            (self.current_cycles - self.baseline_cycles)
            * 100.0 / self.baseline_cycles
        )


def compare_runs(
    current: List[Dict[str, object]],
    baseline: Dict[str, object],
    tolerance: Optional[float] = None,
) -> List[ComparisonRow]:
    """Diff current records against a baseline document.

    A record whose cycles exceed the baseline by more than ``tolerance``
    percent is a regression; one absent from the baseline is 'missing'
    (the baseline needs regenerating) — both fail the gate, as does a
    cell whose measurement itself failed (``status='failed'``).  Only
    simulated *cycles* are toleranced: host-side measurement fields
    (:data:`HOST_METRIC_FIELDS` — wall clocks, rates, backend tags)
    never participate.
    A baseline record with no current counterpart becomes a 'skipped'
    row: the gate may legitimately measure a subset (e.g. ``--quick``),
    but the table must say what the subset left uncovered rather than
    silently shrinking.  Skipped rows never fail the gate.
    """
    if tolerance is None:
        tolerance = default_tolerance()
    by_key = {
        (
            r["program"], r["machine"], r["variant"],
            r.get("width"), r.get("height"),
        ): r
        for r in baseline.get("records", [])
    }
    rows: List[ComparisonRow] = []
    measured = set()
    for record in current:
        key = (
            record["program"], record["machine"], record["variant"],
            record.get("width"), record.get("height"),
        )
        measured.add(key)
        base = by_key.get(key)
        if record.get("status", "ok") != "ok":
            base_cycles = base["cycles"] if base is not None else None
            status = "failed"
        elif base is None:
            status, base_cycles = "missing", None
        else:
            base_cycles = base["cycles"]
            delta = (
                (record["cycles"] - base_cycles) * 100.0 / base_cycles
                if base_cycles else 0.0
            )
            if delta > tolerance:
                status = "regression"
            elif delta < 0:
                status = "improved"
            else:
                status = "ok"
        rows.append(
            ComparisonRow(
                program=record["program"],
                machine=record["machine"],
                variant=record["variant"],
                baseline_cycles=base_cycles,
                current_cycles=record["cycles"],
                status=status,
            )
        )
    for key in sorted(set(by_key) - measured, key=str):
        base = by_key[key]
        rows.append(
            ComparisonRow(
                program=base["program"],
                machine=base["machine"],
                variant=base["variant"],
                baseline_cycles=base["cycles"],
                current_cycles=None,
                status="skipped",
            )
        )
    return rows


def gate_passed(rows: Iterable[ComparisonRow]) -> bool:
    return all(
        row.status in ("ok", "improved", "skipped") for row in rows
    )


def backend_mismatch(
    records: List[Dict[str, object]],
    baseline: Dict[str, object],
) -> Optional[str]:
    """A message when current records and baseline used different
    simulator backends, else None.

    Cycle counts are backend-independent by the parity contract, but a
    silent mismatch hides exactly the bugs the differential gate exists
    to catch — so ``--compare`` refuses unless explicitly overridden
    (``--allow-backend-mismatch``).  Baselines predating the
    ``sim_backend`` field count as ``interp`` measurements.
    """
    base_backend = str(baseline.get("sim_backend", "interp"))
    current = sorted({
        str(r.get("sim_backend", "interp"))
        for r in records
        if r.get("status", "ok") == "ok"
    })
    mismatched = [b for b in current if b != base_backend]
    if not mismatched:
        return None
    return (
        f"baseline {baseline.get('tag', '?')!r} was measured with the "
        f"{base_backend!r} simulator backend but the current run used "
        f"{', '.join(repr(b) for b in current)}; regenerate the baseline "
        "or pass --allow-backend-mismatch to compare anyway"
    )


def check_sim_rate(
    records: List[Dict[str, object]], floor: float
) -> List[str]:
    """Enforce a minimum simulated-instructions/sec over a run.

    The gate passes when the *fastest* measurable cell reaches ``floor``
    — the floor asserts the backend's throughput capability, and small
    cells are dominated by staging, not execution.  Only cells that
    actually ran on the compiled backend count: a fleet-wide fallback to
    the interpreter must fail the gate, not dodge it.  Returns one
    message per violation; empty means the gate holds.
    """
    problems: List[str] = []
    rates = [
        (r["sim_instrs_per_sec"], r)
        for r in records
        if r.get("status", "ok") == "ok"
        and r.get("sim_backend") == "compiled"
        and r.get("sim_instrs_per_sec") is not None
    ]
    if not rates:
        problems.append(
            "no successful compiled-backend cells with a measurable "
            f"simulation rate (floor {floor:g} instrs/sec unenforceable)"
        )
        return problems
    best_rate, best = max(rates, key=lambda item: item[0])
    if best_rate < floor:
        problems.append(
            f"peak simulation rate {best_rate:,.0f} instrs/sec "
            f"({best['program']}/{best['machine']}/{best['variant']}) is "
            f"below the {floor:,.0f} instrs/sec floor"
        )
    return problems


def compare_backends(
    a_records: List[Dict[str, object]],
    b_records: List[Dict[str, object]],
) -> List[str]:
    """Differential interp-vs-compiled check over two record sets.

    Returns one message per divergence in any :data:`DIFF_FIELDS` value
    (outputs, cycles, loads/stores, cache misses) between records of the
    same (program, machine, variant, size) cell, plus one per cell that
    exists on only one side or failed on either.  Empty means the
    backends are observationally identical on this matrix.
    """

    def key(r: Dict[str, object]) -> Tuple:
        return (
            r["program"], r["machine"], r["variant"],
            r.get("width"), r.get("height"),
        )

    def name(k: Tuple) -> str:
        return f"{k[0]}/{k[1]}/{k[2]}@{k[3]}x{k[4]}"

    a_by, b_by = {key(r): r for r in a_records}, {key(r): r for r in b_records}
    problems: List[str] = []
    for k in sorted(set(a_by) | set(b_by), key=str):
        a, b = a_by.get(k), b_by.get(k)
        if a is None or b is None:
            side = "first" if a is None else "second"
            problems.append(f"{name(k)}: missing from the {side} run")
            continue
        failed = [
            f"{r.get('sim_backend', '?')}: {r.get('error') or 'failed'}"
            for r in (a, b)
            if r.get("status", "ok") != "ok"
        ]
        if failed:
            problems.append(f"{name(k)}: " + "; ".join(failed))
            continue
        for field_name in DIFF_FIELDS:
            if a.get(field_name) != b.get(field_name):
                problems.append(
                    f"{name(k)}: {field_name} diverged — "
                    f"{a.get('sim_backend', '?')}={a.get(field_name)!r} "
                    f"vs {b.get('sim_backend', '?')}={b.get(field_name)!r}"
                )
    return problems


def format_compare_table(
    rows: List[ComparisonRow], tolerance: float
) -> str:
    header = (
        f"{'Program':<14} {'Machine':<8} {'Variant':<15} "
        f"{'Baseline':>10} {'Current':>10} {'Delta %':>8}  Status"
    )
    lines = [
        f"Regression gate (tolerance {tolerance:+.2f}% cycles)",
        header,
        "-" * len(header),
    ]
    for row in rows:
        base = (
            str(row.baseline_cycles)
            if row.baseline_cycles is not None else "-"
        )
        current = (
            str(row.current_cycles)
            if row.current_cycles is not None else "-"
        )
        delta = (
            f"{row.delta_percent:+8.2f}"
            if row.delta_percent is not None else f"{'-':>8}"
        )
        lines.append(
            f"{row.program:<14} {row.machine:<8} {row.variant:<15} "
            f"{base:>10} {current:>10} {delta}  {row.status}"
        )
    bad = [
        r for r in rows if r.status not in ("ok", "improved", "skipped")
    ]
    lines.append(
        "gate: PASS"
        if not bad else
        f"gate: FAIL ({len(bad)} of {len(rows)} records "
        "regressed, failed, or missing from baseline)"
    )
    return "\n".join(lines)


def parse_phase_budgets(specs: Sequence[str]) -> Dict[str, float]:
    """Parse ``--phase-budget`` values: ``PHASE=SECONDS``, comma-separable.

    ``["cleanup=0.3", "global_const_prop=0.2,licm=1"]`` →
    ``{"cleanup": 0.3, "global_const_prop": 0.2, "licm": 1.0}``.
    """
    budgets: Dict[str, float] = {}
    for spec in specs:
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            phase, _, amount = item.partition("=")
            phase = phase.strip()
            if not phase or not amount:
                raise ValueError(
                    f"bad phase budget {item!r} (want PHASE=SECONDS)"
                )
            try:
                seconds = float(amount)
            except ValueError:
                raise ValueError(
                    f"bad phase budget {item!r}: {amount!r} is not a number"
                ) from None
            if seconds <= 0:
                raise ValueError(
                    f"bad phase budget {item!r}: budget must be positive"
                )
            budgets[phase] = seconds
    return budgets


def check_phase_budgets(
    records: List[Dict[str, object]],
    budgets: Dict[str, float],
) -> List[str]:
    """Check aggregated per-phase compile time against the budgets.

    Aggregation matches :func:`format_stats`: the sum of each phase's
    ``phase_seconds`` across every record (cached entries report the
    timings of the original compilation).  Returns one overrun message
    per busted budget; an empty list means every budget held.  A
    budgeted phase that never ran is an overrun too — a silently renamed
    or dropped phase must not make the gate vacuously pass.
    """
    phases: Dict[str, float] = {}
    for record in records:
        for stage, seconds in record.get("phase_seconds", {}).items():
            phases[stage] = phases.get(stage, 0.0) + seconds
    overruns: List[str] = []
    for phase in sorted(budgets):
        budget = budgets[phase]
        if phase not in phases:
            overruns.append(
                f"phase {phase!r} has a budget of {budget:g}s but never "
                "ran (renamed or dropped?)"
            )
        elif phases[phase] > budget:
            overruns.append(
                f"phase {phase!r} spent {phases[phase]:.3f}s, over its "
                f"{budget:g}s budget"
            )
    return overruns


def format_stats(records: List[Dict[str, object]]) -> str:
    """Aggregate per-phase compile timing plus simulate/compile totals."""
    phases: Dict[str, float] = {}
    compile_total = sim_total = 0.0
    hits = 0
    for record in records:
        compile_total += record["compile_seconds"]
        sim_total += record["sim_seconds"]
        hits += 1 if record["compile_cache_hit"] else 0
        for stage, seconds in record["phase_seconds"].items():
            phases[stage] = phases.get(stage, 0.0) + seconds
    lines = [
        f"{len(records)} records: compile {compile_total:.2f}s "
        f"({hits} cache hits), simulate {sim_total:.2f}s",
        "per-phase compile time (as-compiled, cached entries included):",
    ]
    for stage in sorted(phases, key=phases.get, reverse=True):
        lines.append(f"  {stage:20s} {phases[stage] * 1000:10.1f} ms")
    return "\n".join(lines)
