"""Regeneration of the paper's tables.

* Table I — the benchmark inventory (name, description, lines of code).
* Table II — DEC Alpha: cycles under ``cc``/``vpo``/loads-coalesced/
  loads&stores-coalesced plus percent savings.
* Table III — Motorola 88100, same columns.
* "Table IV" — the Motorola 68030 paragraph of §3 cast in the same shape
  (the paper reports it in prose: every program got slower).

The percent-savings column reproduces the paper's formula
``(col3 − col5) × 100 / col2`` (savings of the fully coalesced version
over vpo, normalized by the native compiler's time) and additionally the
more natural ``(vpo − best) / vpo``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.bench.harness import COLUMNS, BenchResult, run_benchmark
from repro.bench.programs import BENCHMARKS, TABLE_ORDER, get_benchmark


@dataclass
class TableRow:
    """One benchmark's row of a Table II/III-style table."""

    benchmark: str
    cc: int
    vpo: int
    coalesce_loads: int
    coalesce_all: int
    output_ok: bool

    @property
    def percent_savings_paper(self) -> float:
        """The paper's column 6: (col3 - col5) * 100 / col2."""
        return (self.vpo - self.coalesce_all) * 100.0 / self.cc

    @property
    def percent_savings_loads(self) -> float:
        return (self.vpo - self.coalesce_loads) * 100.0 / self.vpo

    @property
    def percent_savings_best(self) -> float:
        best = min(self.coalesce_loads, self.coalesce_all)
        return (self.vpo - best) * 100.0 / self.vpo


def table1_rows() -> List[Dict[str, object]]:
    """Table I: benchmark name, description and lines of code."""
    rows = []
    for name in TABLE_ORDER:
        program = get_benchmark(name)
        rows.append(
            {
                "name": program.name,
                "description": program.description,
                "lines_of_code": program.lines_of_code,
            }
        )
    return rows


def table_rows(
    machine: str,
    benchmarks: Optional[Iterable[str]] = None,
    width: int = 64,
    height: int = 64,
    check: bool = True,
) -> List[TableRow]:
    """Measure every benchmark under every column on ``machine``."""
    rows: List[TableRow] = []
    for name in benchmarks or TABLE_ORDER:
        cycles: Dict[str, int] = {}
        ok = True
        for column in COLUMNS:
            result = run_benchmark(
                name, machine, column, width=width, height=height,
                check=check,
            )
            cycles[column] = result.cycles
            ok = ok and result.output_ok
        rows.append(
            TableRow(
                benchmark=name,
                cc=cycles["cc"],
                vpo=cycles["vpo"],
                coalesce_loads=cycles["coalesce-loads"],
                coalesce_all=cycles["coalesce-all"],
                output_ok=ok,
            )
        )
    return rows


def format_table(machine: str, rows: List[TableRow]) -> str:
    """Render rows the way the paper's Tables II/III read."""
    header = (
        f"{'Program':<14} {'cc -O':>10} {'vpcc/vpo -O':>12} "
        f"{'loads':>10} {'loads+stores':>13} {'% (paper)':>10} "
        f"{'% (vs vpo)':>10}"
    )
    lines = [
        f"Simulated cycles on {machine} "
        f"(lower is better; '% (paper)' = (col3-col5)*100/col2)",
        header,
        "-" * len(header),
    ]
    for row in rows:
        flag = "" if row.output_ok else "  [OUTPUT MISMATCH]"
        lines.append(
            f"{row.benchmark:<14} {row.cc:>10} {row.vpo:>12} "
            f"{row.coalesce_loads:>10} {row.coalesce_all:>13} "
            f"{row.percent_savings_paper:>9.2f} "
            f"{row.percent_savings_best:>9.2f}{flag}"
        )
    return "\n".join(lines)


def format_table1() -> str:
    rows = table1_rows()
    width = max(len(str(r["description"])) for r in rows)
    lines = [
        f"{'Program':<14} {'Description':<{width}} {'LoC':>5}",
        "-" * (22 + width),
    ]
    for row in rows:
        lines.append(
            f"{row['name']:<14} {row['description']:<{width}} "
            f"{row['lines_of_code']:>5}"
        )
    return "\n".join(lines)
