"""Disk-backed compile-session cache.

Compiling one benchmark column takes seconds of pure-Python work
(front end, dataflow, unrolling, coalescing, lowering, scheduling);
simulating it takes milliseconds.  Because the final module round-trips
through the RTL text format bit-for-bit (``format_module`` /
``parse_module``), a finished compilation can be persisted and revived
in a later process, skipping the whole frontend/opt/lowering path.

A cache entry is keyed by the SHA-256 of four things:

* the MiniC **source text**,
* the **machine** name,
* the full **pipeline config** (every ``PipelineConfig`` field),
* the **pass-list fingerprint** — a hash over the contents of every
  Python file that participates in compilation (``pipeline.py`` plus the
  ``frontend``, ``ir``, ``analysis``, ``opt``, ``coalesce``, ``machine``
  and ``sched`` packages), so editing any pass invalidates every entry.

Storage is delegated to the crash-safe content-addressed
:class:`repro.service.artifacts.ArtifactStore`: entries are written to
a temp file, fsync'd, and hardlinked into place (link-once — an
existing entry is never replaced), framed by an integrity header whose
length and SHA-256 every read re-verifies.  A corrupted or stale entry
is treated as a miss and deleted; any ``OSError`` on the read or write
path (disk full, permissions, a yanked directory) logs a diagnostic
and bypasses the cache — the compile itself never fails because of
cache I/O.  The cache lives in ``$REPRO_CACHE_DIR`` (default
``~/.cache/repro-compile``) and is disabled entirely by
``REPRO_CACHE=off``.

Disk usage is bounded: the cache holds at most ``max_bytes``
(``REPRO_CACHE_MAX_BYTES``, default 256 MiB) of entries, pruned
oldest-mtime-first on every store; a hit refreshes the entry's mtime, so
eviction is LRU rather than FIFO.  ``python -m repro cache --stats``
inspects the store, ``--clear`` empties it.

:class:`SingleFlight` collapses *in-flight* duplicates: when several
threads (the compile service's worker pool) request the same cache key
at once, one thread compiles and the rest wait and share its result
instead of compiling the same source N times in parallel.  Across
*processes* (the fleet's workers, CI shards, a human running ``bench``)
the same guarantee comes from the artifact store's lease protocol:
``cached_compile_minic`` runs the whole miss path through
``ArtifactStore.fetch_or_compute``, so the first process to reach a
cold key compiles it while the rest block-with-deadline on its lease
and read the published artifact — or, if the holder dies, steal the
lease (fencing-token rule, DESIGN.md §8b) and compile in its place.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import asdict
from functools import lru_cache
from pathlib import Path
from typing import Dict, Optional, Union

from repro.coalesce import CoalesceReport
from repro.errors import ReproError
from repro.ir.printer import format_module
from repro.machine import MachineDescription, get_machine
from repro.pipeline import (
    CompiledProgram,
    PipelineConfig,
    compile_minic,
    get_config,
)

CACHE_SCHEMA = 1

#: Default size cap of the disk cache; REPRO_CACHE_MAX_BYTES overrides
#: (0 or a negative value lifts the cap).
DEFAULT_MAX_BYTES = 256 * 1024 * 1024


def default_max_bytes() -> Optional[int]:
    """The configured cap in bytes, or ``None`` for unbounded."""
    raw = os.environ.get("REPRO_CACHE_MAX_BYTES", "").strip()
    if not raw:
        return DEFAULT_MAX_BYTES
    try:
        value = int(raw)
    except ValueError:
        return DEFAULT_MAX_BYTES
    return value if value > 0 else None

#: Package subtrees whose source text participates in compilation.  The
#: sim/ and sanitize/ trees are deliberately absent: they run *after*
#: compilation and do not affect the cached module.
_COMPILE_TREES = (
    "frontend", "ir", "analysis", "opt", "coalesce", "machine", "sched",
)


@lru_cache(maxsize=1)
def pass_fingerprint() -> str:
    """Hash of every compiler source file; changes when any pass does."""
    import repro

    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    files = [root / "pipeline.py", root / "errors.py"]
    for tree in _COMPILE_TREES:
        files.extend(sorted((root / tree).rglob("*.py")))
    for path in files:
        digest.update(path.name.encode())
        digest.update(path.read_bytes())
    return digest.hexdigest()[:16]


def config_fingerprint(config: PipelineConfig) -> str:
    """Stable serialization of every pipeline knob."""
    return json.dumps(asdict(config), sort_keys=True)


def cache_key(
    source: str,
    machine_name: str,
    config: PipelineConfig,
    fingerprint: Optional[str] = None,
) -> str:
    """The cache key for one (source, machine, config) compilation."""
    if fingerprint is None:
        fingerprint = pass_fingerprint()
    blob = "\x00".join(
        (
            f"schema={CACHE_SCHEMA}",
            f"passes={fingerprint}",
            f"machine={machine_name}",
            f"config={config_fingerprint(config)}",
            source,
        )
    )
    return hashlib.sha256(blob.encode()).hexdigest()


class CompileCache:
    """One directory of JSON-serialized compilations.

    Corruption is expected (interrupted writers, disk-full truncation,
    concurrent benchmark workers): a torn or schema-mismatched entry is
    logged to the diagnostic ``sink``, deleted, and treated as a miss —
    never a crash, never a stale program.  The bytes on disk belong to
    an :class:`~repro.service.artifacts.ArtifactStore` (``.artifacts``),
    which adds the integrity framing, the link-once publish, the lease
    protocol, and the durable cross-process event journal behind the
    ``hit``/``dedup``/``steal``/``corruption`` counters in
    :meth:`stats`.
    """

    def __init__(
        self,
        directory: Union[str, Path, None] = None,
        sink=None,
        max_bytes: Union[int, None] = -1,
        lease_ttl: Optional[float] = None,
        faults=None,
    ):
        from repro.service.artifacts import ArtifactStore

        if directory is None:
            directory = os.environ.get("REPRO_CACHE_DIR") or (
                Path.home() / ".cache" / "repro-compile"
            )
        self.directory = Path(directory)
        # -1 means "use the configured default"; None lifts the cap.
        self.max_bytes = default_max_bytes() if max_bytes == -1 else max_bytes
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        if sink is None:
            from repro.sanitize import DiagnosticSink

            sink = DiagnosticSink()
        self.sink = sink
        self.artifacts = ArtifactStore(
            self.directory, ttl=lease_ttl, sink=sink, faults=faults,
        )

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    @staticmethod
    def validate_payload(payload) -> dict:
        """Shape-check a decoded payload; raises ``ValueError``.

        A truncated-then-concatenated or hand-edited entry can be valid
        JSON yet still unusable; check shape before reviving.
        """
        if not isinstance(payload, dict):
            raise ValueError("payload is not an object")
        if payload.get("schema") != CACHE_SCHEMA:
            raise ValueError("schema mismatch")
        if not isinstance(payload.get("module"), str):
            raise ValueError("missing or non-text 'module' field")
        if not isinstance(payload.get("machine"), str):
            raise ValueError("missing or non-text 'machine' field")
        return payload

    # -- raw payload access -------------------------------------------------
    def lookup(self, key: str) -> Optional[dict]:
        """The stored payload for ``key``, or None (corrupt files are
        removed, logged, and reported as misses)."""
        data = self.artifacts.read(key)  # integrity-verified or dropped
        if data is None:
            self.misses += 1
            return None
        try:
            payload = self.validate_payload(json.loads(data))
        except ValueError as exc:
            self.misses += 1
            self.artifacts.drop(key, str(exc))
            return None
        self.hits += 1
        self.artifacts.note_hit(key)  # journal + refresh LRU recency
        return payload

    def store(self, key: str, payload: dict) -> None:
        """Durably persist ``payload``; I/O failures are non-fatal.

        The temp file is flushed and fsync'd before being hardlinked
        into place, so a crash mid-store leaves either no entry or a
        complete one — a reader can never observe a half-written
        payload under the final name, and the integrity header catches
        anything that slips through anyway.  Link-once means a racing
        writer's complete entry is kept rather than replaced.
        """
        try:
            data = json.dumps(payload).encode()
        except (TypeError, ValueError):
            return
        status = self.artifacts.publish(key, data)
        if status != "error":
            self.prune()

    def prune(self, max_bytes: Union[int, None] = -1) -> int:
        """Evict oldest-mtime entries until the store fits ``max_bytes``
        (default: the cache's own cap); returns how many were evicted.

        The entry just stored is the newest, so a prune right after a
        store can evict anything but it.  Concurrent pruners racing on
        the same file are harmless: a lost unlink is just a miss.
        """
        if max_bytes == -1:
            max_bytes = self.max_bytes
        if max_bytes is None or not self.directory.is_dir():
            return 0
        entries = []
        total = 0
        for path in self.directory.glob("*.json"):
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
            total += stat.st_size
        entries.sort()
        evicted = 0
        for mtime, size, path in entries:
            if total <= max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            evicted += 1
        self.evictions += evicted
        return evicted

    def stats(self) -> Dict[str, object]:
        """On-disk shape, this process's hit/miss counters, and the
        fleet-wide counters aggregated from the store's durable event
        journal (``dedup_hits``, ``steals``, ``corruption_drops``, …) —
        the journal survives process exit, so a fresh ``cache --stats``
        can report what an entire fleet run did."""
        entries = 0
        total = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.json"):
                try:
                    total += path.stat().st_size
                except OSError:
                    continue
                entries += 1
        stats: Dict[str, object] = {
            "directory": str(self.directory),
            "entries": entries,
            "bytes": total,
            "max_bytes": self.max_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "lease_ttl": self.artifacts.ttl,
        }
        stats.update(self.artifacts.counters())
        return stats

    def clear(self) -> int:
        """Delete every entry (plus stray temp files, leases, per-key
        locks, and the event journal); returns how many entries were
        removed."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
            for path in self.directory.glob("*.tmp"):
                try:
                    path.unlink()
                except OSError:
                    pass
            self.artifacts.clear()
        return removed

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*.json"))


class _Flight:
    """One in-flight computation other threads can wait on."""

    __slots__ = ("event", "value", "error")

    def __init__(self):
        self.event = threading.Event()
        self.value = None
        self.error: Optional[BaseException] = None


class SingleFlight:
    """Per-key deduplication of concurrent identical computations.

    ``do(key, fn)`` runs ``fn`` in exactly one of the threads that ask
    for ``key`` while it is in flight; the others block and receive the
    leader's result (or its exception).  Once the flight lands the key
    is forgotten, so a later call computes afresh — the disk cache, not
    this class, provides cross-call reuse.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._flights: Dict[str, _Flight] = {}
        self.shared = 0  # how many calls piggybacked on a leader

    def do(self, key: str, fn):
        """Returns ``(result, was_shared)``."""
        with self._lock:
            flight = self._flights.get(key)
            if flight is None:
                flight = _Flight()
                self._flights[key] = flight
                leader = True
            else:
                leader = False
                self.shared += 1
        if leader:
            try:
                flight.value = fn()
            except BaseException as exc:
                flight.error = exc
                raise
            finally:
                flight.event.set()
                with self._lock:
                    self._flights.pop(key, None)
            return flight.value, False
        flight.event.wait()
        if flight.error is not None:
            raise flight.error
        return flight.value, True


def cache_enabled() -> bool:
    return os.environ.get("REPRO_CACHE", "on").lower() not in (
        "off", "0", "false", "no",
    )


_default_cache: Optional[CompileCache] = None


def default_cache() -> Optional[CompileCache]:
    """The process-wide cache, or None when REPRO_CACHE=off."""
    global _default_cache
    if not cache_enabled():
        return None
    if (
        _default_cache is None
        or str(_default_cache.directory)
        != str(CompileCache().directory)
    ):
        _default_cache = CompileCache()
    return _default_cache


# -- (de)serialization ------------------------------------------------------
def serialize_program(program: CompiledProgram) -> dict:
    """The JSON payload for one finished compilation."""
    return {
        "schema": CACHE_SCHEMA,
        "module_name": program.module.name,
        "module": format_module(program.module),
        "machine": program.machine.name,
        "coalesce_reports": [asdict(r) for r in program.coalesce_reports],
        "pass_stats": program.pass_stats,
    }


def revive_program(
    payload: dict,
    machine: MachineDescription,
    config: PipelineConfig,
) -> Optional[CompiledProgram]:
    """Rebuild a CompiledProgram from a payload; None if it is unusable."""
    from repro.ir.parser import parse_module

    try:
        module = parse_module(
            payload["module"], name=payload.get("module_name", "module")
        )
        reports = []
        for entry in payload.get("coalesce_reports", []):
            entry = dict(entry)
            entry["rejections"] = [
                tuple(pair) for pair in entry.get("rejections", [])
            ]
            entry["elisions"] = [
                tuple(pair) for pair in entry.get("elisions", [])
            ]
            reports.append(CoalesceReport(**entry))
        stats: Dict[str, Dict[str, float]] = payload.get("pass_stats", {})
    except Exception:
        return None
    return CompiledProgram(
        module, machine, config,
        coalesce_reports=reports,
        pass_stats=stats,
        cache_hit=True,
    )


def cached_compile_minic(
    source: str,
    machine: Union[str, MachineDescription] = "alpha",
    config: Union[str, PipelineConfig, None] = None,
    cache: Optional[CompileCache] = None,
    flight: Optional[SingleFlight] = None,
    cancel=None,
    faults=None,
    lease_wait: Optional[float] = None,
    **overrides,
) -> CompiledProgram:
    """``compile_minic`` with the disk cache wrapped around it.

    Sanitizer/differential configurations are never cached: their value
    is in the diagnostics, which re-running the passes produces and a
    cache hit would silently drop.  Fault-isolated compilations
    (``on_pass_failure != 'raise'`` or an active ``REPRO_FAULTS`` plan)
    bypass the cache too: a degraded program must not be revived as if
    it were the full compilation, and a hit would lose its
    ``pass_failures``.  The one exception is a plan made purely of
    disk-fault kinds (``FaultPlan.disk_only()``): those faults target
    the artifact store itself, so the cache stays ON and the plan is
    armed *inside* the store instead.

    ``flight`` (a :class:`SingleFlight`) dedups concurrent identical
    keys within this process; across processes the same dedup comes
    from the store's lease protocol — the miss path runs through
    ``ArtifactStore.fetch_or_compute``, so the first process compiles
    while the rest wait on its lease (stealing it if the holder dies)
    and share the published artifact.  ``lease_wait`` bounds that wait;
    on exhaustion the compile happens locally — degraded to duplicate
    work, never to an error.  ``cancel`` is the pipeline's cancellation
    probe (checked at stage boundaries and at every lease poll); the
    cache-hit path never reaches it.
    """
    if isinstance(machine, str):
        machine = get_machine(machine)
    config = get_config(config, **overrides)
    if cache is None:
        cache = default_cache()
    plan = faults
    if plan is None and os.environ.get("REPRO_FAULTS"):
        from repro.resilience.faults import FaultPlan

        try:
            plan = FaultPlan.from_env()
        except ReproError:
            # Unparseable plan: stay out of the cache and let the
            # compile path surface the configuration error.
            plan = object()
    plan_blocks_cache = plan is not None and not (
        hasattr(plan, "disk_only") and plan.disk_only()
    )
    if (
        cache is None or config.sanitize or config.differential
        or config.on_pass_failure != "raise"
        or config.disabled_passes
        or plan_blocks_cache
    ):
        return compile_minic(source, machine, config, cancel=cancel)
    if plan is not None and cache.artifacts.faults is None:
        cache.artifacts.faults = plan  # arm disk faults inside the store

    key = cache_key(source, machine.name, config)

    def produce():
        compiled = compile_minic(source, machine, config, cancel=cancel)
        return compiled, json.dumps(serialize_program(compiled)).encode()

    def decode(data: bytes) -> CompiledProgram:
        payload = CompileCache.validate_payload(json.loads(data))
        revived = revive_program(payload, machine, config)
        if revived is None:
            raise ValueError("payload does not revive to a program")
        return revived

    def compile_through_cache() -> CompiledProgram:
        try:
            program, role = cache.artifacts.fetch_or_compute(
                key, produce, decode=decode,
                wait_timeout=lease_wait, cancel=cancel,
            )
        except OSError:
            # Anything the store could not degrade internally (a dying
            # filesystem, a yanked cache directory): compile uncached.
            return compile_minic(source, machine, config, cancel=cancel)
        if role in ("hit", "dedup"):
            cache.hits += 1
        else:
            cache.misses += 1
            cache.prune()
        return program

    if flight is None:
        return compile_through_cache()
    program, _ = flight.do(key, compile_through_cache)
    return program
