"""Disk-backed compile-session cache.

Compiling one benchmark column takes seconds of pure-Python work
(front end, dataflow, unrolling, coalescing, lowering, scheduling);
simulating it takes milliseconds.  Because the final module round-trips
through the RTL text format bit-for-bit (``format_module`` /
``parse_module``), a finished compilation can be persisted and revived
in a later process, skipping the whole frontend/opt/lowering path.

A cache entry is keyed by the SHA-256 of four things:

* the MiniC **source text**,
* the **machine** name,
* the full **pipeline config** (every ``PipelineConfig`` field),
* the **pass-list fingerprint** — a hash over the contents of every
  Python file that participates in compilation (``pipeline.py`` plus the
  ``frontend``, ``ir``, ``analysis``, ``opt``, ``coalesce``, ``machine``
  and ``sched`` packages), so editing any pass invalidates every entry.

Entries are JSON files written atomically (temp file + ``os.replace``);
a corrupted or stale entry is treated as a miss and deleted.  The cache
lives in ``$REPRO_CACHE_DIR`` (default ``~/.cache/repro-compile``) and
is disabled entirely by ``REPRO_CACHE=off``.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import asdict
from functools import lru_cache
from pathlib import Path
from typing import Dict, Optional, Union

from repro.coalesce import CoalesceReport
from repro.ir.printer import format_module
from repro.machine import MachineDescription, get_machine
from repro.pipeline import (
    CompiledProgram,
    PipelineConfig,
    compile_minic,
    get_config,
)

CACHE_SCHEMA = 1

#: Package subtrees whose source text participates in compilation.  The
#: sim/ and sanitize/ trees are deliberately absent: they run *after*
#: compilation and do not affect the cached module.
_COMPILE_TREES = (
    "frontend", "ir", "analysis", "opt", "coalesce", "machine", "sched",
)


@lru_cache(maxsize=1)
def pass_fingerprint() -> str:
    """Hash of every compiler source file; changes when any pass does."""
    import repro

    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    files = [root / "pipeline.py", root / "errors.py"]
    for tree in _COMPILE_TREES:
        files.extend(sorted((root / tree).rglob("*.py")))
    for path in files:
        digest.update(path.name.encode())
        digest.update(path.read_bytes())
    return digest.hexdigest()[:16]


def config_fingerprint(config: PipelineConfig) -> str:
    """Stable serialization of every pipeline knob."""
    return json.dumps(asdict(config), sort_keys=True)


def cache_key(
    source: str,
    machine_name: str,
    config: PipelineConfig,
    fingerprint: Optional[str] = None,
) -> str:
    """The cache key for one (source, machine, config) compilation."""
    if fingerprint is None:
        fingerprint = pass_fingerprint()
    blob = "\x00".join(
        (
            f"schema={CACHE_SCHEMA}",
            f"passes={fingerprint}",
            f"machine={machine_name}",
            f"config={config_fingerprint(config)}",
            source,
        )
    )
    return hashlib.sha256(blob.encode()).hexdigest()


class CompileCache:
    """One directory of JSON-serialized compilations.

    Corruption is expected (interrupted writers, disk-full truncation,
    concurrent benchmark workers): a torn or schema-mismatched entry is
    logged to the diagnostic ``sink``, deleted, and treated as a miss —
    never a crash, never a stale program.
    """

    def __init__(
        self,
        directory: Union[str, Path, None] = None,
        sink=None,
    ):
        if directory is None:
            directory = os.environ.get("REPRO_CACHE_DIR") or (
                Path.home() / ".cache" / "repro-compile"
            )
        self.directory = Path(directory)
        self.hits = 0
        self.misses = 0
        if sink is None:
            from repro.sanitize import DiagnosticSink

            sink = DiagnosticSink()
        self.sink = sink

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def _report_corrupt(self, path: Path, reason: str) -> None:
        try:
            self.sink.warning(
                "compile-cache",
                f"dropping corrupt cache entry {path.name}: {reason}",
                hint="the entry is recompiled; if this recurs, delete "
                     "the cache directory (REPRO_CACHE_DIR)",
            )
        except Exception:  # noqa: BLE001 — reporting must never break a miss
            pass

    # -- raw payload access -------------------------------------------------
    def lookup(self, key: str) -> Optional[dict]:
        """The stored payload for ``key``, or None (corrupt files are
        removed, logged, and reported as misses)."""
        path = self._path(key)
        try:
            with open(path) as handle:
                payload = json.load(handle)
            if not isinstance(payload, dict):
                raise ValueError("payload is not an object")
            if payload.get("schema") != CACHE_SCHEMA:
                raise ValueError("schema mismatch")
            # A truncated-then-concatenated or hand-edited entry can be
            # valid JSON yet still unusable; check shape before reviving.
            if not isinstance(payload.get("module"), str):
                raise ValueError("missing or non-text 'module' field")
            if not isinstance(payload.get("machine"), str):
                raise ValueError("missing or non-text 'machine' field")
        except FileNotFoundError:
            self.misses += 1
            return None
        except (ValueError, OSError) as exc:
            # Corrupted or unreadable entry: drop it and recompile.
            self.misses += 1
            self._report_corrupt(path, str(exc))
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.hits += 1
        return payload

    def store(self, key: str, payload: dict) -> None:
        """Atomically persist ``payload``; I/O failures are non-fatal.

        The temp file is flushed and fsync'd before the rename, so a
        crash mid-store leaves either no entry or a complete one — a
        reader can never observe a half-written payload under the final
        name.
        """
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=str(self.directory), suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w") as handle:
                    json.dump(payload, handle)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp, self._path(key))
            except BaseException:
                os.unlink(tmp)
                raise
        except OSError:
            pass

    def clear(self) -> int:
        """Delete every entry (and stray temp files); returns how many
        entries were removed."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
            for path in self.directory.glob("*.tmp"):
                try:
                    path.unlink()
                except OSError:
                    pass
        return removed

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*.json"))


def cache_enabled() -> bool:
    return os.environ.get("REPRO_CACHE", "on").lower() not in (
        "off", "0", "false", "no",
    )


_default_cache: Optional[CompileCache] = None


def default_cache() -> Optional[CompileCache]:
    """The process-wide cache, or None when REPRO_CACHE=off."""
    global _default_cache
    if not cache_enabled():
        return None
    if (
        _default_cache is None
        or str(_default_cache.directory)
        != str(CompileCache().directory)
    ):
        _default_cache = CompileCache()
    return _default_cache


# -- (de)serialization ------------------------------------------------------
def serialize_program(program: CompiledProgram) -> dict:
    """The JSON payload for one finished compilation."""
    return {
        "schema": CACHE_SCHEMA,
        "module_name": program.module.name,
        "module": format_module(program.module),
        "machine": program.machine.name,
        "coalesce_reports": [asdict(r) for r in program.coalesce_reports],
        "pass_stats": program.pass_stats,
    }


def revive_program(
    payload: dict,
    machine: MachineDescription,
    config: PipelineConfig,
) -> Optional[CompiledProgram]:
    """Rebuild a CompiledProgram from a payload; None if it is unusable."""
    from repro.ir.parser import parse_module

    try:
        module = parse_module(
            payload["module"], name=payload.get("module_name", "module")
        )
        reports = []
        for entry in payload.get("coalesce_reports", []):
            entry = dict(entry)
            entry["rejections"] = [
                tuple(pair) for pair in entry.get("rejections", [])
            ]
            reports.append(CoalesceReport(**entry))
        stats: Dict[str, Dict[str, float]] = payload.get("pass_stats", {})
    except Exception:
        return None
    return CompiledProgram(
        module, machine, config,
        coalesce_reports=reports,
        pass_stats=stats,
        cache_hit=True,
    )


def cached_compile_minic(
    source: str,
    machine: Union[str, MachineDescription] = "alpha",
    config: Union[str, PipelineConfig, None] = None,
    cache: Optional[CompileCache] = None,
    **overrides,
) -> CompiledProgram:
    """``compile_minic`` with the disk cache wrapped around it.

    Sanitizer/differential configurations are never cached: their value
    is in the diagnostics, which re-running the passes produces and a
    cache hit would silently drop.  Fault-isolated compilations
    (``on_pass_failure != 'raise'`` or an active ``REPRO_FAULTS`` plan)
    bypass the cache too: a degraded program must not be revived as if
    it were the full compilation, and a hit would lose its
    ``pass_failures``.
    """
    if isinstance(machine, str):
        machine = get_machine(machine)
    config = get_config(config, **overrides)
    if cache is None:
        cache = default_cache()
    if (
        cache is None or config.sanitize or config.differential
        or config.on_pass_failure != "raise"
        or config.disabled_passes
        or os.environ.get("REPRO_FAULTS")
    ):
        return compile_minic(source, machine, config)

    key = cache_key(source, machine.name, config)
    payload = cache.lookup(key)
    if payload is not None:
        program = revive_program(payload, machine, config)
        if program is not None:
            return program
    program = compile_minic(source, machine, config)
    cache.store(key, serialize_program(program))
    return program
