"""Natural loop discovery and preheader insertion.

The coalescing algorithm (Figure 2) iterates over the loops of the current
function; this module finds them the classic way: back edges under the
dominator tree, each defining a natural loop, loops sharing a header merged.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.analysis.cfgutil import predecessors, reachable_labels
from repro.analysis.dominators import dominates, immediate_dominators
from repro.ir.function import BasicBlock, Function
from repro.ir.rtl import Jump


class Loop:
    """One natural loop.

    Attributes:
        header: label of the loop header (the unique entry block).
        blocks: labels of all blocks in the loop, header included.
        latches: in-loop blocks with a back edge to the header.
    """

    def __init__(self, header: str, blocks: Set[str], latches: Set[str]):
        self.header = header
        self.blocks = blocks
        self.latches = latches

    def exits(self, func: Function) -> Set[str]:
        """Labels outside the loop that loop blocks branch to."""
        outside: Set[str] = set()
        for label in self.blocks:
            for succ in func.block(label).successors():
                if succ not in self.blocks:
                    outside.add(succ)
        return outside

    def body_instr_count(self, func: Function) -> int:
        return sum(len(func.block(label).instrs) for label in self.blocks)

    def contains(self, label: str) -> bool:
        return label in self.blocks

    def __repr__(self) -> str:
        return f"<Loop header={self.header} blocks={sorted(self.blocks)}>"


def find_loops(func: Function) -> List[Loop]:
    """All natural loops of ``func``, innermost first.

    "Innermost first" is approximated by sorting on block-set size, which
    is exact for properly nested loops.
    """
    idom = immediate_dominators(func)
    reachable = reachable_labels(func)
    preds = predecessors(func)

    loops_by_header: Dict[str, Loop] = {}
    for block in func.blocks:
        if block.label not in reachable:
            continue
        for succ in block.successors():
            if succ in reachable and dominates(idom, succ, block.label):
                # back edge block -> succ
                header = succ
                body = _natural_loop_body(header, block.label, preds)
                if header in loops_by_header:
                    existing = loops_by_header[header]
                    existing.blocks |= body
                    existing.latches.add(block.label)
                else:
                    loops_by_header[header] = Loop(
                        header, body, {block.label}
                    )
    return sorted(loops_by_header.values(), key=lambda l: len(l.blocks))


def _natural_loop_body(
    header: str, latch: str, preds: Dict[str, List[str]]
) -> Set[str]:
    body = {header, latch}
    work = [latch]
    while work:
        label = work.pop()
        if label == header:
            continue
        for pred in preds[label]:
            if pred not in body:
                body.add(pred)
                work.append(pred)
    return body


def ensure_preheader(func: Function, loop: Loop) -> BasicBlock:
    """Return the loop's preheader, creating one if necessary.

    A preheader is a block outside the loop whose only successor is the
    header and which is the only outside predecessor of the header.  The
    coalescer inserts its run-time alias/alignment checks there (§2.2).
    """
    preds = predecessors(func)
    outside = [p for p in preds[loop.header] if p not in loop.blocks]
    if len(outside) == 1:
        candidate = func.block(outside[0])
        term = candidate.terminator
        if isinstance(term, Jump) and term.target == loop.header:
            return candidate

    label = func.new_label("preh")
    index = func.block_index(loop.header)
    preheader = BasicBlock(label, [Jump(loop.header)])
    func.blocks.insert(index, preheader)
    for pred_label in outside:
        func.block(pred_label).retarget(loop.header, label)
    return preheader
