"""Classic backward liveness analysis over virtual registers."""

from __future__ import annotations

from typing import Dict, List, Set

from repro.analysis.cfgutil import predecessors, reachable_labels
from repro.ir.function import Function
from repro.ir.rtl import Instr


class LivenessInfo:
    """Live-in / live-out register index sets per block."""

    def __init__(
        self,
        live_in: Dict[str, Set[int]],
        live_out: Dict[str, Set[int]],
    ):
        self.live_in = live_in
        self.live_out = live_out

    def live_after(self, func: Function, label: str) -> List[Set[int]]:
        """Registers live *after* each instruction of block ``label``.

        Returned list is parallel to ``block.instrs``.
        """
        block = func.block(label)
        live = set(self.live_out[label])
        after: List[Set[int]] = [set()] * len(block.instrs)
        for index in range(len(block.instrs) - 1, -1, -1):
            after[index] = set(live)
            instr = block.instrs[index]
            for reg in instr.defs():
                live.discard(reg.index)
            for reg in instr.uses():
                live.add(reg.index)
        return after


def _block_use_def(instrs: List[Instr]) -> (set, set):
    use: Set[int] = set()
    define: Set[int] = set()
    for instr in instrs:
        for reg in instr.uses():
            if reg.index not in define:
                use.add(reg.index)
        for reg in instr.defs():
            define.add(reg.index)
    return use, define


def liveness(func: Function) -> LivenessInfo:
    """Compute liveness for every reachable block of ``func``."""
    reachable = reachable_labels(func)
    labels = [b.label for b in func.blocks if b.label in reachable]
    use: Dict[str, Set[int]] = {}
    define: Dict[str, Set[int]] = {}
    for label in labels:
        use[label], define[label] = _block_use_def(func.block(label).instrs)

    live_in: Dict[str, Set[int]] = {label: set() for label in labels}
    live_out: Dict[str, Set[int]] = {label: set() for label in labels}

    changed = True
    while changed:
        changed = False
        for label in reversed(labels):
            out: Set[int] = set()
            for succ in func.block(label).successors():
                if succ in live_in:
                    out |= live_in[succ]
            new_in = use[label] | (out - define[label])
            if out != live_out[label] or new_in != live_in[label]:
                live_out[label] = out
                live_in[label] = new_in
                changed = True

    # Unreachable blocks: empty sets, so callers need no special cases.
    for block in func.blocks:
        live_in.setdefault(block.label, set())
        live_out.setdefault(block.label, set())
    return LivenessInfo(live_in, live_out)
