"""Basic induction variable discovery (``FindInductionVars`` of Figure 2).

A *basic induction variable* of a loop is a register whose only in-loop
definitions are increments by a loop-invariant constant
(``r = r + c`` / ``r = r - c``), each executing exactly once per iteration
(enforced by requiring every increment's block to dominate every latch).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.dominators import dominates, immediate_dominators
from repro.analysis.loops import Loop
from repro.ir.function import Function
from repro.ir.rtl import BinOp, Const, Reg


@dataclass
class BasicIV:
    """One basic induction variable."""

    reg: Reg
    step: int  # net signed change per iteration
    sites: List[Tuple[str, int]] = field(default_factory=list)

    def __repr__(self) -> str:
        return f"<BasicIV r{self.reg.index} step={self.step:+d}>"


def _increment_of(instr, reg_index: int) -> Optional[int]:
    """If ``instr`` is ``rX = rX ± const`` return the signed step."""
    if not isinstance(instr, BinOp):
        return None
    if instr.dst.index != reg_index:
        return None
    if instr.op == "add":
        if (
            isinstance(instr.a, Reg)
            and instr.a.index == reg_index
            and isinstance(instr.b, Const)
        ):
            return instr.b.value
        if (
            isinstance(instr.b, Reg)
            and instr.b.index == reg_index
            and isinstance(instr.a, Const)
        ):
            return instr.a.value
    if instr.op == "sub":
        if (
            isinstance(instr.a, Reg)
            and instr.a.index == reg_index
            and isinstance(instr.b, Const)
        ):
            return -instr.b.value
    return None


def find_basic_ivs(func: Function, loop: Loop) -> Dict[int, BasicIV]:
    """Map register index -> :class:`BasicIV` for ``loop``."""
    idom = immediate_dominators(func)

    # Gather all in-loop definitions per register.
    def_sites: Dict[int, List[Tuple[str, int]]] = {}
    for label in loop.blocks:
        block = func.block(label)
        for index, instr in enumerate(block.instrs):
            for reg in instr.defs():
                def_sites.setdefault(reg.index, []).append((label, index))

    ivs: Dict[int, BasicIV] = {}
    for reg_index, sites in def_sites.items():
        step = 0
        reg_obj: Optional[Reg] = None
        is_iv = True
        for label, index in sites:
            instr = func.block(label).instrs[index]
            increment = _increment_of(instr, reg_index)
            if increment is None:
                is_iv = False
                break
            # Each increment must run exactly once per iteration.
            if not all(
                dominates(idom, label, latch) for latch in loop.latches
            ):
                is_iv = False
                break
            step += increment
            reg_obj = instr.dst
        if is_iv and reg_obj is not None and step != 0:
            ivs[reg_index] = BasicIV(reg_obj, step, sites)
    return ivs
