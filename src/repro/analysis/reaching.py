"""Reaching definitions.

Definitions are identified as ``(block_label, instr_index)`` pairs.  Used
by global copy propagation and by the induction variable analysis (a basic
IV needs *all* its in-loop definitions to be increments).

The solver numbers every definition site and runs the classic bitvector
fixpoint over Python ints (``out = (in & ~kill) | gen``), which is orders
of magnitude cheaper than juggling sets of tuples.  Queries are sparse:
:meth:`ReachingDefs.reaching_at` binary-searches the per-register list of
definition positions inside the block instead of walking the block prefix,
so a full-function sweep of queries is ``O(uses · log defs)`` rather than
the old ``O(instructions²)``.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.cfgutil import predecessors, reachable_labels, \
    reverse_postorder
from repro.ir.function import Function

DefSite = Tuple[str, int]


class ReachingDefs:
    """Reaching-definition sets plus convenience queries."""

    def __init__(
        self,
        func: Function,
        reach_in: Dict[str, Set[DefSite]],
        defs_of: Dict[int, Set[DefSite]],
    ):
        self.func = func
        self.reach_in = reach_in
        self.defs_of = defs_of
        # label -> reg index -> sorted instruction positions defining it.
        self._block_defs: Dict[str, Dict[int, List[int]]] = {}
        for label in reach_in:
            per_reg: Dict[int, List[int]] = {}
            for index, instr in enumerate(func.block(label).instrs):
                for reg in instr.defs():
                    per_reg.setdefault(reg.index, []).append(index)
            self._block_defs[label] = per_reg
        # label -> reg index -> sites from reach_in defining that reg
        # (built lazily; most blocks are never queried).
        self._in_by_reg: Dict[str, Dict[int, Tuple[DefSite, ...]]] = {}

    def _incoming(self, label: str) -> Dict[int, Tuple[DefSite, ...]]:
        cached = self._in_by_reg.get(label)
        if cached is not None:
            return cached
        grouped: Dict[int, List[DefSite]] = {}
        for site in self.reach_in.get(label, ()):
            site_label, position = site
            instr = self.func.block(site_label).instrs[position]
            for reg in instr.defs():
                grouped.setdefault(reg.index, []).append(site)
        frozen = {reg: tuple(sites) for reg, sites in grouped.items()}
        self._in_by_reg[label] = frozen
        return frozen

    def reaching_at(
        self, label: str, index: int, reg_index: int
    ) -> Set[DefSite]:
        """Definitions of ``reg_index`` reaching instruction ``index`` of
        block ``label``."""
        positions = self._block_defs.get(label, {}).get(reg_index)
        if positions:
            at = bisect_left(positions, index) - 1
            if at >= 0:
                return {(label, positions[at])}
        return set(self._incoming(label).get(reg_index, ()))

    def unique_def_at(
        self, label: str, index: int, reg_index: int
    ) -> Optional[DefSite]:
        sites = self.reaching_at(label, index, reg_index)
        if len(sites) == 1:
            return next(iter(sites))
        return None


def reaching_definitions(func: Function) -> ReachingDefs:
    """Solve the forward reaching-definitions dataflow problem."""
    reachable = reachable_labels(func)
    order = [l for l in reverse_postorder(func) if l in reachable]
    labels_set = set(order)
    preds = predecessors(func)

    # Number every definition site; per-register masks give kill sets.
    sites: List[DefSite] = []
    defs_of: Dict[int, Set[DefSite]] = {}
    reg_mask: Dict[int, int] = {}
    gen_mask: Dict[str, int] = {}
    kill_regs: Dict[str, List[int]] = {}
    for label in order:
        block = func.block(label)
        last_def: Dict[int, int] = {}  # reg -> site number
        for index, instr in enumerate(block.instrs):
            regs = instr.defs()
            if not regs:
                continue
            number = len(sites)
            sites.append((label, index))
            for reg in regs:
                defs_of.setdefault(reg.index, set()).add((label, index))
                reg_mask[reg.index] = reg_mask.get(reg.index, 0) | (
                    1 << number
                )
                last_def[reg.index] = number
        gen_mask[label] = 0
        for number in last_def.values():
            gen_mask[label] |= 1 << number
        kill_regs[label] = list(last_def)

    kill_mask: Dict[str, int] = {
        label: _union_masks(reg_mask, kill_regs[label])
        for label in order
    }

    reach_in_bits: Dict[str, int] = {label: 0 for label in order}
    reach_out_bits: Dict[str, int] = {label: 0 for label in order}
    changed = True
    while changed:
        changed = False
        for label in order:
            into = 0
            for pred in preds[label]:
                if pred in labels_set:
                    into |= reach_out_bits[pred]
            out = (into & ~kill_mask[label]) | gen_mask[label]
            if into != reach_in_bits[label] or out != reach_out_bits[label]:
                reach_in_bits[label] = into
                reach_out_bits[label] = out
                changed = True

    reach_in: Dict[str, Set[DefSite]] = {
        label: _sites_from_mask(sites, bits)
        for label, bits in reach_in_bits.items()
    }
    return ReachingDefs(func, reach_in, defs_of)


def _union_masks(reg_mask: Dict[int, int], regs: List[int]) -> int:
    mask = 0
    for reg in regs:
        mask |= reg_mask.get(reg, 0)
    return mask


def _sites_from_mask(sites: List[DefSite], bits: int) -> Set[DefSite]:
    result: Set[DefSite] = set()
    number = 0
    while bits:
        if bits & 1:
            result.add(sites[number])
        bits >>= 1
        number += 1
    return result
