"""Reaching definitions.

Definitions are identified as ``(block_label, instr_index)`` pairs.  Used
by global copy propagation and by the induction variable analysis (a basic
IV needs *all* its in-loop definitions to be increments).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.cfgutil import predecessors, reachable_labels
from repro.ir.function import Function

DefSite = Tuple[str, int]


class ReachingDefs:
    """Reaching-definition sets plus convenience queries."""

    def __init__(
        self,
        func: Function,
        reach_in: Dict[str, Set[DefSite]],
        defs_of: Dict[int, Set[DefSite]],
    ):
        self.func = func
        self.reach_in = reach_in
        self.defs_of = defs_of

    def reaching_at(
        self, label: str, index: int, reg_index: int
    ) -> Set[DefSite]:
        """Definitions of ``reg_index`` reaching instruction ``index`` of
        block ``label``."""
        live: Set[DefSite] = {
            site
            for site in self.reach_in.get(label, set())
            if self._defines(site, reg_index)
        }
        block = self.func.block(label)
        for position in range(index):
            instr = block.instrs[position]
            if any(r.index == reg_index for r in instr.defs()):
                live = {(label, position)}
        return live

    def unique_def_at(
        self, label: str, index: int, reg_index: int
    ) -> Optional[DefSite]:
        sites = self.reaching_at(label, index, reg_index)
        if len(sites) == 1:
            return next(iter(sites))
        return None

    def _defines(self, site: DefSite, reg_index: int) -> bool:
        block_label, position = site
        instr = self.func.block(block_label).instrs[position]
        return any(r.index == reg_index for r in instr.defs())


def reaching_definitions(func: Function) -> ReachingDefs:
    """Solve the forward reaching-definitions dataflow problem."""
    reachable = reachable_labels(func)
    labels = [b.label for b in func.blocks if b.label in reachable]
    preds = predecessors(func)

    # Collect all definition sites per register.
    defs_of: Dict[int, Set[DefSite]] = {}
    gen: Dict[str, Dict[int, DefSite]] = {}
    for label in labels:
        block = func.block(label)
        last_def: Dict[int, DefSite] = {}
        for index, instr in enumerate(block.instrs):
            for reg in instr.defs():
                site = (label, index)
                defs_of.setdefault(reg.index, set()).add(site)
                last_def[reg.index] = site
        gen[label] = last_def

    reach_in: Dict[str, Set[DefSite]] = {label: set() for label in labels}
    reach_out: Dict[str, Set[DefSite]] = {label: set() for label in labels}

    def transfer(label: str, into: Set[DefSite]) -> Set[DefSite]:
        killed_regs = set(gen[label])
        out = {
            site
            for site in into
            if not _site_defines_any(func, site, killed_regs)
        }
        out |= set(gen[label].values())
        return out

    changed = True
    while changed:
        changed = False
        for label in labels:
            into: Set[DefSite] = set()
            for pred in preds[label]:
                if pred in reach_out:
                    into |= reach_out[pred]
            out = transfer(label, into)
            if into != reach_in[label] or out != reach_out[label]:
                reach_in[label] = into
                reach_out[label] = out
                changed = True

    return ReachingDefs(func, reach_in, defs_of)


def _site_defines_any(
    func: Function, site: DefSite, reg_indices: Set[int]
) -> bool:
    label, index = site
    instr = func.block(label).instrs[index]
    return any(r.index in reg_indices for r in instr.defs())
