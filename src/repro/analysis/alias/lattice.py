"""The must/may/no-alias verdict lattice and the decision rules.

Verdicts order ``NO_ALIAS < MAY_ALIAS < MUST_ALIAS`` only in the sense
that :func:`join` resolves disagreement to the weaker claim
(``MAY_ALIAS``); the two definite verdicts both mean "statically
decided".

The rules mirror the paper's Figure 4/Figure 5 safety argument, decided
at compile time where the object roots allow it:

* **distinct roots** — two different frame slots never overlap; a frame
  slot never overlaps a global or a pointer parameter (a caller cannot
  name a frame slot that does not exist until the call); two distinct
  globals never overlap.  A parameter may point anywhere the caller
  likes except our frame, so ``param`` vs ``param``/``global`` stays
  may-alias — exactly the case the paper's run-time overlap check
  exists for.
* **same root** — both addresses are ``root + constant``; when the two
  access streams advance by the *same* byte step each iteration their
  distance is constant, so one interval comparison decides the whole
  loop: disjoint intervals stay disjoint forever (``no-alias``),
  overlapping intervals overlap on every iteration (``must-alias``).
  Different steps make the distance iteration-dependent: may-alias.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.alias.symbolic import AddressExpr, CONST, FRAME, \
    GLOBAL, PARAM

NO_ALIAS = "no-alias"
MAY_ALIAS = "may-alias"
MUST_ALIAS = "must-alias"


def join(a: str, b: str) -> str:
    """Combine two verdicts about the same pair: agreement survives,
    disagreement degrades to ``may-alias``."""
    return a if a == b else MAY_ALIAS


#: Unordered root-kind pairs that can never address the same byte.
_DISJOINT_KINDS = {
    frozenset({FRAME, GLOBAL}),
    frozenset({FRAME, PARAM}),
}


def alias_intervals(
    a: Optional[AddressExpr], a_lo: int, a_hi: int,
    b: Optional[AddressExpr], b_lo: int, b_hi: int,
) -> str:
    """Verdict for two accessed byte intervals.

    ``[a_lo, a_hi)`` / ``[b_lo, b_hi)`` are the displacement ranges each
    stream touches per iteration, relative to its base register; the
    expressions carry the loop-entry offsets and per-iteration steps.
    """
    if a is None or b is None:
        return MAY_ALIAS

    if a.root != b.root:
        kinds = frozenset({a.root.kind, b.root.kind})
        if len(kinds) == 1 and a.root.kind in (FRAME, GLOBAL):
            return NO_ALIAS  # two distinct named objects
        if kinds in _DISJOINT_KINDS:
            return NO_ALIAS
        return MAY_ALIAS

    # Same root (including const vs const: both absolute addresses).
    # Affine terms must match exactly: only then is the distance between
    # the streams the constant offset difference.
    if a.terms != b.terms or a.step != b.step:
        return MAY_ALIAS
    lo_a, hi_a = a.offset + a_lo, a.offset + a_hi
    lo_b, hi_b = b.offset + b_lo, b.offset + b_hi
    if hi_a <= lo_b or hi_b <= lo_a:
        return NO_ALIAS
    return MUST_ALIAS


def provable_alignment(
    expr: Optional[AddressExpr],
    start_disp: int,
    wide_width: int,
    func,
) -> bool:
    """Is ``base + start_disp`` provably ``wide_width``-aligned on every
    iteration?

    True when the root object's own alignment is a multiple of the wide
    width, the constant offset lands on a wide boundary, the stream
    advances by whole wide words, and every affine term's coefficient is
    itself a multiple of the wide width (``coeff % wide == 0`` makes the
    term's contribution a whole number of wide words whatever the
    symbolic factor's value).  Only frame slots carry a declared
    alignment the function itself controls; everything else stays a
    run-time question (the paper's alignment check).
    """
    if expr is None or expr.root.kind != FRAME:
        return False
    slot = func.frame_slots.get(expr.root.name)
    if slot is None:
        return False
    _, align = slot
    return (
        align % wide_width == 0
        and (expr.offset + start_disp) % wide_width == 0
        and expr.step % wide_width == 0
        and all(coeff % wide_width == 0 for _, coeff in expr.terms)
    )
