"""Per-function memory-dependence summaries.

``memory_dependence(func)`` — registered with the
:class:`repro.analysis.manager.AnalysisManager` as ``memdep`` — walks
every single-block loop (the shape the unroller produces and the
coalescer consumes), resolves each memory reference's base register to a
symbolic address expression, and pre-computes the alias verdict for
every pair of base registers in the loop.  The coalescer and the
sanitizer checkers then answer "can these two access streams overlap?"
with one dictionary lookup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.alias.lattice import MAY_ALIAS, NO_ALIAS, \
    alias_intervals, provable_alignment
from repro.analysis.alias.symbolic import CONST, FRAME, GLOBAL, \
    AddressExpr, Root, resolve_loop_base
from repro.analysis.defuse import def_use_chains
from repro.analysis.induction import find_basic_ivs
from repro.analysis.loops import find_loops
from repro.analysis.tripcount import analyze_trip_count
from repro.ir.function import Function
from repro.ir.rtl import Const, Instr, Load, Store

# Relation families of the latch comparison, mirroring the unroller's
# emit_trip_count arithmetic (the static count must agree with the code
# the preheader would have computed).
_STRICT_RELS = frozenset({"lt", "ltu", "gt", "gtu"})
_EQUAL_RELS = frozenset({"le", "leu", "ge", "geu"})


@dataclass
class RefInfo:
    """One memory reference inside a summarized loop."""

    block: str
    index: int
    instr: Instr
    base_index: int
    disp: int
    width: int

    @property
    def is_store(self) -> bool:
        return isinstance(self.instr, Store)


@dataclass
class LoopAliasSummary:
    """Everything the engine proved about one single-block loop."""

    header: str
    #: base register index -> its symbolic loop-entry address (``None``
    #: when unanalyzable).
    base_exprs: Dict[int, Optional[AddressExpr]] = field(
        default_factory=dict
    )
    #: base register index -> [min_disp, max_end) touched per iteration.
    intervals: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    #: unordered base pair -> verdict (``no-alias``/``may-alias``/
    #: ``must-alias``).
    verdicts: Dict[Tuple[int, int], str] = field(default_factory=dict)
    refs: List[RefInfo] = field(default_factory=list)
    #: compile-time iteration count, when the loop counts a constant
    #: range with a constant step (``None`` otherwise).
    trip_count: Optional[int] = None

    def verdict(self, base_a: int, base_b: int) -> str:
        if base_a == base_b:
            return MAY_ALIAS  # same stream: not this summary's question
        key = (base_a, base_b) if base_a <= base_b else (base_b, base_a)
        return self.verdicts.get(key, MAY_ALIAS)


class MemoryDependenceSummary:
    """Alias facts for every summarized loop of one function."""

    def __init__(self, func: Function):
        self.func = func
        self.loops: Dict[str, LoopAliasSummary] = {}

    def loop(self, header: str) -> Optional[LoopAliasSummary]:
        return self.loops.get(header)

    def verdict(self, header: str, base_a: int, base_b: int) -> str:
        summary = self.loops.get(header)
        if summary is None:
            return MAY_ALIAS
        return summary.verdict(base_a, base_b)

    def aligned(
        self, header: str, base_index: int, start_disp: int,
        wide_width: int,
    ) -> bool:
        """Is ``base + start_disp`` provably wide-aligned in this loop?"""
        summary = self.loops.get(header)
        if summary is None:
            return False
        return provable_alignment(
            summary.base_exprs.get(base_index), start_disp, wide_width,
            self.func,
        )

    def no_alias_pairs(self) -> List[Tuple[RefInfo, RefInfo]]:
        """Every cross-stream reference pair proved disjoint — the raw
        material of the ``alias-consistency`` checker."""
        pairs: List[Tuple[RefInfo, RefInfo]] = []
        for summary in self.loops.values():
            for left in summary.refs:
                for right in summary.refs:
                    if left.base_index >= right.base_index:
                        continue
                    if (
                        summary.verdict(left.base_index, right.base_index)
                        == NO_ALIAS
                    ):
                        pairs.append((left, right))
        return pairs


def constant_trip_count(func, chains, loop, ivs) -> Optional[int]:
    """The loop's iteration count when it is a compile-time constant.

    Requires a counted loop whose IV entry value and latch bound both
    resolve symbolically to the *same root* at constant offsets — two
    integer constants, or (the shape strength reduction leaves behind)
    a pointer walking an object toward a limit pointer into the same
    object.  Either way their distance is a compile-time constant, and
    this computes exactly what the unroller's ``emit_trip_count``
    preheader code would compute at run time, letting the ``n % k``
    divisibility check be discharged statically.  Returns ``None``
    whenever anything stays symbolic.
    """
    trip = analyze_trip_count(func, loop, ivs)
    if trip is None:
        return None
    entry = resolve_loop_base(func, chains, loop, trip.iv.reg.index, ivs)
    if entry is None:
        return None
    if isinstance(trip.bound, Const):
        bound = AddressExpr(Root(CONST), trip.bound.value)
    else:
        bound = resolve_loop_base(
            func, chains, loop, trip.bound.index, ivs
        )
        if bound is None or bound.step != 0:
            return None
    if bound.root != entry.root or bound.terms != entry.terms:
        # Mismatched affine terms leave the distance symbolic.
        return None
    step = abs(trip.step)
    span = (
        bound.offset - entry.offset if trip.step > 0
        else entry.offset - bound.offset
    )
    if span <= 0:
        # The rotated-loop guarantee ("executes at least once") failed to
        # reproduce statically; don't claim a count.
        return None
    if trip.rel in _STRICT_RELS:
        return (span + step - 1) // step
    if trip.rel in _EQUAL_RELS:
        return span // step + 1
    return span // step  # 'ne': tripcount analysis guarantees |step| == 1


def annotate_memory_roots(
    func: Function, summary: "MemoryDependenceSummary"
) -> int:
    """Tag loads/stores with the object the engine resolved them into.

    Each reference whose base resolved to a *named* object (a frame slot
    or a global — the roots whose no-alias verdicts assert whole-object
    disjointness) gets ``instr.notes['memdep_root']``.  The differential
    ``alias-consistency`` checker later verifies that the concrete
    addresses those instructions touch stay inside the claimed object.
    Returns how many references were tagged.
    """
    tagged = 0
    for loop_summary in summary.loops.values():
        for ref in loop_summary.refs:
            expr = loop_summary.base_exprs.get(ref.base_index)
            if expr is None or expr.root.kind not in (FRAME, GLOBAL):
                continue
            ref.instr.notes["memdep_root"] = {
                "kind": expr.root.kind,
                "name": expr.root.name,
                "loop": loop_summary.header,
                # Pre-lowering access width: lowering may widen the
                # instruction (read-modify-write on machines without
                # narrow stores) while keeping its notes, and the
                # consistency audit must not charge the object for the
                # widened word.
                "width": ref.width,
            }
            tagged += 1
    return tagged


def memory_dependence(func: Function) -> MemoryDependenceSummary:
    """Build the per-function summary (the ``memdep`` analysis)."""
    result = MemoryDependenceSummary(func)
    chains = def_use_chains(func)
    for loop in find_loops(func):
        if len(loop.blocks) != 1:
            continue
        block = func.block(loop.header)
        ivs = find_basic_ivs(func, loop)
        summary = LoopAliasSummary(loop.header)
        summary.trip_count = constant_trip_count(func, chains, loop, ivs)
        for index, instr in enumerate(block.instrs):
            if not isinstance(instr, (Load, Store)):
                continue
            base = instr.base.index
            summary.refs.append(
                RefInfo(
                    loop.header, index, instr, base, instr.disp,
                    instr.width,
                )
            )
            if base not in summary.base_exprs:
                summary.base_exprs[base] = resolve_loop_base(
                    func, chains, loop, base, ivs
                )
            lo, hi = summary.intervals.get(base, (instr.disp, instr.disp))
            summary.intervals[base] = (
                min(lo, instr.disp), max(hi, instr.disp + instr.width)
            )
        bases = sorted(summary.base_exprs)
        for position, base_a in enumerate(bases):
            for base_b in bases[position + 1:]:
                lo_a, hi_a = summary.intervals[base_a]
                lo_b, hi_b = summary.intervals[base_b]
                summary.verdicts[(base_a, base_b)] = alias_intervals(
                    summary.base_exprs[base_a], lo_a, hi_a,
                    summary.base_exprs[base_b], lo_b, hi_b,
                )
        result.loops[loop.header] = summary
    return result
