"""Symbolic address expressions.

A base register used by ``M[base + disp]`` is resolved to
``root + offset (+ step per iteration)`` by walking the use-def chains:

* ``FrameAddr`` / ``GlobalAddr`` name the root object directly;
* ``Mov``/``add``/``sub`` with constant operands accumulate the offset;
* ``mul``/``shl`` by a constant scale — a symbolic factor becomes an
  **affine term** ``coeff * reg``, anchored at the register's unique
  reaching definition so equal terms denote equal run-time values;
* a load feeding an address chain becomes an **index-load root**
  (``load:<site>``) — the shape classifier's signature of an indirect
  (gather) reference;
* a register with no reaching definition is an incoming **parameter**
  (its own root: the caller's pointer);
* a register that is a basic induction variable of the enclosing loop
  resolves to its loop-entry value plus the IV's byte step.

Anything else (several competing definitions, a term without a unique
anchor) resolves to ``None`` — the unanalyzable case the verdict
lattice treats as may-alias, exactly as the paper falls back to the
Figure 5 run-time check.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from repro.analysis.defuse import DefUseChains
from repro.analysis.induction import BasicIV
from repro.analysis.loops import Loop
from repro.ir.function import Function
from repro.ir.rtl import BinOp, Const, FrameAddr, GlobalAddr, Load, Mov, \
    Reg

#: How many definitions a single resolution may walk through; address
#: computations are short, so hitting this means "give up", not "try
#: harder".
MAX_WALK = 64

FRAME = "frame"
GLOBAL = "global"
PARAM = "param"
CONST = "const"
LOAD = "load"


@dataclass(frozen=True)
class Root:
    """The object a symbolic address points into.

    ``kind`` is ``'frame'`` (a stack slot of this function), ``'global'``
    (a module variable), ``'param'`` (an incoming pointer argument) or
    ``'const'`` (an absolute address).  ``name`` identifies the object
    within its kind: the slot name, the global name, or the parameter's
    register index as text.
    """

    kind: str
    name: str = ""

    def __repr__(self) -> str:
        return f"{self.kind}:{self.name}" if self.name else self.kind


@dataclass(frozen=True)
class Term:
    """One symbolic affine addend: the value of ``reg`` at its unique
    reaching definition ``site`` (``("", -1)`` for a parameter, whose
    value is fixed at entry).  Anchoring on the definition site — not
    just the register number — makes equal terms denote equal run-time
    values, so expressions with identical term tuples stay comparable.
    """

    reg: int
    site: Tuple[str, int] = ("", -1)
    #: ``'load'`` when the anchoring definition is a Load — the factor
    #: is a run-time index, the signature of an indirect reference.
    kind: str = "reg"

    def __repr__(self) -> str:
        label, index = self.site
        anchor = f"@{label}:{index}" if index >= 0 else ""
        return f"r{self.reg}{anchor}"


@dataclass(frozen=True)
class AddressExpr:
    """``root + offset + Σ coeff·term``, advancing ``step`` bytes per
    loop iteration.  ``terms`` is canonically sorted; the empty tuple is
    the plain single-base case every pre-affine consumer assumes."""

    root: Root
    offset: int = 0
    step: int = 0
    #: sorted ``(term, coeff)`` pairs with non-zero coefficients.
    terms: Tuple[Tuple[Term, int], ...] = ()

    def __repr__(self) -> str:
        text = f"{self.root}{self.offset:+d}"
        for term, coeff in self.terms:
            text += f"{coeff:+d}*{term!r}"
        if self.step:
            text += f" (step {self.step:+d}/iter)"
        return text


def _merge_terms(
    a: Tuple[Tuple[Term, int], ...],
    b: Tuple[Tuple[Term, int], ...],
    sign: int = 1,
) -> Tuple[Tuple[Term, int], ...]:
    """Canonical sum ``a + sign*b`` with zero coefficients dropped."""
    acc: Dict[Term, int] = dict(a)
    for term, coeff in b:
        acc[term] = acc.get(term, 0) + sign * coeff
    return tuple(
        sorted(
            ((t, c) for t, c in acc.items() if c != 0),
            key=lambda pair: (pair[0].reg, pair[0].site),
        )
    )


def resolve_reg_at(
    func: Function,
    chains: DefUseChains,
    label: str,
    index: int,
    reg_index: int,
    _depth: int = 0,
) -> Optional[AddressExpr]:
    """The symbolic value of ``reg_index`` just before instruction
    ``index`` of block ``label``, or ``None`` if unanalyzable."""
    if _depth > MAX_WALK:
        return None
    sites = chains.reaching.reaching_at(label, index, reg_index)
    if not sites:
        # No definition reaches: an incoming parameter (the verifier
        # guarantees anything else never executes).
        if any(p.index == reg_index for p in func.params):
            return AddressExpr(Root(PARAM, str(reg_index)))
        return None
    if len(sites) != 1:
        return None
    site_label, site_index = next(iter(sites))
    instr = func.block(site_label).instrs[site_index]

    if isinstance(instr, FrameAddr):
        return AddressExpr(Root(FRAME, instr.slot))
    if isinstance(instr, GlobalAddr):
        return AddressExpr(Root(GLOBAL, instr.name))
    if isinstance(instr, Load):
        # A loaded value feeding an address chain: its own root, named
        # by the load site.  Two chains meeting the same site denote the
        # same value; distinct sites stay may-alias.  This is the
        # signature the shape classifier reads as *indirect*.
        return AddressExpr(Root(LOAD, f"{site_label}:{site_index}"))
    if isinstance(instr, Mov):
        if isinstance(instr.src, Const):
            return AddressExpr(Root(CONST), instr.src.value)
        return resolve_reg_at(
            func, chains, site_label, site_index, instr.src.index,
            _depth + 1,
        )
    if isinstance(instr, BinOp) and instr.op in (
        "add", "sub", "and", "mul", "shl"
    ):
        # Resolve both operands; a literal constant is an absolute value
        # (the ``const`` root), a register resolves recursively.  This
        # folds the unroller's main-bound arithmetic symbolically:
        # ``(base + n) - base`` collapses to a constant even though the
        # operands are pointers no constant propagation can touch.
        def value_of(operand) -> Optional[AddressExpr]:
            if isinstance(operand, Const):
                return AddressExpr(Root(CONST), operand.value)
            if isinstance(operand, Reg):
                return resolve_reg_at(
                    func, chains, site_label, site_index, operand.index,
                    _depth + 1,
                )
            return None

        def term_of(operand) -> Optional[Term]:
            # An unresolvable register still names a value — if exactly
            # one definition reaches it here, anchor an opaque affine
            # term on that site (parameters anchor on entry).
            if not isinstance(operand, Reg):
                return None
            sites = chains.reaching.reaching_at(
                site_label, site_index, operand.index
            )
            if len(sites) == 1:
                site = next(iter(sites))
                defining = func.block(site[0]).instrs[site[1]]
                kind = "load" if isinstance(defining, Load) else "reg"
                return Term(operand.index, site, kind)
            if not sites and any(
                p.index == operand.index for p in func.params
            ):
                return Term(operand.index)
            return None

        lhs = value_of(instr.a)
        rhs = value_of(instr.b)
        if instr.op in ("mul", "shl"):
            # Scaling: constant * symbolic-value.  The scaled side may
            # itself be affine (scale every coefficient) or opaque (a
            # fresh single term); a scaled *pointer* stays unanalyzable.
            if instr.op == "shl":
                if rhs is None or rhs.root.kind != CONST or rhs.terms:
                    return None
                factor = 1 << rhs.offset
                scaled, scaled_operand = lhs, instr.a
            elif rhs is not None and rhs.root.kind == CONST \
                    and not rhs.terms:
                factor, scaled, scaled_operand = rhs.offset, lhs, instr.a
            elif lhs is not None and lhs.root.kind == CONST \
                    and not lhs.terms:
                factor, scaled, scaled_operand = lhs.offset, rhs, instr.b
            else:
                return None
            if factor == 0:
                return AddressExpr(Root(CONST), 0)
            if scaled is not None and scaled.root.kind == CONST:
                return AddressExpr(
                    Root(CONST),
                    scaled.offset * factor,
                    terms=tuple(
                        (t, c * factor) for t, c in scaled.terms
                    ),
                )
            # Anything else — an opaque value, an index load, or a
            # scaled non-constant root (a row offset ``64*(y-1)`` built
            # from an integer parameter resolves param-rooted) — folds
            # to one affine term anchored at the operand's unique
            # definition.
            term = term_of(scaled_operand)
            if term is None:
                return None
            if (
                scaled is not None
                and scaled.root.kind == LOAD
                and term.kind != "load"
            ):
                # The operand resolved through movs to a load; the
                # term is an index whatever its immediate def was.
                term = replace(term, kind="load")
            return AddressExpr(
                Root(CONST), 0, terms=((term, factor),)
            )
        if lhs is None or rhs is None:
            return None
        if instr.op == "add":
            if rhs.root.kind == CONST:
                return replace(
                    lhs,
                    offset=lhs.offset + rhs.offset,
                    terms=_merge_terms(lhs.terms, rhs.terms),
                )
            if lhs.root.kind == CONST:
                return replace(
                    rhs,
                    offset=lhs.offset + rhs.offset,
                    terms=_merge_terms(rhs.terms, lhs.terms),
                )
            return None
        if instr.op == "sub":
            if rhs.root.kind == CONST:
                return replace(
                    lhs,
                    offset=lhs.offset - rhs.offset,
                    terms=_merge_terms(lhs.terms, rhs.terms, sign=-1),
                )
            if lhs.root == rhs.root:
                # Same object: the address difference is the offset
                # difference plus whatever terms fail to cancel.
                return AddressExpr(
                    Root(CONST),
                    lhs.offset - rhs.offset,
                    terms=_merge_terms(lhs.terms, rhs.terms, sign=-1),
                )
            return None
        # 'and' folds only between known absolute values.
        if (
            lhs.root.kind == CONST and rhs.root.kind == CONST
            and not lhs.terms and not rhs.terms
        ):
            return AddressExpr(Root(CONST), lhs.offset & rhs.offset)
        return None
    return None


def resolve_loop_base(
    func: Function,
    chains: DefUseChains,
    loop: Loop,
    reg_index: int,
    ivs: Dict[int, BasicIV],
) -> Optional[AddressExpr]:
    """The symbolic address held by ``reg_index`` on entry to ``loop``,
    with the register's per-iteration byte step filled in.

    A basic IV resolves to its unique loop-entry definition; a
    loop-invariant register resolves to its value at the header.  Several
    competing entry definitions, or any unanalyzable link in the chain,
    yield ``None``.
    """
    entry_sites = {
        site
        for site in chains.reaching.reach_in.get(loop.header, ())
        if site[0] not in loop.blocks
        and any(
            r.index == reg_index
            for r in func.block(site[0]).instrs[site[1]].defs()
        )
    }
    in_loop_defs = any(
        site[0] in loop.blocks
        for site in chains.reaching.defs_of.get(reg_index, ())
    )
    iv = ivs.get(reg_index)
    if in_loop_defs and iv is None:
        return None  # redefined in the loop but not as a basic IV

    if not entry_sites:
        if in_loop_defs:
            # Only in-loop definitions exist, so on the entry edge the
            # register still holds its incoming value: a parameter
            # advanced directly as the loop's pointer, or undefined
            # (which the verifier guarantees never executes).
            if not any(p.index == reg_index for p in func.params):
                return None
            expr = AddressExpr(Root(PARAM, str(reg_index)))
        else:
            expr = resolve_reg_at(
                func, chains, loop.header, 0, reg_index
            )
    elif len(entry_sites) == 1:
        site_label, site_index = next(iter(entry_sites))
        # Value *after* the defining instruction == value of its
        # definition; resolve the register just past that site.
        expr = resolve_reg_at(
            func, chains, site_label, site_index + 1, reg_index
        )
    else:
        return None
    if expr is None:
        return None
    return replace(expr, step=iv.step if iv is not None else 0)
