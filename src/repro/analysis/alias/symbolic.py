"""Symbolic address expressions.

A base register used by ``M[base + disp]`` is resolved to
``root + offset (+ step per iteration)`` by walking the use-def chains:

* ``FrameAddr`` / ``GlobalAddr`` name the root object directly;
* ``Mov``/``add``/``sub`` with constant operands accumulate the offset;
* a register with no reaching definition is an incoming **parameter**
  (its own root: the caller's pointer);
* a register that is a basic induction variable of the enclosing loop
  resolves to its loop-entry value plus the IV's byte step.

Anything else (a loaded pointer, a ``mul``-scaled address, several
competing definitions) resolves to ``None`` — the unanalyzable case the
verdict lattice treats as may-alias, exactly as the paper falls back to
the Figure 5 run-time check.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

from repro.analysis.defuse import DefUseChains
from repro.analysis.induction import BasicIV
from repro.analysis.loops import Loop
from repro.ir.function import Function
from repro.ir.rtl import BinOp, Const, FrameAddr, GlobalAddr, Mov, Reg

#: How many definitions a single resolution may walk through; address
#: computations are short, so hitting this means "give up", not "try
#: harder".
MAX_WALK = 64

FRAME = "frame"
GLOBAL = "global"
PARAM = "param"
CONST = "const"


@dataclass(frozen=True)
class Root:
    """The object a symbolic address points into.

    ``kind`` is ``'frame'`` (a stack slot of this function), ``'global'``
    (a module variable), ``'param'`` (an incoming pointer argument) or
    ``'const'`` (an absolute address).  ``name`` identifies the object
    within its kind: the slot name, the global name, or the parameter's
    register index as text.
    """

    kind: str
    name: str = ""

    def __repr__(self) -> str:
        return f"{self.kind}:{self.name}" if self.name else self.kind


@dataclass(frozen=True)
class AddressExpr:
    """``root + offset``, advancing ``step`` bytes per loop iteration."""

    root: Root
    offset: int = 0
    step: int = 0

    def __repr__(self) -> str:
        text = f"{self.root}{self.offset:+d}"
        if self.step:
            text += f" (step {self.step:+d}/iter)"
        return text


def resolve_reg_at(
    func: Function,
    chains: DefUseChains,
    label: str,
    index: int,
    reg_index: int,
    _depth: int = 0,
) -> Optional[AddressExpr]:
    """The symbolic value of ``reg_index`` just before instruction
    ``index`` of block ``label``, or ``None`` if unanalyzable."""
    if _depth > MAX_WALK:
        return None
    sites = chains.reaching.reaching_at(label, index, reg_index)
    if not sites:
        # No definition reaches: an incoming parameter (the verifier
        # guarantees anything else never executes).
        if any(p.index == reg_index for p in func.params):
            return AddressExpr(Root(PARAM, str(reg_index)))
        return None
    if len(sites) != 1:
        return None
    site_label, site_index = next(iter(sites))
    instr = func.block(site_label).instrs[site_index]

    if isinstance(instr, FrameAddr):
        return AddressExpr(Root(FRAME, instr.slot))
    if isinstance(instr, GlobalAddr):
        return AddressExpr(Root(GLOBAL, instr.name))
    if isinstance(instr, Mov):
        if isinstance(instr.src, Const):
            return AddressExpr(Root(CONST), instr.src.value)
        return resolve_reg_at(
            func, chains, site_label, site_index, instr.src.index,
            _depth + 1,
        )
    if isinstance(instr, BinOp) and instr.op in ("add", "sub", "and"):
        # Resolve both operands; a literal constant is an absolute value
        # (the ``const`` root), a register resolves recursively.  This
        # folds the unroller's main-bound arithmetic symbolically:
        # ``(base + n) - base`` collapses to a constant even though the
        # operands are pointers no constant propagation can touch.
        def value_of(operand) -> Optional[AddressExpr]:
            if isinstance(operand, Const):
                return AddressExpr(Root(CONST), operand.value)
            if isinstance(operand, Reg):
                return resolve_reg_at(
                    func, chains, site_label, site_index, operand.index,
                    _depth + 1,
                )
            return None

        lhs = value_of(instr.a)
        rhs = value_of(instr.b)
        if lhs is None or rhs is None:
            return None
        if instr.op == "add":
            if rhs.root.kind == CONST:
                return replace(lhs, offset=lhs.offset + rhs.offset)
            if lhs.root.kind == CONST:
                return replace(rhs, offset=lhs.offset + rhs.offset)
            return None
        if instr.op == "sub":
            if rhs.root.kind == CONST:
                return replace(lhs, offset=lhs.offset - rhs.offset)
            if lhs.root == rhs.root:
                # Same object: the address difference is the constant
                # offset difference.
                return AddressExpr(Root(CONST), lhs.offset - rhs.offset)
            return None
        # 'and' folds only between known absolute values.
        if lhs.root.kind == CONST and rhs.root.kind == CONST:
            return AddressExpr(Root(CONST), lhs.offset & rhs.offset)
        return None
    return None


def resolve_loop_base(
    func: Function,
    chains: DefUseChains,
    loop: Loop,
    reg_index: int,
    ivs: Dict[int, BasicIV],
) -> Optional[AddressExpr]:
    """The symbolic address held by ``reg_index`` on entry to ``loop``,
    with the register's per-iteration byte step filled in.

    A basic IV resolves to its unique loop-entry definition; a
    loop-invariant register resolves to its value at the header.  Several
    competing entry definitions, or any unanalyzable link in the chain,
    yield ``None``.
    """
    entry_sites = {
        site
        for site in chains.reaching.reach_in.get(loop.header, ())
        if site[0] not in loop.blocks
        and any(
            r.index == reg_index
            for r in func.block(site[0]).instrs[site[1]].defs()
        )
    }
    in_loop_defs = any(
        site[0] in loop.blocks
        for site in chains.reaching.defs_of.get(reg_index, ())
    )
    iv = ivs.get(reg_index)
    if in_loop_defs and iv is None:
        return None  # redefined in the loop but not as a basic IV

    if not entry_sites:
        if in_loop_defs:
            # Only in-loop definitions exist, so on the entry edge the
            # register still holds its incoming value: a parameter
            # advanced directly as the loop's pointer, or undefined
            # (which the verifier guarantees never executes).
            if not any(p.index == reg_index for p in func.params):
                return None
            expr = AddressExpr(Root(PARAM, str(reg_index)))
        else:
            expr = resolve_reg_at(
                func, chains, loop.header, 0, reg_index
            )
    elif len(entry_sites) == 1:
        site_label, site_index = next(iter(entry_sites))
        # Value *after* the defining instruction == value of its
        # definition; resolve the register just past that site.
        expr = resolve_reg_at(
            func, chains, site_label, site_index + 1, reg_index
        )
    else:
        return None
    if expr is None:
        return None
    return replace(expr, step=iv.step if iv is not None else 0)
