"""Static alias and memory-dependence analysis over RTL.

The paper's coalescer is conservative: whenever two partitions *might*
overlap it emits the Figure 5 run-time overlap/alignment check chain and
keeps the original loop as a fallback, paying a dynamic cost for facts a
compiler can often prove.  This package proves them:

* :mod:`repro.analysis.alias.symbolic` derives a **symbolic address
  expression** for a base register — which object it points into (a
  frame slot, a global, a pointer parameter), at what constant byte
  offset, advancing how many bytes per loop iteration — by walking the
  def-use chains and the loop's induction variables;
* :mod:`repro.analysis.alias.lattice` compares two symbolic addresses
  (with their touched byte intervals) on the three-point verdict
  lattice ``no-alias`` / ``may-alias`` / ``must-alias``, and decides
  when wide-access **alignment** is statically provable;
* :mod:`repro.analysis.alias.summary` rolls both up into a per-function
  **memory-dependence summary**, cached under the
  :class:`repro.analysis.manager.AnalysisManager` as the ``memdep``
  analysis.

Consumers: the coalescer's hazard analysis and run-time-check planner
(statically discharging Figure 5 checks), and the ``alias-consistency``
and ``redundant-runtime-check`` sanitizer checkers.
"""

from repro.analysis.alias.lattice import (
    MAY_ALIAS,
    MUST_ALIAS,
    NO_ALIAS,
    alias_intervals,
    join,
    provable_alignment,
)
from repro.analysis.alias.symbolic import (
    AddressExpr,
    Root,
    resolve_loop_base,
    resolve_reg_at,
)
from repro.analysis.alias.summary import (
    LoopAliasSummary,
    MemoryDependenceSummary,
    RefInfo,
    annotate_memory_roots,
    constant_trip_count,
    memory_dependence,
)

__all__ = [
    "AddressExpr",
    "LoopAliasSummary",
    "MAY_ALIAS",
    "MUST_ALIAS",
    "MemoryDependenceSummary",
    "NO_ALIAS",
    "RefInfo",
    "Root",
    "alias_intervals",
    "annotate_memory_roots",
    "constant_trip_count",
    "join",
    "memory_dependence",
    "provable_alignment",
    "resolve_loop_base",
    "resolve_reg_at",
]
