"""The analysis manager: caching with pass-level invalidation.

Every pass in the cleanup fixpoint used to recompute its dataflow from
scratch — ROADMAP's profile showed ``cleanup``/``global_const_prop``
spending ~95% of compile time rebuilding reaching definitions the
previous pass had already built.  The manager memoizes analyses per
function; a pass that changes a function reports which analyses it
*preserves* (via a ``preserves`` attribute on the pass callable, a set of
analysis names) and the manager drops everything else.

Registered analyses:

``reaching``
    :func:`repro.analysis.reaching.reaching_definitions`
``defuse``
    :func:`repro.analysis.defuse.def_use_chains`
``liveness``
    :func:`repro.analysis.liveness.liveness`
``dominators``
    :func:`repro.analysis.dominators.immediate_dominators`
``memdep``
    :func:`repro.analysis.alias.memory_dependence` — the symbolic alias
    and memory-dependence summary.

Functions are held through a :class:`weakref.WeakKeyDictionary`, so a
cached entry can never outlive (or be confused with) its function, and a
manager kept around between compilations leaks nothing.
"""

from __future__ import annotations

import weakref
from typing import Callable, Dict, FrozenSet, Iterable, Optional

from repro.errors import ReproError
from repro.ir.function import Function

#: Analysis name -> "module:callable" resolved lazily (the alias engine
#: imports back into analysis, so eager imports would cycle).
_REGISTRY: Dict[str, str] = {
    "reaching": "repro.analysis.reaching:reaching_definitions",
    "defuse": "repro.analysis.defuse:def_use_chains",
    "liveness": "repro.analysis.liveness:liveness",
    "dominators": "repro.analysis.dominators:immediate_dominators",
    "memdep": "repro.analysis.alias:memory_dependence",
}

ALL_ANALYSES: FrozenSet[str] = frozenset(_REGISTRY)

_resolved: Dict[str, Callable[[Function], object]] = {}


def _resolve(name: str) -> Callable[[Function], object]:
    fn = _resolved.get(name)
    if fn is None:
        try:
            module_name, attr = _REGISTRY[name].split(":")
        except KeyError:
            raise ReproError(
                f"unknown analysis {name!r}; known: "
                f"{', '.join(sorted(_REGISTRY))}"
            ) from None
        import importlib

        fn = getattr(importlib.import_module(module_name), attr)
        _resolved[name] = fn
    return fn


class AnalysisManager:
    """Per-function analysis cache with explicit invalidation."""

    def __init__(self) -> None:
        self._cache: "weakref.WeakKeyDictionary[Function, Dict[str, object]]"
        self._cache = weakref.WeakKeyDictionary()
        self.hits = 0
        self.misses = 0

    # -- retrieval ----------------------------------------------------------
    def get(self, func: Function, name: str) -> object:
        entry = self._cache.get(func)
        if entry is None:
            entry = {}
            self._cache[func] = entry
        if name in entry:
            self.hits += 1
            return entry[name]
        self.misses += 1
        result = _resolve(name)(func)
        entry[name] = result
        return result

    def reaching(self, func: Function):
        return self.get(func, "reaching")

    def defuse(self, func: Function):
        return self.get(func, "defuse")

    def liveness(self, func: Function):
        return self.get(func, "liveness")

    def dominators(self, func: Function):
        return self.get(func, "dominators")

    def memdep(self, func: Function):
        return self.get(func, "memdep")

    # -- invalidation -------------------------------------------------------
    def invalidate(
        self,
        func: Function,
        preserved: Optional[Iterable[str]] = None,
    ) -> None:
        """Drop ``func``'s cached analyses, keeping only ``preserved``.

        Called after a pass changed the function; the pass's ``preserves``
        declaration becomes ``preserved``.  An empty/absent declaration
        drops everything — conservatively correct for any mutation.
        """
        entry = self._cache.get(func)
        if not entry:
            return
        keep = frozenset(preserved or ())
        for name in list(entry):
            if name not in keep:
                del entry[name]

    def clear(self) -> None:
        """Drop every cached analysis for every function."""
        self._cache.clear()


def invalidate_after(pass_fn, manager: Optional[AnalysisManager],
                     func: Function, changed) -> None:
    """Apply ``pass_fn``'s ``preserves`` declaration to ``manager``.

    ``changed`` falsy (and not ``None``) means the pass left the function
    untouched, which preserves everything; ``None`` means the outcome is
    unknown (a guarded stage that rolled back or returned no verdict) and
    is treated as changed.
    """
    if manager is None or changed is False:
        return
    manager.invalidate(func, getattr(pass_fn, "preserves", None))
