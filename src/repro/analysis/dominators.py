"""Dominator computation (Cooper–Harvey–Kennedy iterative algorithm)."""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.analysis.cfgutil import predecessors, reverse_postorder
from repro.ir.function import Function


def immediate_dominators(func: Function) -> Dict[str, Optional[str]]:
    """Immediate dominator of every reachable block.

    The entry block maps to ``None``.  Unreachable blocks are absent.
    """
    order = reverse_postorder(func)
    position = {label: i for i, label in enumerate(order)}
    preds = predecessors(func)
    entry = func.entry.label

    idom: Dict[str, Optional[str]] = {entry: entry}

    def intersect(a: str, b: str) -> str:
        while a != b:
            while position[a] > position[b]:
                a = idom[a]  # type: ignore[assignment]
            while position[b] > position[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    changed = True
    while changed:
        changed = False
        for label in order:
            if label == entry:
                continue
            candidates = [
                p for p in preds[label] if p in idom and p in position
            ]
            if not candidates:
                continue
            new_idom = candidates[0]
            for other in candidates[1:]:
                new_idom = intersect(new_idom, other)
            if idom.get(label) != new_idom:
                idom[label] = new_idom
                changed = True

    result: Dict[str, Optional[str]] = {
        label: idom[label] for label in order
    }
    result[entry] = None
    return result


def dominator_sets(func: Function) -> Dict[str, Set[str]]:
    """Full dominator sets, derived from the idom tree."""
    idom = immediate_dominators(func)
    sets: Dict[str, Set[str]] = {}
    for label in idom:
        chain = {label}
        walk = idom[label]
        while walk is not None:
            chain.add(walk)
            walk = idom[walk]
        sets[label] = chain
    return sets


def dominates(
    idom: Dict[str, Optional[str]], a: str, b: str
) -> bool:
    """Whether block ``a`` dominates block ``b`` under the idom tree."""
    walk: Optional[str] = b
    while walk is not None:
        if walk == a:
            return True
        walk = idom.get(walk)
    return False
