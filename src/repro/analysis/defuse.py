"""Def-use and use-def chains, derived from reaching definitions.

Sparse optimizers (the worklist form of global constant propagation, the
alias engine's symbolic address resolution) want to hop straight from a
definition to its uses and back, instead of re-scanning blocks.  One
linear sweep over the function — seeded with each block's incoming
reaching sets — produces both directions.

A *use site* is ``(block_label, instr_index, reg_index)``; a *def site*
is the usual ``(block_label, instr_index)`` pair of
:mod:`repro.analysis.reaching`.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analysis.reaching import DefSite, ReachingDefs, \
    reaching_definitions
from repro.ir.function import Function

UseSite = Tuple[str, int, int]


class DefUseChains:
    """Both directions of the def/use relation for one function."""

    def __init__(
        self,
        func: Function,
        reaching: ReachingDefs,
        uses_of: Dict[DefSite, List[UseSite]],
        defs_for: Dict[UseSite, Tuple[DefSite, ...]],
    ):
        self.func = func
        self.reaching = reaching
        self.uses_of = uses_of
        self.defs_for = defs_for


def def_use_chains(func: Function) -> DefUseChains:
    """Build def-use and use-def chains in one pass over ``func``."""
    reaching = reaching_definitions(func)
    uses_of: Dict[DefSite, List[UseSite]] = {}
    defs_for: Dict[UseSite, Tuple[DefSite, ...]] = {}
    for label in reaching.reach_in:
        block = func.block(label)
        current: Dict[int, Tuple[DefSite, ...]] = dict(
            reaching._incoming(label)
        )
        for index, instr in enumerate(block.instrs):
            seen = set()
            for reg in instr.uses():
                if reg.index in seen:
                    continue
                seen.add(reg.index)
                sites = current.get(reg.index, ())
                use = (label, index, reg.index)
                defs_for[use] = sites
                for site in sites:
                    uses_of.setdefault(site, []).append(use)
            for reg in instr.defs():
                current[reg.index] = ((label, index),)
    return DefUseChains(func, reaching, uses_of, defs_for)
