"""Control-flow and dataflow analyses.

These are the prerequisites of the optimizer and the coalescer: dominator
trees, natural loop discovery (with preheader insertion), liveness,
reaching definitions, induction variables, and counted-loop trip-count
recognition.
"""

from repro.analysis.cfgutil import (
    predecessors,
    reachable_labels,
    reverse_postorder,
)
from repro.analysis.dominators import dominator_sets, dominates, immediate_dominators
from repro.analysis.loops import Loop, ensure_preheader, find_loops
from repro.analysis.liveness import LivenessInfo, liveness
from repro.analysis.reaching import ReachingDefs, reaching_definitions
from repro.analysis.induction import BasicIV, find_basic_ivs
from repro.analysis.tripcount import TripCount, analyze_trip_count

__all__ = [
    "BasicIV",
    "LivenessInfo",
    "Loop",
    "ReachingDefs",
    "TripCount",
    "analyze_trip_count",
    "dominator_sets",
    "dominates",
    "ensure_preheader",
    "find_basic_ivs",
    "find_loops",
    "immediate_dominators",
    "liveness",
    "predecessors",
    "reachable_labels",
    "reaching_definitions",
    "reverse_postorder",
]
