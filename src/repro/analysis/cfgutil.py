"""Small CFG helpers shared by every analysis."""

from __future__ import annotations

from typing import Dict, List, Set

from repro.ir.function import Function


def predecessors(func: Function) -> Dict[str, List[str]]:
    """Map each block label to the labels of its predecessors.

    Edge multiplicity is collapsed: a conditional jump with both arms at
    the same target contributes one predecessor entry.
    """
    preds: Dict[str, List[str]] = {b.label: [] for b in func.blocks}
    for block in func.blocks:
        for succ in set(block.successors()):
            preds[succ].append(block.label)
    return preds


def reachable_labels(func: Function) -> Set[str]:
    """Labels reachable from the entry block."""
    seen: Set[str] = set()
    work = [func.entry.label]
    while work:
        label = work.pop()
        if label in seen:
            continue
        seen.add(label)
        work.extend(func.block(label).successors())
    return seen


def reverse_postorder(func: Function) -> List[str]:
    """Reverse postorder over reachable blocks (good order for forward
    dataflow problems)."""
    seen: Set[str] = set()
    order: List[str] = []

    def visit(label: str) -> None:
        stack = [(label, iter(func.block(label).successors()))]
        seen.add(label)
        while stack:
            current, successors = stack[-1]
            advanced = False
            for succ in successors:
                if succ not in seen:
                    seen.add(succ)
                    stack.append((succ, iter(func.block(succ).successors())))
                    advanced = True
                    break
            if not advanced:
                order.append(current)
                stack.pop()

    visit(func.entry.label)
    order.reverse()
    return order
