"""Counted-loop recognition.

A loop is *counted* when its single latch ends in a comparison between a
basic induction variable and a loop-invariant bound, and the IV's step
moves toward the bound.  The unroller and the coalescer read the result:

* ``iv``/``step``: the counter and its per-iteration change;
* ``bound``: the loop-invariant operand (register or constant);
* ``rel``: the relation under which the loop *continues*;
* ``exit_label``: where control goes when the loop finishes.

The structure is symbolic — start values and trip counts are run-time
quantities.  Transformations emit preheader code that reads the IV and the
bound registers directly; because our front end rotates loops (zero-trip
guard before the preheader), the loop is known to execute at least once
there, so ``(bound - iv)`` arithmetic in the preheader is safe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.analysis.induction import BasicIV, find_basic_ivs
from repro.analysis.loops import Loop
from repro.ir.function import Function
from repro.ir.rtl import CondJump, Const, Operand, Reg, invert_relation, swap_relation

_INCREASING_RELS = frozenset({"lt", "le", "ltu", "leu", "ne"})
_DECREASING_RELS = frozenset({"gt", "ge", "gtu", "geu", "ne"})


@dataclass
class TripCount:
    """Symbolic description of a counted loop."""

    loop: Loop
    iv: BasicIV
    bound: Operand
    rel: str          # relation under which the loop continues
    exit_label: str
    latch_label: str

    @property
    def step(self) -> int:
        return self.iv.step

    def __repr__(self) -> str:
        return (
            f"<TripCount r{self.iv.reg.index} step={self.step:+d} "
            f"{self.rel} {self.bound}>"
        )


def _loop_invariant(func: Function, loop: Loop, value: Operand) -> bool:
    if isinstance(value, Const):
        return True
    for label in loop.blocks:
        for instr in func.block(label).instrs:
            if any(r.index == value.index for r in instr.defs()):
                return False
    return True


def analyze_trip_count(
    func: Function,
    loop: Loop,
    ivs: Optional[Dict[int, BasicIV]] = None,
) -> Optional[TripCount]:
    """Recognize ``loop`` as counted; returns ``None`` when it is not."""
    if len(loop.latches) != 1:
        return None
    latch_label = next(iter(loop.latches))
    term = func.block(latch_label).terminator
    if not isinstance(term, CondJump):
        return None

    if term.iftrue == loop.header and term.iffalse not in loop.blocks:
        rel, a, b = term.rel, term.a, term.b
        exit_label = term.iffalse
    elif term.iffalse == loop.header and term.iftrue not in loop.blocks:
        rel, a, b = invert_relation(term.rel), term.a, term.b
        exit_label = term.iftrue
    else:
        return None

    if ivs is None:
        ivs = find_basic_ivs(func, loop)

    # Orient the comparison as "iv REL bound".
    candidates = []
    if isinstance(a, Reg) and a.index in ivs:
        candidates.append((ivs[a.index], b, rel))
    if isinstance(b, Reg) and b.index in ivs:
        candidates.append((ivs[b.index], a, swap_relation(rel)))
    for iv, bound, oriented_rel in candidates:
        if not _loop_invariant(func, loop, bound):
            continue
        if iv.step > 0 and oriented_rel in _INCREASING_RELS:
            pass
        elif iv.step < 0 and oriented_rel in _DECREASING_RELS:
            pass
        else:
            continue
        if oriented_rel == "ne" and abs(iv.step) != 1:
            # iv may step over the bound; not provably counted.
            continue
        return TripCount(loop, iv, bound, oriented_rel, exit_label,
                         latch_label)
    return None
