"""Legalization: rewrite generic RTL into machine-legal RTL.

Three rewrites matter for this paper:

* **Narrow loads on the Alpha** (no 8/16-bit loads): become
  ``addr = base + disp; q = uload.8 [addr]; dst = ext addr-pos`` — the
  exact ``ldq_u`` + ``extqh``/``extql`` idiom of Figure 1b.
* **Narrow stores on the Alpha**: become a read-modify-write
  ``uload.8`` + ``ins`` + ``ustore.8`` sequence, which is why coalescing
  stores pays off so handsomely there.
* **Field insertion on the Motorola 88100** (no insert instruction):
  expands into mask/shift/or sequences, which is why coalescing stores
  *loses* there.

Lowering preserves semantics exactly; the simulator runs lowered code.
"""

from __future__ import annotations

from typing import List

from repro.errors import LoweringError
from repro.ir.function import Function, Module
from repro.ir.rtl import (
    BinOp,
    Const,
    Extract,
    Insert,
    Instr,
    Load,
    Mov,
    Operand,
    Reg,
    Store,
    UnOp,
)
from repro.machine.machine import MachineDescription


def _field_shift(machine: MachineDescription, pos: int, width: int) -> int:
    """Bit offset of a byte field within a word, honouring endianness.

    ``pos`` is a byte address; only its low bits select the position within
    the word.  On little-endian machines byte 0 is the least significant
    byte; on big-endian machines it is the most significant.
    """
    byte = pos % machine.word_bytes
    if machine.endian == "little":
        return 8 * byte
    return 8 * (machine.word_bytes - byte - width)


def _materialize_addr(
    func: Function, out: List[Instr], base: Reg, disp: int
) -> Reg:
    """Emit ``addr = base + disp`` unless disp is zero."""
    if disp == 0:
        return base
    addr = func.new_reg("addr")
    out.append(BinOp("add", addr, base, Const(disp)))
    return addr


def _lower_narrow_load(
    machine: MachineDescription, func: Function, out: List[Instr], load: Load
) -> None:
    if not machine.has_unaligned_wide:
        raise LoweringError(
            f"{machine.name}: cannot lower {load.width}-byte load "
            f"(no unaligned wide load)"
        )
    addr = _materialize_addr(func, out, load.base, load.disp)
    quad = func.new_reg("q")
    wide = Load(quad, addr, 0, machine.word_bytes, signed=False,
                unaligned=True)
    wide.notes.update(load.notes)
    out.append(wide)
    out.append(Extract(load.dst, quad, addr, load.width, load.signed))


def _lower_narrow_store(
    machine: MachineDescription, func: Function, out: List[Instr],
    store: Store,
) -> None:
    if not machine.has_unaligned_wide:
        raise LoweringError(
            f"{machine.name}: cannot lower {store.width}-byte store "
            f"(no unaligned wide store)"
        )
    addr = _materialize_addr(func, out, store.base, store.disp)
    quad = func.new_reg("q")
    merged = func.new_reg("q")
    wide_load = Load(quad, addr, 0, machine.word_bytes, signed=False,
                     unaligned=True)
    wide_load.notes.update(store.notes)
    out.append(wide_load)
    _lower_insert_or_emit(
        machine, func, out,
        Insert(merged, quad, store.src, addr, store.width),
    )
    wide_store = Store(addr, 0, merged, machine.word_bytes, unaligned=True)
    wide_store.notes.update(store.notes)
    out.append(wide_store)


def _lower_insert_or_emit(
    machine: MachineDescription, func: Function, out: List[Instr],
    insert: Insert,
) -> None:
    """Emit ``insert`` directly, or expand it when the machine lacks one."""
    if machine.has_insert:
        out.append(insert)
        return
    if not isinstance(insert.pos, Const):
        raise LoweringError(
            f"{machine.name}: cannot expand insert with a dynamic position"
        )
    shift = _field_shift(machine, insert.pos.value, insert.width)
    field_mask = (1 << (8 * insert.width)) - 1
    hole_mask = ~(field_mask << shift) & machine.word_mask

    # masked_src = (src & field_mask) << shift
    masked = func.new_reg("fld")
    out.append(BinOp("and", masked, insert.src, Const(field_mask)))
    shifted: Operand = masked
    if shift:
        shifted = func.new_reg("fld")
        out.append(BinOp("shl", shifted, masked, Const(shift)))
    # cleared = acc & ~(field_mask << shift)
    cleared = func.new_reg("acc")
    out.append(BinOp("and", cleared, insert.acc, Const(hole_mask)))
    out.append(BinOp("or", insert.dst, cleared, shifted))


def _lower_extract_or_emit(
    machine: MachineDescription, func: Function, out: List[Instr],
    extract: Extract,
) -> None:
    """Emit ``extract`` directly, or expand it via shifts."""
    if machine.has_extract:
        out.append(extract)
        return
    if not isinstance(extract.pos, Const):
        raise LoweringError(
            f"{machine.name}: cannot expand extract with a dynamic position"
        )
    shift = _field_shift(machine, extract.pos.value, extract.width)
    bits = machine.word_bits
    field_bits = 8 * extract.width
    if extract.signed:
        # Shift the field to the top, then arithmetic-shift it back down.
        top = func.new_reg("fld")
        left = bits - shift - field_bits
        if left:
            out.append(BinOp("shl", top, extract.src, Const(left)))
        else:
            out.append(Mov(top, extract.src))
        out.append(
            BinOp("shra", extract.dst, top, Const(bits - field_bits))
        )
    else:
        down = func.new_reg("fld")
        if shift:
            out.append(BinOp("shrl", down, extract.src, Const(shift)))
        else:
            out.append(Mov(down, extract.src))
        out.append(
            BinOp(
                "and", extract.dst, down, Const((1 << field_bits) - 1)
            )
        )


def _lower_instr(
    machine: MachineDescription, func: Function, out: List[Instr],
    instr: Instr,
) -> None:
    if isinstance(instr, Load):
        if instr.unaligned:
            if not machine.has_unaligned_wide:
                raise LoweringError(
                    f"{machine.name}: unaligned wide load unsupported"
                )
            out.append(instr)
        elif machine.supports_load(instr.width):
            out.append(instr)
        else:
            _lower_narrow_load(machine, func, out, instr)
        return
    if isinstance(instr, Store):
        if instr.unaligned:
            if not machine.has_unaligned_wide:
                raise LoweringError(
                    f"{machine.name}: unaligned wide store unsupported"
                )
            out.append(instr)
        elif machine.supports_store(instr.width):
            out.append(instr)
        else:
            _lower_narrow_store(machine, func, out, instr)
        return
    if isinstance(instr, Insert):
        _lower_insert_or_emit(machine, func, out, instr)
        return
    if isinstance(instr, Extract):
        _lower_extract_or_emit(machine, func, out, instr)
        return
    out.append(instr)


def lower_function(func: Function, machine: MachineDescription) -> Function:
    """Legalize ``func`` for ``machine`` in place; returns the function."""
    for block in func.blocks:
        lowered: List[Instr] = []
        for instr in block.instrs:
            _lower_instr(machine, func, lowered, instr)
        block.instrs = lowered
    return func


def lower_module(module: Module, machine: MachineDescription) -> Module:
    """Legalize every function of ``module`` in place."""
    for func in module:
        lower_function(func, machine)
    return module
