"""Motorola 88100 machine description.

Relevant traits, per the MC88100 user's manual and the paper's §3:

* 32-bit big-endian RISC with byte/halfword/word loads and stores.
* Single-instruction *bit-field extraction* (``ext``/``extu``), which is why
  coalescing **loads** pays off: one word load plus cheap extracts replaces
  several narrow loads.
* **No bit-field insertion** instruction — placing a narrow value into a
  word without disturbing its neighbours takes a mask/shift/or sequence
  (``mak`` + ``and`` + ``or``); the lowering pass expands :class:`Insert`
  accordingly.  The paper observes exactly this: "there are no instructions
  for inserting bytes and words into a register without affecting the other
  bytes or words in the register … these sequences outweigh the gains of
  coalescing stores."
"""

from __future__ import annotations

from repro.machine.machine import CacheGeometry, MachineDescription


class Motorola88100(MachineDescription):
    """32-bit big-endian RISC with cheap extraction, no insertion."""

    def __init__(self) -> None:
        super().__init__(
            name="m88100",
            word_bytes=4,
            endian="big",
            issue_width=1,
            num_registers=32,
            latencies={
                "mov": 1,
                "alu": 1,
                "mul": 4,
                "div": 38,
                "load": 3,
                "store": 1,
                "ext": 1,
                "ins": 4,  # only used pre-lowering; lowering expands inserts
                "addr": 1,
                "branch": 1,
                "jump": 1,
                "call": 2,
                "ret": 1,
            },
            load_widths=(1, 2, 4),
            store_widths=(1, 2, 4),
            has_unaligned_wide=False,
            has_extract=True,
            has_insert=False,
            icache=CacheGeometry(16384, 32, 10),
            dcache=CacheGeometry(16384, 32, 10),
            # Loads and stores go through the external CMMU: the memory
            # pipeline accepts a new access only every other cycle, which
            # is exactly why replacing four narrow accesses with one wide
            # access + cheap extracts pays off on this machine.
            memory_interval=2,
        )
