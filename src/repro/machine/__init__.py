"""Target machine descriptions and the legalization (lowering) pass.

Three machines are modelled, matching the paper's evaluation platforms:

* :class:`repro.machine.alpha.DecAlpha` — 64-bit, little-endian, no narrow
  (8/16-bit) loads or stores, unaligned quadword load/store plus
  extract/insert instructions.
* :class:`repro.machine.m88100.Motorola88100` — 32-bit, big-endian RISC;
  cheap narrow loads/stores and single-instruction field *extraction*, but
  no field *insertion* instruction.
* :class:`repro.machine.m68030.Motorola68030` — 32-bit, big-endian CISC;
  narrow memory operations are cheap relative to its slow bit-field
  instructions.
"""

from repro.machine.machine import MachineDescription, classify_instr
from repro.machine.alpha import DecAlpha
from repro.machine.m88100 import Motorola88100
from repro.machine.m68030 import Motorola68030
from repro.machine.lowering import lower_function, lower_module
from repro.machine.registry import MACHINE_NAMES, get_machine

__all__ = [
    "DecAlpha",
    "MACHINE_NAMES",
    "MachineDescription",
    "Motorola68030",
    "Motorola88100",
    "classify_instr",
    "get_machine",
    "lower_function",
    "lower_module",
]
