"""Motorola 68030 machine description.

Relevant traits, per the MC68030 user's manual and the paper's §3:

* 32-bit big-endian CISC; byte/word/long memory operations are directly
  supported and comparatively cheap.
* Bit-field instructions (``BFEXTS``/``BFEXTU``/``BFINS``) *exist* but are
  slow — "while the Motorola 68030 has instructions for extracting bytes
  and words, these are much more expensive than simply loading the bytes
  and words directly" (§3).  The latency table encodes that: a field
  extract costs more than a narrow load, and an insert costs more still.

With this table, replacing four byte loads (4 × load) with one long load
plus four extracts (load + 4 × ext) is a net loss — which is precisely the
paper's 68030 result, and what our profitability analysis must detect.
"""

from __future__ import annotations

from repro.machine.machine import CacheGeometry, MachineDescription


class Motorola68030(MachineDescription):
    """32-bit big-endian CISC with slow bit-field instructions."""

    def __init__(self) -> None:
        super().__init__(
            name="m68030",
            word_bytes=4,
            endian="big",
            issue_width=1,
            num_registers=16,
            latencies={
                "mov": 2,
                "alu": 2,
                "mul": 28,
                "div": 56,
                "load": 6,
                "store": 5,
                "ext": 12,
                "ins": 14,
                "addr": 2,
                "branch": 4,
                "jump": 4,
                "call": 6,
                "ret": 4,
            },
            load_widths=(1, 2, 4),
            store_widths=(1, 2, 4),
            has_unaligned_wide=False,
            has_extract=True,
            has_insert=True,
            icache=CacheGeometry(256, 16, 8),
            dcache=CacheGeometry(256, 16, 8),
            # Non-pipelined: every instruction runs to completion before
            # the next starts, so a slow BFEXTS can never hide behind a
            # load — the structural reason coalescing loses here.
            pipelined=False,
        )
