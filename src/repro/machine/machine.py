"""Machine description base class.

A :class:`MachineDescription` supplies everything target-dependent:

* data layout (word size, endianness),
* the legality of memory operations (which widths load/store directly,
  whether unaligned wide accesses exist),
* the legality of field extract/insert instructions,
* instruction latencies and the issue width (used by the list scheduler and
  the block cost model),
* cache geometry (used by the simulator and the unrolling heuristic).

Latencies are looked up by *instruction class* (see :func:`classify_instr`),
so cost models stay small tables rather than per-opcode case analyses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.errors import IRError
from repro.ir.rtl import (
    BinOp,
    Call,
    CondJump,
    Extract,
    FrameAddr,
    GlobalAddr,
    Insert,
    Instr,
    Jump,
    Load,
    Mov,
    Ret,
    Store,
    UnOp,
)

_MUL_OPS = frozenset({"mul"})
_DIV_OPS = frozenset({"div", "divu", "rem", "remu"})


def classify_instr(instr: Instr) -> str:
    """Map an instruction to its latency/cost class.

    Classes: ``mov``, ``alu``, ``mul``, ``div``, ``load``, ``store``,
    ``ext``, ``ins``, ``addr``, ``branch``, ``jump``, ``call``, ``ret``.
    """
    if isinstance(instr, Mov):
        return "mov"
    if isinstance(instr, BinOp):
        if instr.op in _MUL_OPS:
            return "mul"
        if instr.op in _DIV_OPS:
            return "div"
        return "alu"
    if isinstance(instr, UnOp):
        return "alu"
    if isinstance(instr, Load):
        return "load"
    if isinstance(instr, Store):
        return "store"
    if isinstance(instr, Extract):
        return "ext"
    if isinstance(instr, Insert):
        return "ins"
    if isinstance(instr, (FrameAddr, GlobalAddr)):
        return "addr"
    if isinstance(instr, CondJump):
        return "branch"
    if isinstance(instr, Jump):
        return "jump"
    if isinstance(instr, Call):
        return "call"
    if isinstance(instr, Ret):
        return "ret"
    raise IRError(f"cannot classify {type(instr).__name__}")


@dataclass
class CacheGeometry:
    """Size/line/penalty description of one cache level."""

    size_bytes: int
    line_bytes: int
    miss_penalty: int

    @property
    def lines(self) -> int:
        return self.size_bytes // self.line_bytes


@dataclass
class MachineDescription:
    """Everything the compiler and the simulator need to know about a CPU."""

    name: str
    word_bytes: int
    endian: str  # 'little' or 'big'
    issue_width: int
    num_registers: int
    latencies: Dict[str, int] = field(default_factory=dict)
    # Cycles the (single) memory port stays busy per load/store — the
    # initiation interval of the memory pipeline.  One for the Alpha,
    # two for the 88100's external CMMU path.
    memory_interval: int = 1
    # False models a non-pipelined CISC (the 68030): each instruction
    # occupies the machine for its full latency and nothing overlaps.
    pipelined: bool = True
    # Memory operation legality.
    load_widths: Tuple[int, ...] = (1, 2, 4)
    store_widths: Tuple[int, ...] = (1, 2, 4)
    has_unaligned_wide: bool = False
    has_extract: bool = True
    has_insert: bool = True
    # Caches.
    icache: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(8192, 32, 10)
    )
    dcache: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(8192, 32, 10)
    )
    # Encoded size of one RTL in bytes; used for I-cache footprints.
    instr_bytes: int = 4

    # -- data layout -----------------------------------------------------------
    @property
    def word_bits(self) -> int:
        return self.word_bytes * 8

    @property
    def word_mask(self) -> int:
        return (1 << self.word_bits) - 1

    # -- legality ---------------------------------------------------------------
    def supports_load(self, width: int) -> bool:
        return width in self.load_widths

    def supports_store(self, width: int) -> bool:
        return width in self.store_widths

    @property
    def wide_width(self) -> int:
        """The widest single memory access, in bytes (== the word size)."""
        return self.word_bytes

    def coalesce_factor(self, narrow_width: int) -> int:
        """How many ``narrow_width`` accesses fit in one wide access."""
        return self.wide_width // narrow_width

    # -- costs -------------------------------------------------------------------
    def latency(self, instr: Instr) -> int:
        """Result latency of ``instr`` in cycles.

        Signed extracts may be costed separately (key ``ext_signed``),
        reflecting machines like the Alpha where signed extraction takes an
        extra arithmetic shift (Figure 1b lines 15-16 of the paper).
        """
        cls = classify_instr(instr)
        if (
            cls == "ext"
            and isinstance(instr, Extract)
            and instr.signed
            and "ext_signed" in self.latencies
        ):
            return self.latencies["ext_signed"]
        try:
            return self.latencies[cls]
        except KeyError:
            raise IRError(
                f"{self.name}: no latency for class {cls!r}"
            ) from None

    def block_footprint(self, instr_count: int) -> int:
        """Bytes of I-cache a block of ``instr_count`` instructions needs."""
        return instr_count * self.instr_bytes

    def __repr__(self) -> str:
        return f"<MachineDescription {self.name}>"
