"""Lookup of machine descriptions by name."""

from __future__ import annotations

from typing import Dict, Type

from repro.errors import ReproError
from repro.machine.alpha import DecAlpha
from repro.machine.m68030 import Motorola68030
from repro.machine.m88100 import Motorola88100
from repro.machine.machine import MachineDescription

_MACHINES: Dict[str, Type[MachineDescription]] = {
    "alpha": DecAlpha,
    "m88100": Motorola88100,
    "m68030": Motorola68030,
}

MACHINE_NAMES = tuple(sorted(_MACHINES))


def get_machine(name: str) -> MachineDescription:
    """Instantiate the machine description called ``name``.

    Accepted names: ``alpha``, ``m88100``, ``m68030``.
    """
    try:
        return _MACHINES[name]()
    except KeyError:
        raise ReproError(
            f"unknown machine {name!r}; known: {', '.join(MACHINE_NAMES)}"
        ) from None
