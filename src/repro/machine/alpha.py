"""DEC Alpha (21064 / EV4 generation) machine description.

Relevant traits, per the Alpha Architecture Handbook and the paper's §2.1:

* 64-bit registers; loads and stores move 32- or 64-bit quantities only —
  there are **no byte or shortword loads/stores** on this generation.
* Unaligned quadword load/store (``ldq_u``/``stq_u``) fetch/store the
  aligned quadword *containing* the given address (low three address bits
  ignored), so byte/shortword access is done with ``ldq_u`` + extract and
  ``ldq_u`` + insert/mask + ``stq_u`` sequences.
* Aligned loads/stores trap when the address is not naturally aligned.
* Dual issue; little-endian.

The latency table is in the spirit of the 21064: single-cycle integer ALU,
3-cycle primary-cache loads, a slow multiplier, and a very slow (unpipelined)
divide.  Signed field extraction costs an extra cycle because it is really
``extqh`` followed by an arithmetic right shift (Figure 1b, lines 15-16).
"""

from __future__ import annotations

from repro.machine.machine import CacheGeometry, MachineDescription


class DecAlpha(MachineDescription):
    """64-bit little-endian Alpha with no narrow memory operations."""

    def __init__(self) -> None:
        super().__init__(
            name="alpha",
            word_bytes=8,
            endian="little",
            issue_width=2,
            num_registers=32,
            latencies={
                "mov": 1,
                "alu": 1,
                "mul": 6,
                "div": 30,
                "load": 3,
                "store": 1,
                "ext": 1,
                "ext_signed": 2,
                "ins": 2,
                "addr": 1,
                "branch": 1,
                "jump": 1,
                "call": 2,
                "ret": 1,
            },
            load_widths=(4, 8),
            store_widths=(4, 8),
            has_unaligned_wide=True,
            has_extract=True,
            has_insert=True,
            icache=CacheGeometry(8192, 32, 12),
            dcache=CacheGeometry(8192, 32, 12),
        )
