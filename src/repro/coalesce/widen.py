"""``InsertWideReferences``: the actual widening rewrite.

For a load run (Figure 1c, lines 12-16)::

    r1 = load.2s [p + 0]          q  = load.8u [p + 0]     # at first load
    r2 = load.2s [p + 2]    =>    r1 = ext.2s q, pos=0
    ...                           r2 = ext.2s q, pos=2
                                  ...

For a store run the duals apply: each narrow store becomes a field insert
into an accumulator register, and the *last* one also issues the single
wide store::

    store.2 [p + 0], r1           a1 = ins.2 0,  r1, pos=0
    store.2 [p + 2], r2     =>    a2 = ins.2 a1, r2, pos=2
    ...                           ...
    store.2 [p + 6], r4           a4 = ins.2 a3, r4, pos=6
                                  store.8 [p + 0], a4

The rewrite is planned as an index -> replacement-instruction-list map so
several runs can be applied to one block in a single rebuild, and so the
coalescer can apply the same plan to a *copy* of the loop (the paper's
LCOPY) while leaving the original safe loop untouched.
"""

from __future__ import annotations

from typing import Dict, List

from repro.coalesce.partition import Run
from repro.ir.function import BasicBlock, Function
from repro.ir.rtl import (
    BinOp,
    Const,
    Extract,
    Insert,
    Instr,
    Load,
    Operand,
    Reg,
    Store,
)


def _field_position(run: Run, ref_disp: int, machine) -> int:
    """Byte position of a field inside the widened register.

    For a full-word wide access this is simply the offset within the
    tile.  A *sub-word* wide access (e.g. coalescing two shorts into a
    32-bit load on a 64-bit machine, or a leftover byte pair into a
    16-bit load) leaves its value in the register's **low** bytes; on a
    big-endian machine the extract/insert byte numbering counts from the
    most significant end of the word, so the position must be biased by
    ``word_bytes - wide_width``.
    """
    offset = (ref_disp - run.start_disp) % run.wide_width
    if machine.endian == "big" and run.wide_width < machine.word_bytes:
        offset += machine.word_bytes - run.wide_width
    return offset


def _inherit_root_note(wide_instr: Instr, run: Run, width: int) -> None:
    """Carry the members' ``memdep_root`` claim onto the wide reference.

    The wide access touches exactly the union of the members' bytes, so
    when every member claims the same object the wide reference claims
    it too — at the wide width — keeping the coalesced (always-executed)
    path under the ``alias-consistency`` audit, not just the fallback.
    """
    notes = [ref.instr.notes.get("memdep_root") for ref in run.refs]
    note = notes[0]
    if note and all(
        other
        and other["kind"] == note["kind"]
        and other["name"] == note["name"]
        for other in notes
    ):
        wide_instr.notes["memdep_root"] = dict(note, width=width)


def widen_run(func: Function, run: Run, machine) -> Dict[int, List[Instr]]:
    """Plan the replacement instructions for one run.

    Returns a map from block instruction index to the list of instructions
    replacing it.
    """
    wide = run.wide_width
    start = run.start_disp
    if not run.is_store:
        wide_reg = func.new_reg("wq")
        plan: Dict[int, List[Instr]] = {}
        ordered = sorted(run.refs, key=lambda r: r.index)
        for position, ref in enumerate(ordered):
            load = ref.instr
            assert isinstance(load, Load)
            extract = Extract(
                load.dst,
                wide_reg,
                Const(_field_position(run, ref.disp, machine)),
                ref.width,
                load.signed,
            )
            extract.notes["coalesced"] = True
            plan[ref.index] = [extract]
        first_ref = ordered[0]
        wide_load = Load(
            wide_reg, run.partition.base, start, wide, signed=False
        )
        wide_load.notes["coalesced"] = True
        wide_load.notes["coalesced_shape"] = run.shape.kind
        _inherit_root_note(wide_load, run, wide)
        plan[first_ref.index] = [wide_load] + plan[first_ref.index]
        return plan

    # Store run: inserts in execution order, wide store at the last one.
    plan = {}
    acc: Operand = Const(0)
    ordered = sorted(run.refs, key=lambda r: r.index)
    for position, ref in enumerate(ordered):
        store = ref.instr
        assert isinstance(store, Store)
        new_acc = func.new_reg("wa")
        insert = Insert(
            new_acc,
            acc,
            store.src,
            Const(_field_position(run, ref.disp, machine)),
            ref.width,
        )
        insert.notes["coalesced"] = True
        plan[ref.index] = [insert]
        acc = new_acc
    last_ref = ordered[-1]
    wide_store = Store(run.partition.base, start, acc, wide)
    wide_store.notes["coalesced"] = True
    wide_store.notes["coalesced_shape"] = run.shape.kind
    _inherit_root_note(wide_store, run, wide)
    plan[last_ref.index].append(wide_store)
    return plan


def widen_run_unaligned(func: Function, run: Run) -> Dict[int, List[Instr]]:
    """Plan an *unaligned* wide load for one run (loads only).

    This is the paper's ``UnAlignedWideType`` (Figure 3, line 6): on a
    machine with ``ldq_u``-style accesses, the wide word at an arbitrary
    address is assembled from the two containing aligned words::

        a  = p + s
        q1 = uload.8 [a]          # aligned word containing a
        q2 = uload.8 [a + 7]      # aligned word containing a's last byte
        sh = (a & 7) * 8
        w  = (q1 >> sh) | ((q2 << 1) << (63 - sh))
        ... extracts from w at constant positions ...

    The ``(q2 << 1) << (63 - sh)`` form contributes zero when ``a`` is
    already aligned (where ``q2 == q1``), exactly like the Alpha's
    ``extqh`` producing zero for a shift of 64.  No run-time alignment
    check is needed — the trade is two loads plus five ALU operations
    instead of one load.
    """
    assert not run.is_store, "unaligned widening applies to load runs"
    wide = run.wide_width
    bits = 8 * wide
    base = run.partition.base
    start = run.start_disp

    setup: List[Instr] = []
    if start:
        addr = func.new_reg("ua")
        setup.append(BinOp("add", addr, base, Const(start)))
    else:
        addr = base
    q1 = func.new_reg("uq")
    q2 = func.new_reg("uq")
    low_bits = func.new_reg("t")
    shift = func.new_reg("sh")
    low = func.new_reg("t")
    high_seed = func.new_reg("t")
    inverse = func.new_reg("t")
    high = func.new_reg("t")
    wide_reg = func.new_reg("wq")

    load1 = Load(q1, addr, 0, wide, signed=False, unaligned=True)
    load2 = Load(q2, addr, wide - 1, wide, signed=False, unaligned=True)
    load1.notes["coalesced"] = True
    load2.notes["coalesced"] = True
    # The audit special-cases unaligned loads (they read the containing
    # aligned word), checking only the addressed byte — which for both
    # halves lies inside the claimed object.
    _inherit_root_note(load1, run, wide)
    _inherit_root_note(load2, run, wide)
    setup.extend(
        [
            load1,
            load2,
            BinOp("and", low_bits, addr, Const(wide - 1)),
            BinOp("shl", shift, low_bits, Const(3)),
            BinOp("shrl", low, q1, shift),
            BinOp("shl", high_seed, q2, Const(1)),
            BinOp("sub", inverse, Const(bits - 1), shift),
            BinOp("shl", high, high_seed, inverse),
            BinOp("or", wide_reg, low, high),
        ]
    )

    plan: Dict[int, List[Instr]] = {}
    ordered = sorted(run.refs, key=lambda r: r.index)
    for ref in ordered:
        load = ref.instr
        assert isinstance(load, Load)
        extract = Extract(
            load.dst,
            wide_reg,
            Const((ref.disp - start) % wide),
            ref.width,
            load.signed,
        )
        extract.notes["coalesced"] = True
        plan[ref.index] = [extract]
    plan[ordered[0].index] = setup + plan[ordered[0].index]
    return plan


def apply_plans(
    block: BasicBlock, plans: List[Dict[int, List[Instr]]]
) -> None:
    """Rebuild ``block`` applying several (index-disjoint) widening plans."""
    merged: Dict[int, List[Instr]] = {}
    for plan in plans:
        for index, replacement in plan.items():
            if index in merged:
                raise AssertionError(
                    f"overlapping widening plans at index {index}"
                )
            merged[index] = replacement
    rebuilt: List[Instr] = []
    for index, instr in enumerate(block.instrs):
        if index in merged:
            rebuilt.extend(merged[index])
        else:
            rebuilt.append(instr)
    block.instrs = rebuilt
