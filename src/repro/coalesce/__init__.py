"""Memory access coalescing — the paper's primary contribution.

Pipeline position: runs after unrolling (which exposes several narrow
references per iteration at consecutive displacements) and before machine
lowering.  Structure mirrors the paper's Figure 2-4 algorithms:

* :mod:`repro.coalesce.partition` — classify memory references into
  partitions by loop-invariant/induction base register and compute their
  relative offsets (``ClassifyMemoryReferencesIntoPartitions`` +
  ``CalculateRelativeOffsets``);
* :mod:`repro.coalesce.hazards` — the safety analysis (``IsHazard``,
  Figure 4), producing either a rejection or a set of partition pairs that
  must be alias-checked at run time;
* :mod:`repro.coalesce.widen` — ``InsertWideReferences``: replace narrow
  load runs with one wide load + extracts, narrow store runs with inserts
  + one wide store;
* :mod:`repro.coalesce.runtime_checks` — the paper's run-time alias and
  alignment analysis: preheader check chains that fall back to the
  original ("safe") loop (Figure 5);
* :mod:`repro.coalesce.profitability` — ``DoProfitabilityAnalysisAndModify``
  (Figure 3): schedule the original and the coalesced copy, keep the copy
  only when it is faster;
* :mod:`repro.coalesce.coalescer` — the driving pass
  (``CoalesceMemoryAccesses``).
"""

from repro.coalesce.partition import MemoryRef, Partition, classify_partitions
from repro.coalesce.partition import find_runs, Run
from repro.coalesce.hazards import HazardResult, check_hazards
from repro.coalesce.widen import widen_run
from repro.coalesce.runtime_checks import insert_runtime_checks
from repro.coalesce.profitability import estimate_block_cycles, lower_block_copy
from repro.coalesce.coalescer import CoalesceReport, coalesce_function

__all__ = [
    "CoalesceReport",
    "HazardResult",
    "MemoryRef",
    "Partition",
    "Run",
    "check_hazards",
    "classify_partitions",
    "coalesce_function",
    "estimate_block_cycles",
    "find_runs",
    "insert_runtime_checks",
    "lower_block_copy",
    "widen_run",
]
