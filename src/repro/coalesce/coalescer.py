"""The driving pass: ``CoalesceMemoryAccesses`` (Figure 2).

For every single-block loop (the unroller has already produced the
multiple-references-per-iteration shape):

1. partition the memory references and compute relative offsets;
2. find candidate runs and screen each with the hazard analysis,
   collecting the partition pairs that need run-time alias checks;
3. build LCOPY — a copy of the loop with the wide references inserted;
4. schedule both lowered bodies; keep LCOPY only if it is faster (or the
   caller forces application, which the evaluation uses to measure the
   unprofitable cases the paper reports for the 68030);
5. splice LCOPY in behind the run-time alias/alignment check chain, the
   original loop remaining as the safe fallback.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.loops import Loop, find_loops
from repro.analysis.tripcount import analyze_trip_count
from repro.coalesce.hazards import check_hazards, check_indirect_hazards
from repro.coalesce.partition import (
    Partition,
    Run,
    classify_partitions,
    find_indirect_runs,
    find_runs,
)
from repro.coalesce.runtime_checks import (
    CheckPlan,
    IndexProbe,
    insert_runtime_checks,
)
from repro.coalesce.profitability import (
    estimate_block_cycles,
    shape_check_overhead,
)
from repro.coalesce.shapes import AFFINE, STRIDED, classify_partition
from repro.coalesce.widen import apply_plans, widen_run
from repro.ir.function import BasicBlock, Function
from repro.opt.pass_manager import PassContext


@dataclass
class CoalesceReport:
    """What happened to one loop."""

    function: str
    loop_header: str
    runs_found: int = 0
    runs_safe: int = 0
    rejections: List[Tuple[str, str]] = field(default_factory=list)
    alias_pairs: int = 0
    # Figure 5 checks the alias engine discharged statically, and a
    # (kind, why) line per elision.
    checks_elided: int = 0
    elisions: List[Tuple[str, str]] = field(default_factory=list)
    # Per-shape breakdown: lattice kind -> candidate runs found /
    # applied, and check kind -> statically discharged checks.
    shape_attempts: Dict[str, int] = field(default_factory=dict)
    shape_wins: Dict[str, int] = field(default_factory=dict)
    shape_elisions: Dict[str, int] = field(default_factory=dict)
    cycles_original: int = 0
    cycles_coalesced: int = 0
    applied: bool = False
    skipped_reason: str = ""
    lcopy_label: str = ""

    @property
    def predicted_speedup(self) -> float:
        if not self.cycles_coalesced:
            return 1.0
        return self.cycles_original / self.cycles_coalesced

    def __repr__(self) -> str:
        status = "applied" if self.applied else (
            f"skipped ({self.skipped_reason})"
        )
        return (
            f"<CoalesceReport {self.function}/{self.loop_header}: "
            f"{self.runs_safe}/{self.runs_found} runs, "
            f"{self.cycles_original}->{self.cycles_coalesced} cycles, "
            f"{status}>"
        )


def coalescible_widths(machine) -> tuple:
    """Wide access widths available for coalescing on ``machine``.

    Wider is better, but smaller supported widths pick up leftovers —
    e.g. on the Alpha, two trailing shorts still coalesce into one
    longword even when no quadword tile exists (the [Alex93] wide-bus
    lineage of the technique).
    """
    widths = set(machine.load_widths) & set(machine.store_widths)
    return tuple(sorted((w for w in widths if w >= 2), reverse=True))


def coalesce_function(
    func: Function,
    ctx: PassContext,
    include_stores: bool = True,
    force: bool = False,
    divisibility_factor: Optional[int] = None,
    unaligned_loads: bool = False,
    elide_checks: bool = True,
) -> List[CoalesceReport]:
    """Run memory access coalescing on every eligible loop of ``func``.

    ``include_stores=False`` restricts the transformation to loads (the
    paper's Table II/III column 4).  ``force=True`` bypasses the
    profitability comparison (used to reproduce the paper's 68030 numbers,
    where the transformation was applied and measured to be a loss).
    ``divisibility_factor`` adds the paper's ``n % k`` preheader check for
    pipelines that version instead of emitting a remainder prologue.
    ``unaligned_loads`` rewrites load runs with the machine's unaligned
    wide accesses (Figure 3's UnAlignedWideType) — two ``ldq_u``-style
    loads plus shifts instead of one aligned load, but no run-time
    alignment check and therefore no fallback risk.

    ``elide_checks`` lets the static alias engine discharge Figure 5
    checks it can prove: overlap checks for partition pairs proved
    disjoint, alignment checks for provably aligned frame-slot streams,
    divisibility checks for constant trip counts.  With it off the full
    check chain is emitted (the chaos/fault-injection fallback), but
    every dischargeable check is still *marked* so the
    ``redundant-runtime-check`` lint can flag it.
    """
    machine = ctx.machine
    use_unaligned = unaligned_loads and machine.has_unaligned_wide
    reports: List[CoalesceReport] = []
    # One engine pass over the pre-coalescing function serves every loop
    # (check insertion only adds preheader blocks; the analyzed loop
    # bodies are untouched).
    summary = ctx.analyses.memdep(func)

    for loop in find_loops(func):
        if len(loop.blocks) != 1 or loop.header not in loop.latches:
            continue
        report = CoalesceReport(func.name, loop.header)
        oracle = summary.loop(loop.header)
        block = func.block(loop.header)
        partitions = classify_partitions(func, loop, block)
        for partition in partitions.values():
            expr = (
                oracle.base_exprs.get(partition.base.index)
                if oracle is not None
                else None
            )
            partition.shape = classify_partition(partition, expr)
        runs = find_runs(
            partitions,
            coalescible_widths(machine),
            include_stores=include_stores,
        )
        # A dense tile inherits the stream's shape: a run that walks a
        # strided or affine stream still answers to that shape's
        # generalized Figure 5 obligations.
        for run in runs:
            if run.partition.shape.kind in (STRIDED, AFFINE):
                run.shape = run.shape.join(run.partition.shape)
        runs += find_indirect_runs(
            block, partitions, coalescible_widths(machine)
        )
        report.runs_found = len(runs)
        for run in runs:
            report.shape_attempts[run.shape.kind] = (
                report.shape_attempts.get(run.shape.kind, 0) + 1
            )
        if not runs:
            report.skipped_reason = "no coalescible runs"
            reports.append(report)
            continue

        accepted: List[Run] = []
        alias_keys: Set[Tuple[int, int]] = set()
        elided_keys: Set[Tuple[int, int]] = set()
        for run in runs:
            if run.indirect is not None:
                hazard = check_indirect_hazards(block, run)
            else:
                hazard = check_hazards(block, run, partitions, oracle)
            if hazard.safe:
                accepted.append(run)
                alias_keys |= hazard.alias_pairs
                elided_keys |= hazard.elided_pairs
            else:
                report.rejections.append((repr(run), hazard.reason))
        elided_keys -= alias_keys  # a pair some run still needs stays

        # Keys the engine could discharge; with elision off they are
        # emitted anyway but marked for the redundant-runtime-check lint.
        dischargeable: Set[Tuple] = set()

        def describe(a: int, b: int) -> str:
            return (
                f"r{a} ({oracle.base_exprs.get(a)}) never overlaps "
                f"r{b} ({oracle.base_exprs.get(b)})"
            )

        # Elisions counted on the report only if this loop is actually
        # transformed — a skipped loop emits no checks to elide.
        pending_elisions: List[Tuple[str, str]] = []
        if elide_checks:
            for a, b in sorted(elided_keys):
                pending_elisions.append(("alias", describe(a, b)))
        else:
            for a, b in sorted(elided_keys):
                dischargeable.add(("alias", a, b))
            alias_keys |= elided_keys

        report.runs_safe = len(accepted)
        report.alias_pairs = len(alias_keys)
        if not accepted:
            report.skipped_reason = "all runs rejected by hazard analysis"
            reports.append(report)
            continue

        divisibility = divisibility_factor
        if (
            divisibility is not None
            and oracle is not None
            and oracle.trip_count is not None
            and oracle.trip_count % divisibility == 0
        ):
            if elide_checks:
                pending_elisions.append((
                    "divisibility",
                    f"{oracle.trip_count} iterations divide by "
                    f"{divisibility}",
                ))
                divisibility = None
            else:
                dischargeable.add(("divisibility",))

        trip = analyze_trip_count(func, loop)
        if trip is None:
            # The adjacency probe scans ``elems × trips`` index
            # elements; with no computable trip count the indirect runs
            # drop out (dense runs may still stand on their own).
            for run in [r for r in accepted if r.indirect is not None]:
                report.rejections.append(
                    (repr(run), "adjacency probe needs a trip count")
                )
            accepted = [r for r in accepted if r.indirect is None]
            report.runs_safe = len(accepted)
            if not accepted:
                report.skipped_reason = (
                    "all runs rejected by hazard analysis"
                )
                reports.append(report)
                continue
        if (alias_keys or divisibility) and trip is None:
            report.skipped_reason = (
                "needs run-time checks but the trip count is opaque"
            )
            reports.append(report)
            continue

        # Build candidate LCOPYs and pick the best profitable subset of
        # runs: all of them, loads only, or stores only.  (On the 88100,
        # e.g., load coalescing wins while store coalescing loses; a
        # whole-or-nothing decision would forfeit the load win.)
        report.cycles_original = estimate_block_cycles(func, block, machine)

        def widen(run: Run):
            # The unaligned (ldq_u-pair) form exists only at the full
            # word width — the Alpha has no sub-word unaligned loads.
            if (
                use_unaligned
                and not run.is_store
                and run.indirect is None
                and run.wide_width == machine.word_bytes
            ):
                from repro.coalesce.widen import widen_run_unaligned

                return widen_run_unaligned(func, run)
            return widen_run(func, run, machine)

        def build_lcopy(runs_subset: List[Run]) -> BasicBlock:
            label = func.new_label(f"{loop.header}.co")
            copy = BasicBlock(label, [i.clone() for i in block.instrs])
            copy.retarget(loop.header, label)
            apply_plans(copy, [widen(r) for r in runs_subset])
            return copy

        subsets = [accepted]
        if not force:
            # The paper's whole-loop decision generalized: also consider
            # loads-only and stores-only (on the 88100, loads win while
            # stores lose; all-or-nothing would forfeit the load win).
            loads_only = [r for r in accepted if not r.is_store]
            stores_only = [r for r in accepted if r.is_store]
            if loads_only and loads_only != accepted:
                subsets.append(loads_only)
            if stores_only and stores_only != accepted:
                subsets.append(stores_only)

        best = None
        for subset in subsets:
            lcopy = build_lcopy(subset)
            # The adjacency probes' O(n) scan is charged per iteration
            # on top of the scheduled body — the honest price of the
            # indirect shape's run-time machinery.
            cycles = estimate_block_cycles(
                func, lcopy, machine
            ) + shape_check_overhead(subset, machine)
            if best is None or cycles < best[2]:
                best = (subset, lcopy, cycles)

        # Greedy refinement: drop any run whose removal makes the
        # schedule strictly faster (e.g. a leftover two-byte tile whose
        # wide load + extracts merely break even against two narrow
        # loads, while costing an extra alignment check).  Under
        # ``force`` — the evaluation's "measure the transformation even
        # if unprofitable" mode — only the sub-word leftover tiles (this
        # implementation's extension beyond the paper) may be dropped;
        # full-width runs are applied unconditionally.
        def removable(run: Run) -> bool:
            return not force or run.wide_width < machine.word_bytes

        improved = True
        while improved and len(best[0]) > 1:
            improved = False
            for run in list(best[0]):
                if not removable(run):
                    continue
                reduced = [r for r in best[0] if r is not run]
                lcopy = build_lcopy(reduced)
                cycles = estimate_block_cycles(
                    func, lcopy, machine
                ) + shape_check_overhead(reduced, machine)
                # Ties also drop the run: equal speed with one fewer
                # wide reference means one fewer preheader check.
                if cycles <= best[2]:
                    best = (reduced, lcopy, cycles)
                    improved = True
                    break

        accepted, lcopy, report.cycles_coalesced = best
        lcopy_label = lcopy.label
        if report.cycles_coalesced >= report.cycles_original and not force:
            report.skipped_reason = (
                f"not profitable on {machine.name} "
                f"({report.cycles_coalesced} >= "
                f"{report.cycles_original} cycles)"
            )
            reports.append(report)
            continue
        report.runs_safe = len(accepted)

        # Alignment checks for the surviving runs, minus those the engine
        # proves (a frame-slot stream whose slot alignment, start offset
        # and step all land on wide boundaries).  Provability is a
        # function of the dedup key, so eliding per key is sound.
        alignments: List[Tuple] = []
        seen_align = set()
        for run in accepted:
            if run.indirect is not None:
                # The synthetic base is loop-varying; the gather's
                # alignment facts are the probe's business below.
                continue
            if not (
                run.is_store
                or not use_unaligned
                or run.wide_width != machine.word_bytes
            ):
                continue
            base_index = run.partition.base.index
            key = (
                base_index, run.start_disp % run.wide_width, run.wide_width
            )
            if key in seen_align:
                continue
            seen_align.add(key)
            provable = summary.aligned(
                loop.header, base_index, run.start_disp, run.wide_width
            )
            if provable and elide_checks:
                pending_elisions.append((
                    "alignment",
                    f"r{base_index}+{run.start_disp} "
                    f"({oracle.base_exprs.get(base_index)}) is "
                    f"{run.wide_width}-byte aligned",
                ))
                continue
            if provable:
                dischargeable.add(("alignment",) + key)
            alignments.append(
                (run.partition.base, run.start_disp, run.wide_width)
            )

        # Stride divisibility (generalized Figure 5): a strided run's
        # alignment proof only carries across iterations because the
        # pointer advances by whole wide words.  The step is a compile-
        # time constant and run discovery already enforced the fact, so
        # the check is always statically dischargeable; with elision
        # off it is emitted as a (trivially true) marked test.
        strides: List[Tuple[int, int]] = []
        seen_strides = set()
        for run in accepted:
            if run.indirect is not None:
                continue
            covered = len({r.disp for r in run.refs}) * run.width
            if run.shape.kind != STRIDED and covered >= run.wide_width:
                continue  # a dense tile on a unit/affine stream
            key = (run.partition.step, run.wide_width)
            if key in seen_strides:
                continue
            seen_strides.add(key)
            if elide_checks:
                pending_elisions.append((
                    "stride-divisibility",
                    f"step {run.partition.step} advances whole "
                    f"{run.wide_width}-byte words",
                ))
                continue
            dischargeable.add(("stride",) + key)
            strides.append(key)

        # One adjacency probe per distinct gather family; each chunk
        # offset residue contributes one lead-index modulus check, and
        # a provably aligned table base drops its alignment test.
        probes: List[IndexProbe] = []
        probe_by_key: Dict[Tuple[int, int, int], IndexProbe] = {}
        for run in accepted:
            info = run.indirect
            if info is None:
                continue
            key = (
                info.x_base.index, info.index_base.index, run.wide_width
            )
            probe = probe_by_key.get(key)
            if probe is None:
                check_x = True
                if summary.aligned(
                    loop.header, info.x_base.index, 0, run.wide_width
                ):
                    if elide_checks:
                        pending_elisions.append((
                            "alignment",
                            f"gather table r{info.x_base.index} is "
                            f"{run.wide_width}-byte aligned",
                        ))
                        check_x = False
                    else:
                        dischargeable.add((
                            "alignment", info.x_base.index, 0,
                            run.wide_width,
                        ))
                probe = IndexProbe(
                    x_base=info.x_base,
                    index_base=info.index_base,
                    index_width=info.index_width,
                    index_signed=info.index_signed,
                    elems_per_iter=info.elems_per_iter,
                    count=info.count,
                    wide=run.wide_width,
                    check_x_alignment=check_x,
                )
                probe_by_key[key] = probe
                probes.append(probe)
            # With adjacency holding, one modulus check per residue
            # class of the chunk's element position covers every
            # iteration's chunks at that offset.
            residue = (info.first_disp // info.index_width) % info.count
            covered = {
                (d // probe.index_width) % probe.count
                for d in probe.mod_disps
            }
            if residue not in covered:
                probe.mod_disps = probe.mod_disps + (info.first_disp,)

        # Commit: splice LCOPY and the run-time checks in.
        func.blocks.insert(func.block_index(loop.header) + 1, lcopy)
        plan = CheckPlan(
            alignments=alignments,
            alias_pairs=[
                (partitions[a], partitions[b]) for a, b in sorted(alias_keys)
            ],
            trip=trip,
            divisibility=divisibility,
            strides=strides,
            probes=probes,
            dischargeable=frozenset(dischargeable),
        )
        insert_runtime_checks(func, loop, lcopy_label, plan)
        report.elisions.extend(pending_elisions)
        report.checks_elided = len(report.elisions)
        for kind, _ in pending_elisions:
            report.shape_elisions[kind] = (
                report.shape_elisions.get(kind, 0) + 1
            )
        for run in accepted:
            report.shape_wins[run.shape.kind] = (
                report.shape_wins.get(run.shape.kind, 0) + 1
            )
        report.applied = True
        report.lcopy_label = lcopy_label
        reports.append(report)
    return reports
