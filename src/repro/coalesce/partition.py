"""Partitioning of a loop's memory references and run discovery.

This implements lines 8-15 of the paper's Figure 2: references are
classified into disjoint partitions keyed by base register — "all
references to an array A passed as a parameter will have a loop invariant
register (most probably the register containing the start address of A)
as their partition identifier".  After the unroller's IV compaction, every
reference in a partition is ``M[p + d]`` with a constant ``d``, so the
relative-offset calculation is simply reading (and sorting by) the
displacements.

A *run* is a maximal coalescing candidate inside one partition: ``c``
same-width, same-kind references at consecutive displacements that exactly
tile one wide word (``c × w == wide``) starting at a wide-aligned
displacement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.induction import find_basic_ivs
from repro.analysis.loops import Loop
from repro.ir.function import BasicBlock, Function
from repro.ir.rtl import Instr, Load, Reg, Store


@dataclass
class MemoryRef:
    """One narrow memory reference inside the candidate block."""

    index: int          # position in the block
    instr: Instr        # the Load or Store
    disp: int
    width: int

    @property
    def is_store(self) -> bool:
        return isinstance(self.instr, Store)


@dataclass
class Partition:
    """All references sharing one base register.

    ``kind``:
      * ``'iv'``   — the base is a basic induction variable advancing by
        ``step`` bytes per iteration (the coalescible case);
      * ``'fixed'`` — the base is loop-invariant (e.g. a spilled scalar);
      * ``'other'`` — the base is redefined unpredictably; references in
        such a partition disable coalescing of anything they interleave
        with.
    """

    base: Reg
    kind: str
    step: int = 0
    refs: List[MemoryRef] = field(default_factory=list)

    @property
    def loads(self) -> List[MemoryRef]:
        return [r for r in self.refs if not r.is_store]

    @property
    def stores(self) -> List[MemoryRef]:
        return [r for r in self.refs if r.is_store]

    @property
    def min_disp(self) -> int:
        return min(r.disp for r in self.refs)

    @property
    def max_end(self) -> int:
        return max(r.disp + r.width for r in self.refs)

    def __repr__(self) -> str:
        return (
            f"<Partition base=r{self.base.index} kind={self.kind} "
            f"step={self.step:+d} refs={len(self.refs)}>"
        )


@dataclass
class Run:
    """A coalescing candidate: narrow refs that tile one wide word.

    ``refs`` is in block (execution) order and may contain several
    references per displacement.
    """

    partition: Partition
    refs: List[MemoryRef]
    is_store: bool
    width: int             # element width
    wide_width: int

    @property
    def start_disp(self) -> int:
        return min(r.disp for r in self.refs)

    @property
    def first_index(self) -> int:
        return min(r.index for r in self.refs)

    @property
    def last_index(self) -> int:
        return max(r.index for r in self.refs)

    def __repr__(self) -> str:
        kind = "store" if self.is_store else "load"
        return (
            f"<Run {kind} base=r{self.partition.base.index} "
            f"disp={self.start_disp}+{self.width}*{len(self.refs)}>"
        )


def classify_partitions(
    func: Function, loop: Loop, block: BasicBlock
) -> Dict[int, Partition]:
    """Partition ``block``'s memory references by base register."""
    ivs = find_basic_ivs(func, loop)

    defined_in_loop: Dict[int, int] = {}
    for label in loop.blocks:
        for instr in func.block(label).instrs:
            for reg in instr.defs():
                defined_in_loop[reg.index] = (
                    defined_in_loop.get(reg.index, 0) + 1
                )

    partitions: Dict[int, Partition] = {}
    for index, instr in enumerate(block.instrs):
        if not isinstance(instr, (Load, Store)):
            continue
        base = instr.base
        partition = partitions.get(base.index)
        if partition is None:
            if base.index in ivs:
                partition = Partition(base, "iv", ivs[base.index].step)
            elif defined_in_loop.get(base.index, 0) == 0:
                partition = Partition(base, "fixed", 0)
            else:
                partition = Partition(base, "other", 0)
            partitions[base.index] = partition
        partition.refs.append(
            MemoryRef(index, instr, instr.disp, instr.width)
        )
    return partitions


def find_runs(
    partitions: Dict[int, Partition],
    wide_width,
    include_stores: bool = True,
) -> List[Run]:
    """Find coalescing candidates (runs) inside each IV partition.

    Only ``'iv'`` partitions qualify — a fixed partition re-reads the same
    location every iteration (register allocation's job, not ours) and an
    ``'other'`` partition has no analyzable address stream.

    ``wide_width`` may be a single access width or a sequence of supported
    widths; wider tiles are preferred, narrower ones pick up the leftovers
    (e.g. on the Alpha, eight bytes coalesce into a quadword but a
    trailing pair of shorts can still coalesce into a longword).
    """
    if isinstance(wide_width, int):
        wide_widths = [wide_width]
    else:
        wide_widths = sorted(wide_width, reverse=True)
    runs: List[Run] = []
    for partition in partitions.values():
        if partition.kind != "iv":
            continue
        for is_store in (False, True):
            if is_store and not include_stores:
                continue
            refs = partition.stores if is_store else partition.loads
            claimed: set = set()
            for wide in wide_widths:
                # The preheader alignment check only holds across
                # iterations when the pointer advances by whole wide
                # words; a step-1 loop (e.g. a remainder epilogue) would
                # drift off alignment after the check.
                if partition.step % wide != 0:
                    continue
                available = [r for r in refs if r.disp not in claimed]
                found = _runs_in_refs(partition, available, is_store, wide)
                for run in found:
                    claimed.update(ref.disp for ref in run.refs)
                runs.extend(found)
    return runs


def _runs_in_refs(
    partition: Partition,
    refs: List[MemoryRef],
    is_store: bool,
    wide_width: int,
) -> List[Run]:
    runs: List[Run] = []
    by_width: Dict[int, List[MemoryRef]] = {}
    for ref in refs:
        if ref.width < wide_width and not getattr(
            ref.instr, "unaligned", False
        ):
            by_width.setdefault(ref.width, []).append(ref)
    for width, group in by_width.items():
        count = wide_width // width
        if count < 2:
            continue
        # Several references may hit the same displacement (e.g. the
        # convolution reads src[x+1] for this iteration and src[x-1] two
        # copies later; a cross-partition store between them blocks CSE).
        # All of them join the run: each load becomes an extract from the
        # same wide register; duplicate stores keep their order in the
        # insert chain, so later fields win exactly as the narrow stores
        # did.
        by_disp: Dict[int, List[MemoryRef]] = {}
        for ref in group:
            by_disp.setdefault(ref.disp, []).append(ref)
        used = set()
        # Any displacement may start a tile; whether the *address* is
        # wide-aligned there is the run-time alignment check's business.
        for start in sorted(by_disp):
            if start in used:
                continue
            tile = [
                by_disp.get(start + k * width) for k in range(count)
            ]
            if any(t is None for t in tile):
                continue
            refs_in_tile: List[MemoryRef] = []
            for bucket in tile:
                used.add(bucket[0].disp)
                refs_in_tile.extend(bucket)
            refs_in_tile.sort(key=lambda r: r.index)
            runs.append(
                Run(partition, refs_in_tile, is_store, width, wide_width)
            )
    return runs
