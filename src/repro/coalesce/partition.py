"""Partitioning of a loop's memory references and run discovery.

This implements lines 8-15 of the paper's Figure 2: references are
classified into disjoint partitions keyed by base register — "all
references to an array A passed as a parameter will have a loop invariant
register (most probably the register containing the start address of A)
as their partition identifier".  After the unroller's IV compaction, every
reference in a partition is ``M[p + d]`` with a constant ``d``, so the
relative-offset calculation is simply reading (and sorting by) the
displacements.

A *run* is a maximal coalescing candidate inside one partition.  The
classic (unit-stride) run is ``c`` same-width, same-kind references at
consecutive displacements that exactly tile one wide word
(``c × w == wide``).  Two generalized run shapes extend it:

* a **strided** run — load references that fall inside one wide window
  without tiling it (``src[2*i]``): one wide load reads the gaps too
  and the extracts simply skip them.  Stores never coalesce sparsely
  (the wide store would clobber the gap bytes).
* an **indirect** run — gather loads ``x[idx[k]]`` whose index loads
  walk an IV partition at consecutive displacements: under a run-time
  index-adjacency probe (the SpMV trick) the gathered elements are
  contiguous, so the group collapses to one wide load off the lead
  gather's address register.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.induction import find_basic_ivs
from repro.analysis.loops import Loop
from repro.coalesce.shapes import AccessShape, INDIRECT, STRIDED, \
    UNIT_SHAPE
from repro.ir.function import BasicBlock, Function
from repro.ir.rtl import BinOp, Const, Instr, Load, Reg, Store


@dataclass
class MemoryRef:
    """One narrow memory reference inside the candidate block."""

    index: int          # position in the block
    instr: Instr        # the Load or Store
    disp: int
    width: int

    @property
    def is_store(self) -> bool:
        return isinstance(self.instr, Store)


@dataclass
class Partition:
    """All references sharing one base register.

    ``kind``:
      * ``'iv'``   — the base is a basic induction variable advancing by
        ``step`` bytes per iteration (the coalescible case);
      * ``'fixed'`` — the base is loop-invariant (e.g. a spilled scalar);
      * ``'other'`` — the base is redefined unpredictably; references in
        such a partition disable coalescing of anything they interleave
        with.
    """

    base: Reg
    kind: str
    step: int = 0
    refs: List[MemoryRef] = field(default_factory=list)
    #: the partition's access shape, filled in by the coalescer once the
    #: alias engine's symbolic base expression is known.
    shape: AccessShape = UNIT_SHAPE

    @property
    def loads(self) -> List[MemoryRef]:
        return [r for r in self.refs if not r.is_store]

    @property
    def stores(self) -> List[MemoryRef]:
        return [r for r in self.refs if r.is_store]

    @property
    def min_disp(self) -> int:
        return min(r.disp for r in self.refs)

    @property
    def max_end(self) -> int:
        return max(r.disp + r.width for r in self.refs)

    def __repr__(self) -> str:
        return (
            f"<Partition base=r{self.base.index} kind={self.kind} "
            f"step={self.step:+d} refs={len(self.refs)}>"
        )


@dataclass
class IndirectInfo:
    """What the runtime machinery needs to know about a gather run.

    The wide load reads ``count`` elements off the *lead* gather's
    address register; validity rests on the Figure-5 generalizations
    emitted per index partition: the adjacency probe over
    ``elems_per_iter × trips`` index values, the lead-index modulus
    check, and (on aligned-only machines) the table base alignment.
    """

    x_base: Reg            # the loop-invariant table base
    index_base: Reg        # the index (e.g. ``col``) partition's base
    index_step: int        # bytes the index pointer advances per iter
    index_width: int       # bytes per index element
    index_signed: bool
    count: int             # gathered elements per wide word
    first_disp: int        # byte disp of the chunk's first index load

    @property
    def elems_per_iter(self) -> int:
        return self.index_step // self.index_width


@dataclass
class Run:
    """A coalescing candidate: narrow refs covered by one wide word.

    ``refs`` is in block (execution) order and may contain several
    references per displacement.  ``shape`` records which lattice point
    justified the grouping; indirect runs carry their probe parameters
    in ``indirect`` and their displacements are *virtual* (relative to
    the lead gather's address register).
    """

    partition: Partition
    refs: List[MemoryRef]
    is_store: bool
    width: int             # element width
    wide_width: int
    shape: AccessShape = UNIT_SHAPE
    indirect: Optional[IndirectInfo] = None

    @property
    def start_disp(self) -> int:
        return min(r.disp for r in self.refs)

    @property
    def first_index(self) -> int:
        return min(r.index for r in self.refs)

    @property
    def last_index(self) -> int:
        return max(r.index for r in self.refs)

    def __repr__(self) -> str:
        kind = "store" if self.is_store else "load"
        return (
            f"<Run {kind}/{self.shape.kind} "
            f"base=r{self.partition.base.index} "
            f"disp={self.start_disp}+{self.width}*{len(self.refs)}>"
        )


def classify_partitions(
    func: Function, loop: Loop, block: BasicBlock
) -> Dict[int, Partition]:
    """Partition ``block``'s memory references by base register."""
    ivs = find_basic_ivs(func, loop)

    defined_in_loop: Dict[int, int] = {}
    for label in loop.blocks:
        for instr in func.block(label).instrs:
            for reg in instr.defs():
                defined_in_loop[reg.index] = (
                    defined_in_loop.get(reg.index, 0) + 1
                )

    partitions: Dict[int, Partition] = {}
    for index, instr in enumerate(block.instrs):
        if not isinstance(instr, (Load, Store)):
            continue
        base = instr.base
        partition = partitions.get(base.index)
        if partition is None:
            if base.index in ivs:
                partition = Partition(base, "iv", ivs[base.index].step)
            elif defined_in_loop.get(base.index, 0) == 0:
                partition = Partition(base, "fixed", 0)
            else:
                partition = Partition(base, "other", 0)
            partitions[base.index] = partition
        partition.refs.append(
            MemoryRef(index, instr, instr.disp, instr.width)
        )
    return partitions


def find_runs(
    partitions: Dict[int, Partition],
    wide_width,
    include_stores: bool = True,
) -> List[Run]:
    """Find coalescing candidates (runs) inside each IV partition.

    Only ``'iv'`` partitions qualify — a fixed partition re-reads the same
    location every iteration (register allocation's job, not ours) and an
    ``'other'`` partition has no analyzable address stream.

    ``wide_width`` may be a single access width or a sequence of supported
    widths; wider tiles are preferred, narrower ones pick up the leftovers
    (e.g. on the Alpha, eight bytes coalesce into a quadword but a
    trailing pair of shorts can still coalesce into a longword).
    """
    if isinstance(wide_width, int):
        wide_widths = [wide_width]
    else:
        wide_widths = sorted(wide_width, reverse=True)
    runs: List[Run] = []
    for partition in partitions.values():
        if partition.kind != "iv":
            continue
        for is_store in (False, True):
            if is_store and not include_stores:
                continue
            refs = partition.stores if is_store else partition.loads
            claimed: set = set()
            # Dense tiles at every width first — a contiguous run never
            # reads a byte it doesn't need — then sparse windows pick up
            # strided leftovers (loads only: a sparse wide store would
            # clobber the gap bytes).
            for wide in wide_widths:
                # The preheader alignment check only holds across
                # iterations when the pointer advances by whole wide
                # words; a step-1 loop (e.g. a remainder epilogue) would
                # drift off alignment after the check.
                if partition.step % wide != 0:
                    continue
                available = [r for r in refs if r.disp not in claimed]
                found = _runs_in_refs(partition, available, is_store, wide)
                for run in found:
                    claimed.update(ref.disp for ref in run.refs)
                runs.extend(found)
            if is_store:
                continue
            for wide in wide_widths:
                if partition.step % wide != 0:
                    continue
                available = [r for r in refs if r.disp not in claimed]
                found = _sparse_runs_in_refs(partition, available, wide)
                for run in found:
                    claimed.update(ref.disp for ref in run.refs)
                runs.extend(found)
    return runs


def _runs_in_refs(
    partition: Partition,
    refs: List[MemoryRef],
    is_store: bool,
    wide_width: int,
) -> List[Run]:
    runs: List[Run] = []
    by_width: Dict[int, List[MemoryRef]] = {}
    for ref in refs:
        if ref.width < wide_width and not getattr(
            ref.instr, "unaligned", False
        ):
            by_width.setdefault(ref.width, []).append(ref)
    for width, group in by_width.items():
        count = wide_width // width
        if count < 2:
            continue
        # Several references may hit the same displacement (e.g. the
        # convolution reads src[x+1] for this iteration and src[x-1] two
        # copies later; a cross-partition store between them blocks CSE).
        # All of them join the run: each load becomes an extract from the
        # same wide register; duplicate stores keep their order in the
        # insert chain, so later fields win exactly as the narrow stores
        # did.
        by_disp: Dict[int, List[MemoryRef]] = {}
        for ref in group:
            by_disp.setdefault(ref.disp, []).append(ref)
        used = set()
        # Any displacement may start a tile; whether the *address* is
        # wide-aligned there is the run-time alignment check's business.
        for start in sorted(by_disp):
            if start in used:
                continue
            tile = [
                by_disp.get(start + k * width) for k in range(count)
            ]
            if any(t is None for t in tile):
                continue
            refs_in_tile: List[MemoryRef] = []
            for bucket in tile:
                used.add(bucket[0].disp)
                refs_in_tile.extend(bucket)
            refs_in_tile.sort(key=lambda r: r.index)
            runs.append(
                Run(partition, refs_in_tile, is_store, width, wide_width)
            )
    return runs


def _sparse_runs_in_refs(
    partition: Partition,
    refs: List[MemoryRef],
    wide_width: int,
) -> List[Run]:
    """Strided (sparse) windows: ≥2 same-width loads inside one wide
    word that do *not* tile it.  The wide load reads the gap bytes
    harmlessly; each member extracts its own field."""
    runs: List[Run] = []
    by_width: Dict[int, List[MemoryRef]] = {}
    for ref in refs:
        if ref.width < wide_width and not getattr(
            ref.instr, "unaligned", False
        ):
            by_width.setdefault(ref.width, []).append(ref)
    for width, group in by_width.items():
        if wide_width // width < 2:
            continue
        by_disp: Dict[int, List[MemoryRef]] = {}
        for ref in group:
            by_disp.setdefault(ref.disp, []).append(ref)
        disps = sorted(by_disp)
        used: set = set()
        for start in disps:
            if start in used:
                continue
            window = [
                d for d in disps
                if d not in used
                and start <= d and d + width <= start + wide_width
            ]
            if len(window) < 2:
                continue
            members: List[MemoryRef] = []
            for d in window:
                used.add(d)
                members.extend(by_disp[d])
            members.sort(key=lambda r: r.index)
            gaps = {b - a for a, b in zip(window, window[1:])}
            stride = (gaps.pop(),) if len(gaps) == 1 else None
            runs.append(
                Run(
                    partition, members, False, width, wide_width,
                    shape=AccessShape(STRIDED, stride),
                )
            )
    return runs


def find_indirect_runs(
    block: BasicBlock,
    partitions: Dict[int, Partition],
    wide_width,
) -> List[Run]:
    """Gather groups: loads ``x[idx[k]]`` whose index loads walk one IV
    partition at consecutive displacements.

    The address chain recognized per gather (after strength reduction
    and unrolling) is::

        idx  = load.<iw> [index_iv + d]     # the index stream
        off  = shl idx, log2(w)             # absent when w == 1
        addr = add x_base, off              # either operand order
        val  = load.<w>  [addr]             # the gather

    Consecutive-``d`` gathers off the same ``x_base`` chunk into groups
    of ``count = wide // w``; each group becomes an indirect
    :class:`Run` whose member displacements are virtual — ``j*w`` off
    the lead gather's address register, the layout the wide load has
    *if* the run-time adjacency probe passes.
    """
    wide_widths = (
        [wide_width] if isinstance(wide_width, int)
        else sorted(wide_width, reverse=True)
    )
    defined_at: Dict[int, List[int]] = {}
    for index, instr in enumerate(block.instrs):
        for reg in instr.defs():
            defined_at.setdefault(reg.index, []).append(index)

    def sole_def(reg_index: int, before: int) -> Optional[int]:
        sites = [i for i in defined_at.get(reg_index, []) if i < before]
        if len(sites) == 1 and len(defined_at[reg_index]) == 1:
            return sites[0]
        return None

    # index-load block position -> its partition MemoryRef
    index_refs: Dict[int, Tuple[Partition, MemoryRef]] = {}
    for partition in partitions.values():
        if partition.kind != "iv":
            continue
        for ref in partition.loads:
            index_refs[ref.index] = (partition, ref)

    gathers: Dict[Tuple, List[Tuple[MemoryRef, Partition, MemoryRef]]] = {}
    for index, instr in enumerate(block.instrs):
        if not isinstance(instr, Load) or instr.disp != 0:
            continue
        if getattr(instr, "unaligned", False):
            continue
        add_site = sole_def(instr.base.index, index)
        if add_site is None:
            continue
        add = block.instrs[add_site]
        if not isinstance(add, BinOp) or add.op != "add":
            continue
        if not (isinstance(add.a, Reg) and isinstance(add.b, Reg)):
            continue
        for x_reg, off_reg in ((add.a, add.b), (add.b, add.a)):
            if x_reg.index in defined_at:
                continue  # the table base must be loop-invariant
            scaled = sole_def(off_reg.index, add_site)
            if scaled is None:
                continue
            if instr.width == 1:
                idx_site = scaled
            else:
                shl = block.instrs[scaled]
                if (
                    not isinstance(shl, BinOp) or shl.op != "shl"
                    or not isinstance(shl.b, Const)
                    or (1 << shl.b.value) != instr.width
                    or not isinstance(shl.a, Reg)
                ):
                    continue
                idx_site = sole_def(shl.a.index, scaled)
                if idx_site is None:
                    continue
            if idx_site not in index_refs:
                continue
            index_partition, idx_ref = index_refs[idx_site]
            gather = MemoryRef(index, instr, 0, instr.width)
            key = (x_reg.index, index_partition.base.index, instr.width)
            gathers.setdefault(key, []).append(
                (gather, index_partition, idx_ref)
            )
            break

    runs: List[Run] = []
    for key, group in gathers.items():
        group.sort(key=lambda item: item[2].disp)
        index_partition = group[0][1]
        width = group[0][0].width
        iw = index_partition.refs[0].width
        if index_partition.step <= 0 or index_partition.step % iw != 0:
            continue
        elems = index_partition.step // iw
        for wide in wide_widths:
            count = wide // width
            if count < 2 or len(group) < count:
                continue
            # The lead-index modulus check is loop-invariant only when
            # whole chunks repeat each iteration.
            if elems % count != 0:
                continue
            chunks: List[List[Tuple[MemoryRef, Partition, MemoryRef]]] = []
            chunk: List[Tuple[MemoryRef, Partition, MemoryRef]] = []
            for item in group:
                if chunk and item[2].disp != chunk[-1][2].disp + iw:
                    chunk = []
                chunk.append(item)
                if len(chunk) == count:
                    chunks.append(chunk)
                    chunk = []
            for chunk in chunks:
                lead = chunk[0][0]
                if lead.index != min(m[0].index for m in chunk):
                    continue  # block order must match index order
                idx_instr = chunk[0][2].instr
                members = [
                    MemoryRef(m[0].index, m[0].instr, j * width, width)
                    for j, m in enumerate(chunk)
                ]
                synth = Partition(
                    lead.instr.base, "indirect", 0, list(members),
                    shape=AccessShape(INDIRECT, (width,)),
                )
                runs.append(
                    Run(
                        synth, members, False, width, wide,
                        shape=AccessShape(INDIRECT, (width,)),
                        indirect=IndirectInfo(
                            x_base=Reg(key[0]),
                            index_base=index_partition.base,
                            index_step=index_partition.step,
                            index_width=iw,
                            index_signed=getattr(
                                idx_instr, "signed", False
                            ),
                            count=count,
                            first_disp=chunk[0][2].disp,
                        ),
                    )
                )
            if chunks:
                break  # widest grouping wins for this gather family
    return runs
