"""Access shapes: the lattice the generalized coalescer groups by.

The paper's Figure 2 only recognizes one shape — same-width references
walking a base register in unit stride.  Everything the pipeline now
coalesces beyond that is described by an :class:`AccessShape` drawn from
the lattice

    UnitStride  ⊏  Strided(k)  ⊏  Affine(c0 + Σ ci·vi)  ⊏
        Indirect(base[idx[i]])  ⊏  Unknown

ordered by how much the compiler still knows about the address stream:

* **unit** — the stream advances exactly one element per element
  (``|step| == width``); the classic Figure 2 case.
* **strided** — a constant per-element gap larger than the element
  (``dst[i] = src[2*i]``); members of one wide window coalesce into a
  *sparse* wide load whose gap bytes are read and discarded.
* **affine** — the base is ``root + c0 + Σ ci·vi`` with symbolic
  factors ``vi`` (a 2-D row walk: ``m + 64*y + x``); layout inside the
  stream is still unit/strided, but cross-stream distance is symbolic,
  so Figure 5 checks become *affine-bound* span checks — elided when
  the term coefficients prove alignment or disjointness statically.
* **indirect** — the address is loaded (``x[col[k]]``); coalescing
  needs the run-time *index-adjacency* probe (the SpMV trick).
* **unknown** — the alias engine resolved nothing; never coalesced.

A shape is ``kind`` plus an optional refinement ``param`` (the stride,
the coefficient signature, the index scale).  ``param=None`` is the top
of its kind: ``Strided(2) ⊑ Strided(None)`` but ``Strided(2)`` and
``Strided(4)`` are incomparable, joining at ``Strided(None)``.  The
join is therefore: different kinds take the higher rank, equal kinds
keep an equal refinement and erase a disagreeing one — a finite
join-semilattice, monotone by construction (property-tested in
``tests/test_access_shapes.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.analysis.alias.symbolic import LOAD, AddressExpr

UNIT = "unit"
STRIDED = "strided"
AFFINE = "affine"
INDIRECT = "indirect"
UNKNOWN = "unknown"

#: Lattice rank: strictly increasing along the chain above.
_RANK = {UNIT: 0, STRIDED: 1, AFFINE: 2, INDIRECT: 3, UNKNOWN: 4}

SHAPE_KINDS = (UNIT, STRIDED, AFFINE, INDIRECT, UNKNOWN)


@dataclass(frozen=True)
class AccessShape:
    """One point of the shape lattice: ``kind`` plus refinement."""

    kind: str
    #: kind-specific refinement; ``None`` is the top of the kind.
    #: strided: the byte stride.  affine: the sorted coefficient tuple.
    #: indirect: the index scale (bytes per index unit).
    param: Optional[Tuple] = None

    def __post_init__(self):
        if self.kind not in _RANK:
            raise ValueError(f"unknown shape kind {self.kind!r}")

    @property
    def rank(self) -> int:
        return _RANK[self.kind]

    def leq(self, other: "AccessShape") -> bool:
        """The lattice's partial order ``self ⊑ other``."""
        if self.rank != other.rank:
            return self.rank < other.rank
        return self == other or other.param is None

    def join(self, other: "AccessShape") -> "AccessShape":
        """Least upper bound: higher rank wins; a refinement survives
        only when both sides agree on it."""
        if self.rank != other.rank:
            return self if self.rank > other.rank else other
        if self == other:
            return self
        return AccessShape(self.kind)

    def __repr__(self) -> str:
        if self.param is None:
            return f"<{self.kind}>"
        return f"<{self.kind} {self.param}>"


UNIT_SHAPE = AccessShape(UNIT)
UNKNOWN_SHAPE = AccessShape(UNKNOWN)


def join_all(shapes) -> AccessShape:
    """Fold :meth:`AccessShape.join` over an iterable (unit if empty)."""
    result = UNIT_SHAPE
    for shape in shapes:
        result = result.join(shape)
    return result


def classify_address(
    expr: Optional[AddressExpr], width: int = 1
) -> AccessShape:
    """The shape of the stream ``M_width[expr]``, one per expression.

    Total over every expression the alias engine can produce (including
    the unresolvable ``None``), and deterministic — each input maps to
    exactly one shape:

    * unresolved                          → unknown
    * load-rooted or load-termed          → indirect
    * symbolic (non-load) affine terms    → affine
    * ``|step| == width`` (or no step)    → unit
    * any other constant step             → strided
    """
    if expr is None:
        return UNKNOWN_SHAPE
    if expr.root.kind == LOAD:
        return AccessShape(INDIRECT, (width,))
    load_terms = [t for t, _ in expr.terms if t.kind == "load"]
    if load_terms:
        scales = tuple(
            sorted(c for t, c in expr.terms if t.kind == "load")
        )
        return AccessShape(INDIRECT, scales)
    if expr.terms:
        return AccessShape(
            AFFINE, tuple(sorted(c for _, c in expr.terms))
        )
    if expr.step == 0 or abs(expr.step) == width:
        return UNIT_SHAPE
    return AccessShape(STRIDED, (expr.step,))


def classify_partition(partition, expr: Optional[AddressExpr]):
    """Shape of one coalescer partition (see ``partition.py``).

    The symbolic expression decides indirect/affine/unknown; for a
    plain rooted stream the *layout* decides unit vs strided — an IV
    partition whose references contiguously tile the span it advances
    over each iteration is unit-stride, anything with gaps is strided.
    """
    widths = {r.width for r in partition.refs}
    width = min(widths)
    base_shape = classify_address(expr, width)
    if base_shape.rank >= _RANK[AFFINE]:
        return base_shape
    if partition.kind == "other":
        return UNKNOWN_SHAPE
    if partition.kind != "iv" or partition.step == 0:
        return UNIT_SHAPE  # a fixed cell: trivially contiguous
    span = abs(partition.step)
    covered = set()
    for ref in partition.refs:
        covered.update(
            range(ref.disp % span, min(ref.disp % span + ref.width, span))
        )
    if len(covered) == span:
        return UNIT_SHAPE
    # Uniform single-width gaps refine the stride; mixed layouts stay
    # the kind's top.
    disps = sorted({r.disp for r in partition.refs})
    if len(widths) == 1 and len(disps) > 1:
        gaps = {b - a for a, b in zip(disps, disps[1:])}
        if len(gaps) == 1:
            return AccessShape(STRIDED, (gaps.pop(),))
    return AccessShape(STRIDED)
