"""Run-time alias and alignment analysis (the paper's §2.2 and Figure 5).

Static analysis usually cannot prove that two pointer parameters do not
overlap or that a base address is wide-aligned, so the paper generates
preheader code that decides at run time whether the coalesced loop (LCOPY)
or the original safe loop executes::

         preheader
             |
        [compute spans]
        [array overlap? ]--yes--+
        [base misaligned?]--yes-+
        [trips % k != 0? ]--yes-+     (only in "versioned" unrolling mode)
             |                  |
         coalesced loop     original loop
             \\                 /
              +---- loop exit -+

Each check is one or two instructions plus a branch; the paper reports 10
to 15 added preheader instructions, and ours land in the same range.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.loops import Loop, ensure_preheader
from repro.analysis.tripcount import TripCount
from repro.coalesce.partition import Partition
from repro.ir.function import BasicBlock, Function
from repro.ir.rtl import BinOp, CondJump, Const, Instr, Jump, Load, Reg
from repro.opt.unroll import emit_trip_count


@dataclass
class IndexProbe:
    """One index partition's generalized Figure 5 obligations.

    Indirect (gather) runs are valid only when the index stream is
    adjacent — ``idx[t+1] == idx[t] + 1`` over the main loop's range —
    which a preheader *probe loop* verifies at run time (the SpMV
    trick: a dense row coalesces, a scattered row falls back).  On top
    of adjacency, the aligned wide load needs the table base wide-
    aligned and the lead index of each chunk divisible by ``count``;
    with adjacency established, checking the entry value of each
    distinct chunk offset (``mod_disps``) covers every iteration.
    """

    x_base: Reg
    index_base: Reg
    index_width: int
    index_signed: bool
    elems_per_iter: int     # index elements consumed per iteration
    count: int              # gathered elements per wide word
    wide: int
    mod_disps: Tuple[int, ...] = ()
    check_x_alignment: bool = True


@dataclass
class CheckPlan:
    """Everything the check chain must verify before entering LCOPY."""

    # (base register, tile start displacement, wide width) per coalesced
    # run that uses an *aligned* wide access.  Runs rewritten to the
    # unaligned (ldq_u-pair) form need no alignment check.
    alignments: List[Tuple[Reg, int, int]] = field(default_factory=list)
    # Partition pairs that must not overlap at run time.
    alias_pairs: List[Tuple[Partition, Partition]] = field(
        default_factory=list
    )
    trip: Optional[TripCount] = None
    # In "versioned" mode (no remainder prologue) the trip count must also
    # be divisible by the unroll factor (the paper's ``n % 4`` check).
    divisibility: Optional[int] = None
    # Strided runs: (pointer step, wide width) pairs whose divisibility
    # keeps the alignment check loop-invariant.  The step is a compile-
    # time constant, so these are always statically dischargeable; they
    # are emitted (as constant tests) only when elision is off.
    strides: List[Tuple[int, int]] = field(default_factory=list)
    # Indirect runs: one probe per index partition.
    probes: List[IndexProbe] = field(default_factory=list)
    # Check keys the alias engine *could* have discharged but that are
    # being emitted anyway (check elision disabled, e.g. under fault
    # injection).  Keys: ``('alias', a, b)``,
    # ``('alignment', base, disp % wide, wide)``, ``('divisibility',)``,
    # ``('stride', step, wide)``.  The emitted branches carry this
    # verdict in ``notes['runtime_check']['dischargeable']`` so the
    # ``redundant-runtime-check`` lint can flag them.
    dischargeable: frozenset = frozenset()

    @property
    def needs_trip_count(self) -> bool:
        return (
            bool(self.alias_pairs)
            or bool(self.probes)
            or self.divisibility is not None
        )


def _partition_span(
    func: Function,
    out: List[Instr],
    partition: Partition,
    trips_minus_1: Optional[Reg],
) -> Tuple[Reg, Reg]:
    """Emit code computing the [lo, hi) byte range ``partition`` touches."""
    lo = func.new_reg("lo")
    hi = func.new_reg("hi")
    base = partition.base
    min_disp = partition.min_disp
    max_end = partition.max_end
    if partition.kind == "fixed" or partition.step == 0:
        out.append(BinOp("add", lo, base, Const(min_disp)))
        out.append(BinOp("add", hi, base, Const(max_end)))
        return lo, hi
    assert trips_minus_1 is not None
    travel = func.new_reg("trav")
    step = partition.step
    magnitude = abs(step)
    if magnitude & (magnitude - 1) == 0 and magnitude != 1:
        out.append(
            BinOp(
                "shl", travel, trips_minus_1,
                Const(magnitude.bit_length() - 1),
            )
        )
    elif magnitude == 1:
        travel = trips_minus_1
    else:
        out.append(BinOp("mul", travel, trips_minus_1, Const(magnitude)))
    if step > 0:
        out.append(BinOp("add", lo, base, Const(min_disp)))
        end = func.new_reg("t")
        out.append(BinOp("add", end, base, travel))
        out.append(BinOp("add", hi, end, Const(max_end)))
    else:
        start = func.new_reg("t")
        out.append(BinOp("sub", start, base, travel))
        out.append(BinOp("add", lo, start, Const(min_disp)))
        out.append(BinOp("add", hi, base, Const(max_end)))
    return lo, hi


def insert_runtime_checks(
    func: Function,
    loop: Loop,
    lcopy_label: str,
    plan: CheckPlan,
) -> str:
    """Build the Figure 5 check chain in front of ``loop``.

    Control reaches ``lcopy_label`` only if every check passes; any
    failure branches to the original loop header.  Returns the label of
    the first check block.
    """
    fallback = loop.header
    preheader = ensure_preheader(func, loop)

    setup: List[Instr] = []
    trips_minus_1: Optional[Reg] = None
    trips: Optional[Reg] = None
    if plan.needs_trip_count:
        assert plan.trip is not None
        trips = emit_trip_count(func, setup, plan.trip)
        if plan.alias_pairs:
            trips_minus_1 = func.new_reg("tm1")
            setup.append(BinOp("sub", trips_minus_1, trips, Const(1)))

    def _note(kind: str, key: Tuple, **extra) -> Dict[str, object]:
        """The ``runtime_check`` annotation carried by a check branch."""
        note = {
            "kind": kind,
            "loop": loop.header,
            "dischargeable": key in plan.dischargeable,
        }
        note.update(extra)
        return note

    # Each step: (instrs, rel, a, b, note) — branch taken => check FAILED.
    steps: List[Tuple[List[Instr], str, object, object, Dict]] = []

    if plan.divisibility is not None:
        code: List[Instr] = []
        residue = func.new_reg("t")
        factor = plan.divisibility
        if factor & (factor - 1) == 0:
            code.append(BinOp("and", residue, trips, Const(factor - 1)))
        else:
            code.append(BinOp("remu", residue, trips, Const(factor)))
        note = _note("divisibility", ("divisibility",), factor=factor)
        steps.append((code, "ne", residue, Const(0), note))

    spans: Dict[int, Tuple[Reg, Reg]] = {}
    for left, right in plan.alias_pairs:
        code = []
        for partition in (left, right):
            if partition.base.index not in spans:
                spans[partition.base.index] = _partition_span(
                    func, code, partition, trips_minus_1
                )
        lo_l, hi_l = spans[left.base.index]
        lo_r, hi_r = spans[right.base.index]
        pair = tuple(sorted((left.base.index, right.base.index)))
        # A span test over an affine stream is the generalized
        # *affine-bound* check: same arithmetic, but the distance the
        # engine failed to prove constant is symbolic, not merely
        # unknown.
        kind = (
            "affine-bound"
            if any(
                p.shape.kind == "affine" for p in (left, right)
            )
            else "alias"
        )
        note = _note(kind, ("alias",) + pair, bases=pair)
        # Overlap iff lo_l < hi_r and lo_r < hi_l; fail on overlap, which
        # needs two branches: pass early if hi_l <= lo_r, else fail if
        # lo_l < hi_r.  Encode as two steps with an inverted first test.
        steps.append((code, "__pass__ leu", hi_l, lo_r, note))
        steps.append(([], "ltu", lo_l, hi_r, note))

    seen_alignment = set()
    for base, start_disp, wide_width in plan.alignments:
        key = (base.index, start_disp % wide_width, wide_width)
        if key in seen_alignment:
            continue
        seen_alignment.add(key)
        code = []
        addr: Reg = base
        if start_disp:
            addr = func.new_reg("t")
            code.append(BinOp("add", addr, base, Const(start_disp)))
        low_bits = func.new_reg("t")
        code.append(
            BinOp("and", low_bits, addr, Const(wide_width - 1))
        )
        note = _note(
            "alignment", ("alignment",) + key,
            base=base.index, disp=start_disp, width=wide_width,
        )
        steps.append((code, "ne", low_bits, Const(0), note))

    seen_strides = set()
    for step_bytes, wide_width in plan.strides:
        # Stride divisibility (generalized Figure 5): the pointer must
        # advance by whole wide words or the alignment proof drifts.
        # The step is a compile-time constant, so run discovery already
        # guaranteed this; the test is emitted — trivially true, and
        # marked dischargeable — only when elision is off.
        key = (step_bytes, wide_width)
        if key in seen_strides:
            continue
        seen_strides.add(key)
        code = []
        step_reg = func.new_reg("t")
        residue = func.new_reg("t")
        code.append(
            BinOp("add", step_reg, Const(abs(step_bytes)), Const(0))
        )
        code.append(
            BinOp("and", residue, step_reg, Const(wide_width - 1))
        )
        note = _note(
            "stride-divisibility", ("stride",) + key,
            step=step_bytes, width=wide_width,
        )
        steps.append((code, "ne", residue, Const(0), note))

    for probe in plan.probes:
        if probe.check_x_alignment:
            key = (probe.x_base.index, 0, probe.wide)
            low_bits = func.new_reg("t")
            code = [
                BinOp("and", low_bits, probe.x_base, Const(probe.wide - 1))
            ]
            note = _note(
                "alignment", ("alignment",) + key,
                base=probe.x_base.index, disp=0, width=probe.wide,
                shape="indirect",
            )
            steps.append((code, "ne", low_bits, Const(0), note))
        for disp in probe.mod_disps:
            # Lead index of the chunk at entry: with adjacency holding,
            # ``idx[d] % count == 0`` here makes every later chunk's
            # lead divisible too (whole chunks repeat per iteration).
            value = func.new_reg("t")
            residue = func.new_reg("t")
            code = [
                Load(
                    value, probe.index_base, disp, probe.index_width,
                    signed=probe.index_signed,
                ),
                BinOp("and", residue, value, Const(probe.count - 1)),
            ]
            note = _note(
                "index-alignment",
                ("index-alignment", probe.index_base.index, disp,
                 probe.count),
                base=probe.index_base.index, disp=disp,
                count=probe.count,
            )
            steps.append((code, "ne", residue, Const(0), note))

    # Materialize the chain.  Linear steps come first; each adjacency
    # probe then contributes a three-block loop of its own, and LCOPY is
    # reached only out of the last probe's exit.
    labels = [func.new_label("chk") for _ in steps]
    probe_entry_labels = [func.new_label("probe") for _ in plan.probes]
    first_pass_target = (
        probe_entry_labels[0] if plan.probes else lcopy_label
    )
    insert_at = func.block_index(loop.header)
    blocks: List[BasicBlock] = []
    for position, (code, rel, a, b, note) in enumerate(steps):
        passed = (
            labels[position + 1] if position + 1 < len(steps)
            else first_pass_target
        )
        if rel.startswith("__pass__"):
            # Branch taken => this alias pair cannot overlap => skip its
            # second (failing) test.
            real_rel = rel.split()[1]
            skip_to = (
                labels[position + 2]
                if position + 2 < len(steps)
                else first_pass_target
            )
            term = CondJump(real_rel, a, b, skip_to, passed)
        else:
            term = CondJump(rel, a, b, fallback, passed)
        term.notes["runtime_check"] = note
        blocks.append(BasicBlock(labels[position], code + [term]))

    for position, probe in enumerate(plan.probes):
        assert trips is not None
        passed = (
            probe_entry_labels[position + 1]
            if position + 1 < len(plan.probes)
            else lcopy_label
        )
        blocks.extend(
            _probe_blocks(
                func, probe, probe_entry_labels[position], trips,
                fallback, passed, loop.header,
            )
        )

    if not blocks:
        blocks = [BasicBlock(func.new_label("chk"), [Jump(lcopy_label)])]
        labels = [blocks[0].label]

    for block in reversed(blocks):
        func.blocks.insert(insert_at, block)

    entry_label = labels[0] if labels else probe_entry_labels[0]
    preheader.instrs = (
        preheader.instrs[:-1] + setup + [preheader.instrs[-1]]
    )
    preheader.retarget(loop.header, entry_label)
    return entry_label


def _probe_blocks(
    func: Function,
    probe: IndexProbe,
    entry_label: str,
    trips: Reg,
    fallback: str,
    passed: str,
    loop_header: str,
) -> List[BasicBlock]:
    """The index-adjacency probe: a generated loop scanning the index
    stream and bailing to the original loop on the first gap.

    ::

        probeN:    n     = trips << log2(elems)   # elements scanned
                   last  = n - 1
                   span  = last << log2(iw)
                   limit = index_base + span      # last element's addr
                   p     = index_base
                   jump probeN.scan
        probeN.scan:
                   cur  = load.iw [p]
                   nxt  = load.iw [p + iw]
                   want = cur + 1
                   br ne nxt, want -> fallback     # a gap: original loop
        probeN.next:
                   p = p + iw
                   br ltu p, limit -> probeN.scan, else -> passed

    The scan touches ``elems × trips`` index elements — O(n) preheader
    work, the price of the SpMV trick; profitability charges it per
    iteration (see ``profitability.shape_check_overhead``).
    """
    iw = probe.index_width
    elems = probe.elems_per_iter
    setup: List[Instr] = []
    count = func.new_reg("pn")
    if elems & (elems - 1) == 0 and elems != 1:
        setup.append(
            BinOp("shl", count, trips, Const(elems.bit_length() - 1))
        )
    elif elems == 1:
        setup.append(BinOp("add", count, trips, Const(0)))
    else:
        setup.append(BinOp("mul", count, trips, Const(elems)))
    last = func.new_reg("pn")
    setup.append(BinOp("sub", last, count, Const(1)))
    span = func.new_reg("pn")
    if iw == 1:
        span = last
    else:
        setup.append(
            BinOp("shl", span, last, Const(iw.bit_length() - 1))
        )
    limit = func.new_reg("pl")
    setup.append(BinOp("add", limit, probe.index_base, span))
    cursor = func.new_reg("pp")
    setup.append(BinOp("add", cursor, probe.index_base, Const(0)))

    scan_label = func.new_label("probe")
    next_label = func.new_label("probe")
    current = func.new_reg("pv")
    following = func.new_reg("pv")
    expected = func.new_reg("pv")
    check = CondJump("ne", following, expected, fallback, next_label)
    check.notes["runtime_check"] = {
        "kind": "index-adjacency",
        "loop": loop_header,
        "dischargeable": False,
        "base": probe.index_base.index,
        "count": probe.count,
    }
    scan = BasicBlock(
        scan_label,
        [
            Load(
                current, cursor, 0, iw, signed=probe.index_signed
            ),
            Load(
                following, cursor, iw, iw, signed=probe.index_signed
            ),
            BinOp("add", expected, current, Const(1)),
            check,
        ],
    )
    advance = BasicBlock(
        next_label,
        [
            BinOp("add", cursor, cursor, Const(iw)),
            CondJump("ltu", cursor, limit, scan_label, passed),
        ],
    )
    return [
        BasicBlock(entry_label, setup + [Jump(scan_label)]),
        scan,
        advance,
    ]
