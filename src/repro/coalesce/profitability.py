"""Profitability analysis (Figure 3, ``DoProfitabilityAnalysisAndModify``).

The paper "makes a copy of the loop ... then inserts appropriate wide
references in the copy ... schedules the instructions in the original loop
and finds the number of cycles necessary ... [and in] the copy ... if the
latter requires less cycles, then go ahead."

The subtlety is that the cycle comparison must happen on *machine-level*
code: on the Alpha a narrow load is really ``ldq_u`` + extract, on the
88100 a field insert is really three logical instructions.  So both loop
bodies are pushed through the target's lowering before being handed to
the list scheduler — the very same scheduler and cost tables the simulator
uses, keeping the prediction and the measurement consistent.
"""

from __future__ import annotations

from typing import List

from repro.coalesce.partition import Run
from repro.ir.function import BasicBlock, Function
from repro.ir.rtl import Instr
from repro.machine.lowering import _lower_instr
from repro.machine.machine import MachineDescription
from repro.sched.list_scheduler import list_schedule


def lower_block_copy(
    func: Function, block: BasicBlock, machine: MachineDescription
) -> BasicBlock:
    """Return a machine-lowered clone of ``block`` (original untouched).

    Temporaries the lowering needs are allocated from ``func``'s register
    pool, so the clone is internally consistent with the function.
    """
    lowered: List[Instr] = []
    for instr in block.instrs:
        _lower_instr(machine, func, lowered, instr.clone())
    return BasicBlock(f"{block.label}.lowered", lowered)


def estimate_block_cycles(
    func: Function, block: BasicBlock, machine: MachineDescription
) -> int:
    """Scheduled cycle count of one pass through the lowered block.

    Uses the list scheduler's estimate (``Schedule(LOOP)`` in Figure 3),
    not the in-order layout cost — profitability asks "how fast could each
    version run once scheduled", since scheduling runs afterwards anyway.
    """
    return list_schedule(
        lower_block_copy(func, block, machine), machine
    ).cycles


def shape_check_overhead(runs: List[Run], machine: MachineDescription) -> int:
    """Per-iteration cost of the generalized Figure 5 machinery.

    The linear preheader checks (alignment, overlap, stride
    divisibility) execute once and amortize to nothing over the loop,
    so the Figure 3 cycle comparison ignores them — exactly as the
    paper does.  The indirect runs' *index-adjacency probe* is
    different: it scans the whole index stream, O(n) work that grows
    with the trip count just like the loop body, so it must be charged
    per iteration.  Each iteration's share is ``elems_per_iter``
    traversals of the probe's scan/advance pair — two index loads, two
    ALU operations and two branches each — charged once per distinct
    probe (the check planner emits one probe per index partition).

    This is why an unforced gather never coalesces: the probe reads
    every index element the loop itself will read, so the wide-load
    saving can never repay it.  The evaluation applies the transform
    under ``force`` (the paper's own methodology for measuring
    unprofitable cases) and the simulator then reports the honest
    outcome.
    """
    lat = machine.latencies
    per_element = 2 * (
        lat.get("load", 1) + lat.get("alu", 1) + lat.get("branch", 1)
    )
    seen = set()
    cycles = 0
    for run in runs:
        info = run.indirect
        if info is None:
            continue
        key = (info.x_base.index, info.index_base.index, run.wide_width)
        if key in seen:
            continue
        seen.add(key)
        cycles += info.elems_per_iter * per_element
    return cycles
