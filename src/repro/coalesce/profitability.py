"""Profitability analysis (Figure 3, ``DoProfitabilityAnalysisAndModify``).

The paper "makes a copy of the loop ... then inserts appropriate wide
references in the copy ... schedules the instructions in the original loop
and finds the number of cycles necessary ... [and in] the copy ... if the
latter requires less cycles, then go ahead."

The subtlety is that the cycle comparison must happen on *machine-level*
code: on the Alpha a narrow load is really ``ldq_u`` + extract, on the
88100 a field insert is really three logical instructions.  So both loop
bodies are pushed through the target's lowering before being handed to
the list scheduler — the very same scheduler and cost tables the simulator
uses, keeping the prediction and the measurement consistent.
"""

from __future__ import annotations

from typing import List

from repro.ir.function import BasicBlock, Function
from repro.ir.rtl import Instr
from repro.machine.lowering import _lower_instr
from repro.machine.machine import MachineDescription
from repro.sched.list_scheduler import list_schedule


def lower_block_copy(
    func: Function, block: BasicBlock, machine: MachineDescription
) -> BasicBlock:
    """Return a machine-lowered clone of ``block`` (original untouched).

    Temporaries the lowering needs are allocated from ``func``'s register
    pool, so the clone is internally consistent with the function.
    """
    lowered: List[Instr] = []
    for instr in block.instrs:
        _lower_instr(machine, func, lowered, instr.clone())
    return BasicBlock(f"{block.label}.lowered", lowered)


def estimate_block_cycles(
    func: Function, block: BasicBlock, machine: MachineDescription
) -> int:
    """Scheduled cycle count of one pass through the lowered block.

    Uses the list scheduler's estimate (``Schedule(LOOP)`` in Figure 3),
    not the in-order layout cost — profitability asks "how fast could each
    version run once scheduled", since scheduling runs afterwards anyway.
    """
    return list_schedule(
        lower_block_copy(func, block, machine), machine
    ).cycles
