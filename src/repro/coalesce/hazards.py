"""Safety (hazard) analysis — the paper's Figure 4 (``IsHazard``).

Coalescing moves memory operations: a run's narrow loads all happen at the
*first* load's position (as one wide load), a run's narrow stores all
happen at the *last* store's position (as one wide store).  Every memory
operation crossed by that motion is examined:

* a **same-partition** conflict (overlapping ``[disp, disp+width)`` on the
  same base value) is a hard hazard — the run is rejected;
* a **cross-partition** memory operation *might* alias, which "can
  probably be detected only at run time" — the pair of partitions is
  recorded and the run stays alive, contingent on a run-time overlap check
  (``DoAliasDetection``);
* a call, or a redefinition of the run's base register inside the crossed
  region, rejects the run (the base-and-displacement reasoning breaks).

When the caller supplies the alias engine's loop summary (``oracle``), a
cross-partition pair the engine proved ``no-alias`` skips the run-time
check entirely: the pair lands in ``elided_pairs`` instead of
``alias_pairs``.  The verdict is sound for exactly this question — a
no-alias pair never touches the same byte *within one iteration*, and the
code motion being vetted only reorders operations of one iteration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.alias.lattice import NO_ALIAS
from repro.coalesce.partition import MemoryRef, Partition, Run
from repro.ir.function import BasicBlock
from repro.ir.rtl import Call, Instr, Load, Store


@dataclass
class HazardResult:
    """Outcome of checking one run."""

    safe: bool
    reason: str = ""
    # Pairs of partition base register indices needing run-time overlap
    # checks (order-insensitive).
    alias_pairs: Set[Tuple[int, int]] = field(default_factory=set)
    # Pairs the alias engine proved disjoint — no check needed.
    elided_pairs: Set[Tuple[int, int]] = field(default_factory=set)


def _ranges_overlap(a: MemoryRef, b_disp: int, b_width: int) -> bool:
    return not (
        a.disp + a.width <= b_disp or b_disp + b_width <= a.disp
    )


def _pair(a: int, b: int) -> Tuple[int, int]:
    return (a, b) if a <= b else (b, a)


def check_indirect_hazards(block: BasicBlock, run: Run) -> HazardResult:
    """Figure 4 for a gather run — strictly harsher than the base-and-
    displacement rules.

    The gathered addresses are data-dependent, so no span can be
    computed in the preheader for a run-time overlap test: *any* store
    crossed by the upward motion of the member loads rejects the run
    outright, as does a call or a redefinition of the lead address
    register.  (A histogram's ``hist[src[i]]++`` dies here — correctly:
    its read-modify-write gathers must not reorder.)
    """
    base_index = run.partition.base.index
    member_positions = {r.index for r in run.refs}
    for position in range(run.first_index, run.last_index + 1):
        instr = block.instrs[position]
        if isinstance(instr, Call):
            return HazardResult(False, "call inside the coalesced region")
        if isinstance(instr, Store):
            return HazardResult(
                False, "store crosses the gathered loads"
            )
        if position in member_positions:
            continue
        if any(r.index == base_index for r in instr.defs()):
            return HazardResult(
                False, "lead gather address modified inside the region"
            )
    return HazardResult(safe=True)


def check_hazards(
    block: BasicBlock,
    run: Run,
    partitions: Dict[int, Partition],
    oracle=None,
) -> HazardResult:
    """Apply Figure 4's rules to ``run`` within ``block``.

    ``oracle`` is an optional
    :class:`repro.analysis.alias.LoopAliasSummary` for this loop; pairs
    it proves disjoint need no run-time check.
    """
    base_index = run.partition.base.index
    result = HazardResult(safe=True)
    ref_by_index = {r.index: r for r in run.refs}

    def record_pair(other: int) -> None:
        pair = _pair(base_index, other)
        if (
            oracle is not None
            and oracle.verdict(base_index, other) == NO_ALIAS
        ):
            result.elided_pairs.add(pair)
        else:
            result.alias_pairs.add(pair)

    first = run.first_index
    last = run.last_index

    for position in range(first, last + 1):
        instr = block.instrs[position]

        if isinstance(instr, Call):
            return HazardResult(False, "call inside the coalesced region")

        # The base register must not change while references move across
        # the region (Figure 4, IsModifiedBase).
        if any(r.index == base_index for r in instr.defs()):
            return HazardResult(
                False, "base register modified inside the region"
            )

        if position in ref_by_index:
            continue  # a member of the run itself
        if not isinstance(instr, (Load, Store)):
            continue

        other_base = instr.base.index
        other_partition = partitions.get(other_base)
        same_partition = other_base == base_index

        if not run.is_store:
            # Loads move UP to `first`.  Crossing another load is always
            # fine; crossing a store matters for the member loads that
            # originally executed after it.
            if isinstance(instr, Store):
                conflict = any(
                    ref.index > position
                    and _ranges_overlap(ref, instr.disp, instr.width)
                    for ref in run.refs
                )
                if same_partition:
                    if conflict:
                        return HazardResult(
                            False,
                            "store into the loaded word between the "
                            "coalesced loads",
                        )
                else:
                    if other_partition is None or (
                        other_partition.kind == "other"
                    ):
                        return HazardResult(
                            False, "store with unanalyzable base crosses "
                                   "the loads"
                        )
                    record_pair(other_base)
        else:
            # Stores move DOWN to `last`.  Crossing a load matters for the
            # member stores that originally executed before it; crossing
            # another store to the same bytes would reorder writes.
            if isinstance(instr, Load):
                conflict = any(
                    ref.index < position
                    and _ranges_overlap(ref, instr.disp, instr.width)
                    for ref in run.refs
                )
                if same_partition:
                    if conflict:
                        return HazardResult(
                            False,
                            "load of a delayed store's bytes between the "
                            "coalesced stores",
                        )
                else:
                    if other_partition is None or (
                        other_partition.kind == "other"
                    ):
                        return HazardResult(
                            False, "load with unanalyzable base crosses "
                                   "the stores"
                        )
                    record_pair(other_base)
            else:  # a store outside the run
                conflict = any(
                    _ranges_overlap(ref, instr.disp, instr.width)
                    for ref in run.refs
                )
                if same_partition:
                    if conflict:
                        return HazardResult(
                            False,
                            "overlapping store between the coalesced "
                            "stores",
                        )
                else:
                    if other_partition is None or (
                        other_partition.kind == "other"
                    ):
                        return HazardResult(
                            False, "store with unanalyzable base inside "
                                   "the region"
                        )
                    record_pair(other_base)
    return result
