"""Local (block-scoped) common subexpression elimination.

Pure computations with identical operands reuse the earlier result.
Loads participate too — a second load of the same address with no
intervening store or call is redundant — but note this never subsumes
memory access coalescing: the narrow references the coalescer merges are
at *different* addresses, which CSE cannot touch (§2.1 of the paper).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.ir.function import Function
from repro.ir.rtl import (
    BinOp,
    Call,
    Const,
    Extract,
    FrameAddr,
    GlobalAddr,
    Insert,
    Load,
    Mov,
    Operand,
    Reg,
    Store,
    UnOp,
    COMMUTATIVE_OPS,
)
from repro.opt.pass_manager import PassContext


def _operand_key(value: Operand) -> Tuple[str, int]:
    if isinstance(value, Reg):
        return ("r", value.index)
    return ("c", value.value)


def _expression_key(instr) -> Optional[Tuple]:
    """Hashable key identifying the computation, or None if not CSE-able."""
    if isinstance(instr, BinOp):
        a, b = _operand_key(instr.a), _operand_key(instr.b)
        if instr.op in COMMUTATIVE_OPS and b < a:
            a, b = b, a
        return ("bin", instr.op, a, b)
    if isinstance(instr, UnOp):
        return ("un", instr.op, _operand_key(instr.a))
    if isinstance(instr, Extract):
        return (
            "ext",
            instr.width,
            instr.signed,
            _operand_key(instr.src),
            _operand_key(instr.pos),
        )
    if isinstance(instr, Insert):
        return (
            "ins",
            instr.width,
            _operand_key(instr.acc),
            _operand_key(instr.src),
            _operand_key(instr.pos),
        )
    if isinstance(instr, FrameAddr):
        return ("frame", instr.slot)
    if isinstance(instr, GlobalAddr):
        return ("global", instr.name)
    if isinstance(instr, Load):
        return (
            "load",
            instr.width,
            instr.signed,
            instr.unaligned,
            _operand_key(instr.base),
            instr.disp,
        )
    return None


def local_cse(func: Function, ctx: PassContext) -> bool:
    changed = False
    for block in func.blocks:
        available: Dict[Tuple, Reg] = {}
        new_instrs = []
        for instr in block.instrs:
            key = _expression_key(instr)
            # Never rewrite a self-referencing computation like
            # ``i = add i, 1`` into a copy: it costs nothing and hides
            # the induction variable from the loop analyses.
            if key is not None and any(
                _key_reads(key, {r.index}) for r in instr.defs()
            ):
                new_instrs.append(instr)
                defined = {r.index for r in instr.defs()}
                stale = [
                    k
                    for k, result in available.items()
                    if result.index in defined or _key_reads(k, defined)
                ]
                for k in stale:
                    available.pop(k, None)
                continue
            if key is not None and key in available:
                # Reuse the earlier result.
                replacement = Mov(instr.defs()[0], available[key])
                new_instrs.append(replacement)
                changed = True
                instr = replacement
                key = None  # a Mov adds nothing to the table
            else:
                new_instrs.append(instr)

            # Invalidate entries whose inputs or results were redefined.
            defined = {r.index for r in instr.defs()}
            if defined:
                stale = [
                    k
                    for k, result in available.items()
                    if result.index in defined or _key_reads(k, defined)
                ]
                for k in stale:
                    available.pop(k, None)
            if isinstance(instr, (Store, Call)):
                for k in [k for k in available if k[0] == "load"]:
                    available.pop(k)

            # Record the new expression unless it reads its own result
            # (e.g. ``r4 = add r4, 1``), whose inputs are already stale.
            if key is not None and not _key_reads(key, defined):
                available[key] = instr.defs()[0]
        block.instrs = new_instrs
    return changed


def _key_reads(key: Tuple, reg_indices: set) -> bool:
    """Whether any register operand baked into ``key`` was redefined."""
    for part in key:
        if (
            isinstance(part, tuple)
            and len(part) == 2
            and part[0] == "r"
            and part[1] in reg_indices
        ):
            return True
    return False


#: Block-local rewrites only — the dominator tree survives.
local_cse.preserves = frozenset({"dominators"})
