"""Copy and constant propagation (block-local).

Within a block, after ``dst = src`` every use of ``dst`` can read ``src``
instead, until either register is redefined.  Constants propagate the same
way.  A complementary *copy coalescing* rewrite handles the front end's
``tmp = a + b; x = tmp`` pattern by renaming the producer's destination
when the temporary dies at the copy.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.liveness import liveness
from repro.ir.function import Function
from repro.ir.rtl import Call, Const, Instr, Mov, Operand, Reg
from repro.opt.pass_manager import PassContext


def _propagate_in_block(block) -> bool:
    changed = False
    copies: Dict[int, Operand] = {}  # dst reg index -> current value

    def invalidate(reg_index: int) -> None:
        copies.pop(reg_index, None)
        for key in [
            k
            for k, v in copies.items()
            if isinstance(v, Reg) and v.index == reg_index
        ]:
            copies.pop(key)

    for instr in block.instrs:
        # Rewrite uses first.
        mapping = {}
        for reg in instr.uses():
            if reg.index in copies:
                mapping[reg] = copies[reg.index]
        if mapping:
            before = repr(instr)
            instr.substitute_uses(mapping)
            if repr(instr) != before:
                changed = True
        # Then account for definitions.
        for reg in instr.defs():
            invalidate(reg.index)
        if isinstance(instr, Mov):
            source = instr.src
            if isinstance(source, Const):
                copies[instr.dst.index] = source
            elif isinstance(source, Reg) and (
                source.index != instr.dst.index
            ):
                # Both registers hold the same value until either is
                # redefined; canonicalize onto the lower index so loop
                # counters keep their original register (which lets the
                # copy itself die and the IV pattern re-form).
                if source.index < instr.dst.index:
                    copies[instr.dst.index] = source
                else:
                    copies[source.index] = instr.dst
    return changed


def _coalesce_copies(func: Function) -> bool:
    """Rewrite ``tmp = <op>; x = tmp`` into ``x = <op>`` when tmp dies.

    Requires: the copy immediately follows other instructions in the same
    block, ``tmp`` is not used between the producer and the copy (besides
    by the copy), not live after the copy, and the producer defines only
    ``tmp``.
    """
    info = liveness(func)
    changed = False
    for block in func.blocks:
        live_after = info.live_after(func, block.label)
        producer_of: Dict[int, int] = {}
        uses_after_def: Dict[int, int] = {}
        for index, instr in enumerate(block.instrs):
            if (
                isinstance(instr, Mov)
                and isinstance(instr.src, Reg)
                and instr.src.index in producer_of
                and uses_after_def.get(instr.src.index, 0) == 0
                and instr.src.index not in live_after[index]
                and instr.dst.index != instr.src.index
            ):
                producer_index = producer_of[instr.src.index]
                producer = block.instrs[producer_index]
                # dst must not be used or redefined between producer & copy.
                conflict = False
                for middle in block.instrs[producer_index + 1:index]:
                    regs = middle.uses() + middle.defs()
                    if any(r.index == instr.dst.index for r in regs):
                        conflict = True
                        break
                if not conflict and not isinstance(producer, Call):
                    producer.substitute_defs({instr.src: instr.dst})
                    block.instrs[index] = Mov(instr.dst, instr.dst)
                    changed = True
            for reg in instr.uses():
                if reg.index in uses_after_def:
                    uses_after_def[reg.index] += 1
            for reg in instr.defs():
                producer_of[reg.index] = index
                uses_after_def[reg.index] = 0
        if changed:
            block.instrs = [
                i
                for i in block.instrs
                if not (
                    isinstance(i, Mov)
                    and isinstance(i.src, Reg)
                    and i.src.index == i.dst.index
                )
            ]
    return changed


def _rematerialize_increments(func: Function) -> bool:
    """Rewrite ``i = t`` into ``i = i + c`` when ``t = i + c`` precedes it.

    CSE often unifies a loop body's ``i+1`` with the step's ``i+1``,
    leaving the counter update as a plain copy — which hides the counter
    from the induction variable analysis.  Re-materializing the increment
    restores the ``i = i + c`` shape (the copy's source keeps its value,
    so body uses of ``i+1`` are untouched).
    """
    from repro.ir.rtl import BinOp

    changed = False
    for block in func.blocks:
        last_def: Dict[int, int] = {}
        for index, instr in enumerate(block.instrs):
            if (
                isinstance(instr, Mov)
                and isinstance(instr.src, Reg)
                and instr.src.index in last_def
            ):
                producer = block.instrs[last_def[instr.src.index]]
                step = _add_const_of(producer, instr.dst.index)
                if step is not None:
                    # dst must be unchanged since the producer read it.
                    clean = all(
                        instr.dst.index not in (
                            r.index for r in middle.defs()
                        )
                        for middle in block.instrs[
                            last_def[instr.src.index] + 1:index
                        ]
                    )
                    if clean:
                        if step >= 0:
                            block.instrs[index] = BinOp(
                                "add", instr.dst, instr.dst, Const(step)
                            )
                        else:
                            block.instrs[index] = BinOp(
                                "sub", instr.dst, instr.dst, Const(-step)
                            )
                        changed = True
            for reg in block.instrs[index].defs():
                last_def[reg.index] = index
    return changed


def _add_const_of(instr, reg_index: int):
    """If ``instr`` is ``x = reg_index ± const``, return the signed step."""
    from repro.ir.rtl import BinOp

    if not isinstance(instr, BinOp):
        return None
    if instr.op == "add":
        if (
            isinstance(instr.a, Reg)
            and instr.a.index == reg_index
            and isinstance(instr.b, Const)
        ):
            return instr.b.value
        if (
            isinstance(instr.b, Reg)
            and instr.b.index == reg_index
            and isinstance(instr.a, Const)
        ):
            return instr.a.value
    if (
        instr.op == "sub"
        and isinstance(instr.a, Reg)
        and instr.a.index == reg_index
        and isinstance(instr.b, Const)
    ):
        return -instr.b.value
    return None


def copy_propagate(func: Function, ctx: PassContext) -> bool:
    changed = False
    for block in func.blocks:
        changed |= _propagate_in_block(block)
    changed |= _coalesce_copies(func)
    changed |= _rematerialize_increments(func)
    return changed


#: Deletes and rewrites straight-line instructions only; terminator
#: targets and the block list are untouched.
copy_propagate.preserves = frozenset({"dominators"})
