"""Dead code elimination (mark-and-sweep over def-use chains).

Stronger than the classic liveness formulation: a self-updating register
cycle with no observable use (``i = i + 1`` feeding only itself) is dead
here, which is exactly what the paper's ``EliminateInductionVariables``
step needs after linear function test replacement retires a loop counter.

Marking starts from instructions with observable effects (stores, calls,
terminators, returns); every register such an instruction reads is
*needed*, and every definition of a needed register is live.  Everything
unmarked is swept.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.ir.function import Function
from repro.ir.rtl import Call, Instr, Store
from repro.opt.pass_manager import PassContext


def _observable(instr: Instr) -> bool:
    return instr.is_terminator or isinstance(instr, (Store, Call))


def dead_code_elimination(func: Function, ctx: PassContext) -> bool:
    # All definition sites per register index.
    defs_of: Dict[int, List[Instr]] = {}
    all_instrs: List[Instr] = []
    for block in func.blocks:
        for instr in block.instrs:
            all_instrs.append(instr)
            for reg in instr.defs():
                defs_of.setdefault(reg.index, []).append(instr)

    live: Set[int] = set()
    worklist: List[Instr] = []
    for instr in all_instrs:
        if _observable(instr):
            live.add(id(instr))
            worklist.append(instr)

    needed_regs: Set[int] = set()
    while worklist:
        instr = worklist.pop()
        for reg in instr.uses():
            if reg.index in needed_regs:
                continue
            needed_regs.add(reg.index)
            for producer in defs_of.get(reg.index, []):
                if id(producer) not in live:
                    live.add(id(producer))
                    worklist.append(producer)

    changed = False
    for block in func.blocks:
        kept = [i for i in block.instrs if id(i) in live]
        if len(kept) != len(block.instrs):
            changed = True
            block.instrs = kept
    return changed


#: Removes straight-line instructions; the CFG shape is untouched.
dead_code_elimination.preserves = frozenset({"dominators"})
