"""CFG simplification: unreachable-block removal, jump threading, and
straight-line block merging.

The front end deliberately over-produces blocks (every loop gets a separate
latch so ``continue`` has a target); this pass merges them back so simple
loop bodies become the single-block shape the unroller and coalescer want.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.cfgutil import predecessors, reachable_labels
from repro.ir.function import Function
from repro.ir.rtl import CondJump, Jump
from repro.opt.pass_manager import PassContext


def _remove_unreachable(func: Function) -> bool:
    reachable = reachable_labels(func)
    dead = [b.label for b in func.blocks if b.label not in reachable]
    for label in dead:
        func.remove_block(label)
    return bool(dead)


def _thread_trivial_jumps(func: Function) -> bool:
    """Retarget edges that go through blocks containing only a jump."""
    forward: Dict[str, str] = {}
    for block in func.blocks:
        if len(block.instrs) == 1 and isinstance(block.instrs[0], Jump):
            target = block.instrs[0].target
            if target != block.label:
                forward[block.label] = target

    def resolve(label: str) -> str:
        seen = set()
        while label in forward and label not in seen:
            seen.add(label)
            label = forward[label]
        return label

    changed = False
    for block in func.blocks:
        term = block.terminator
        if isinstance(term, Jump):
            resolved = resolve(term.target)
            if resolved != term.target:
                term.target = resolved
                changed = True
        elif isinstance(term, CondJump):
            new_true = resolve(term.iftrue)
            new_false = resolve(term.iffalse)
            if new_true != term.iftrue or new_false != term.iffalse:
                term.iftrue = new_true
                term.iffalse = new_false
                changed = True
    return changed


def _merge_chains(func: Function) -> bool:
    """Merge ``a -> jump b`` when ``b``'s only predecessor is ``a``."""
    changed = False
    merged = True
    while merged:
        merged = False
        preds = predecessors(func)
        for block in func.blocks:
            term = block.terminator
            if not isinstance(term, Jump):
                continue
            target_label = term.target
            if target_label == block.label:
                continue
            if target_label == func.entry.label:
                continue
            if preds[target_label] != [block.label]:
                continue
            target = func.block(target_label)
            block.instrs = block.instrs[:-1] + target.instrs
            func.remove_block(target_label)
            changed = merged = True
            break
    return changed


def _collapse_same_target_branches(func: Function) -> bool:
    changed = False
    for block in func.blocks:
        term = block.terminator
        if isinstance(term, CondJump) and term.iftrue == term.iffalse:
            block.instrs[-1] = Jump(term.iftrue)
            changed = True
    return changed


def simplify_cfg(func: Function, ctx: PassContext = None) -> bool:
    """Run all CFG clean-ups to a local fixpoint."""
    changed = False
    for _ in range(10):
        round_changed = False
        round_changed |= _collapse_same_target_branches(func)
        round_changed |= _thread_trivial_jumps(func)
        round_changed |= _remove_unreachable(func)
        round_changed |= _merge_chains(func)
        changed |= round_changed
        if not round_changed:
            break
    return changed
