"""Loop unrolling with a remainder epilogue, plus IV compaction.

The paper unrolls loops to expose coalescible narrow references (Figure 2
line 7): "this routine, if necessary, produces code to execute the loop
body enough times so that the number of iterations of the main loop is a
multiple of the unrolling factor".  We place the remainder *after* the
main loop::

    preheader:   t = trip count                      (runtime arithmetic)
                 rem = t mod k
                 bound' = bound -/+ rem*step
    mainguard:   if iv REL bound' goto main else epiguard
    main:        <k body copies, IVs compacted>
                 if iv REL bound' goto main else epiguard
    epiguard:    if iv REL bound goto epilogue else exit
    epilogue:    <one body copy>; if iv REL bound goto epilogue else exit

Remainder-last rather than the remainder-first of the paper's Figure 5 for
a concrete reason: a leading remainder advances the pointers *off* the
wide alignment boundary, so the coalescer's run-time alignment check would
route every non-multiple trip count to the fallback loop.  With the
remainder trailing, the main loop starts at the (aligned) array bases and
the check passes whenever the data is aligned — the paper's measured
configuration gets the same effect from its ``n % 4`` versioning check
(§2.2), which remains available via ``versioned_divisibility``.

IV compaction implements the paper's ``CalculateRelativeOffsets`` +
``EliminateInductionVariables``: the k per-copy pointer increments are
deleted, memory displacements absorb the accumulated offsets
(``[p+0], [p+2], ..., [p+2(k-1)]``), and one combined increment remains at
the bottom — producing Figure 1c's address pattern.

The unrolling heuristic is the paper's: the unrolled body must still fit
in the instruction cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.analysis.induction import find_basic_ivs
from repro.analysis.loops import Loop, ensure_preheader, find_loops
from repro.analysis.tripcount import TripCount, analyze_trip_count
from repro.errors import PassError
from repro.ir.function import BasicBlock, Function
from repro.ir.rtl import (
    BinOp,
    CondJump,
    Const,
    Instr,
    Jump,
    Load,
    Reg,
    Store,
)
from repro.opt.pass_manager import PassContext

_STRICT_RELS = frozenset({"lt", "gt", "ltu", "gtu"})
_EQUAL_RELS = frozenset({"le", "ge", "leu", "geu"})


@dataclass
class UnrollDecision:
    """Why a loop was (or was not) unrolled, and by how much."""

    factor: int
    reason: str


def _is_power_of_two(value: int) -> bool:
    return value > 0 and value & (value - 1) == 0


def _emit_udiv_const(
    func: Function, out: List[Instr], value: Reg, divisor: int
) -> Reg:
    result = func.new_reg("t")
    if _is_power_of_two(divisor):
        out.append(
            BinOp("shrl", result, value, Const(divisor.bit_length() - 1))
        )
    else:
        out.append(BinOp("divu", result, value, Const(divisor)))
    return result


def _emit_umod_const(
    func: Function, out: List[Instr], value: Reg, divisor: int
) -> Reg:
    result = func.new_reg("t")
    if _is_power_of_two(divisor):
        out.append(BinOp("and", result, value, Const(divisor - 1)))
    else:
        out.append(BinOp("remu", result, value, Const(divisor)))
    return result


def emit_trip_count(
    func: Function, out: List[Instr], trip: TripCount
) -> Reg:
    """Emit preheader code computing the number of remaining iterations.

    Valid only where the loop is known to execute at least once (our
    rotated loops guarantee this at the preheader).
    """
    step = abs(trip.step)
    span = func.new_reg("range")
    if trip.step > 0:
        out.append(BinOp("sub", span, trip.bound, trip.iv.reg))
    else:
        out.append(BinOp("sub", span, trip.iv.reg, trip.bound))
    if trip.rel in _STRICT_RELS:
        rounded = func.new_reg("t")
        out.append(BinOp("add", rounded, span, Const(step - 1)))
        return _emit_udiv_const(func, out, rounded, step)
    if trip.rel in _EQUAL_RELS:
        quotient = _emit_udiv_const(func, out, span, step)
        result = func.new_reg("trips")
        out.append(BinOp("add", result, quotient, Const(1)))
        return result
    # 'ne': tripcount analysis guarantees |step| == 1.
    return span if step == 1 else _emit_udiv_const(func, out, span, step)


def _upward_exposed(instrs: List[Instr]) -> Set[int]:
    """Registers read before being written within the sequence."""
    exposed: Set[int] = set()
    defined: Set[int] = set()
    for instr in instrs:
        for reg in instr.uses():
            if reg.index not in defined:
                exposed.add(reg.index)
        for reg in instr.defs():
            defined.add(reg.index)
    return exposed


def _clone_body_renamed(
    func: Function, body: List[Instr], exposed: Set[int]
) -> List[Instr]:
    """Clone a body copy, renaming iteration-local registers."""
    rename: Dict[Reg, Reg] = {}
    copies: List[Instr] = []
    for instr in body:
        clone = instr.clone()
        # Uses of previously renamed registers read this copy's values.
        clone.substitute_uses(dict(rename))
        for reg in clone.defs():
            if reg.index not in exposed:
                if reg not in rename:
                    rename[reg] = func.new_reg(reg.name)
        clone.substitute_defs(
            {old: new for old, new in rename.items()}
        )
        copies.append(clone)
    return copies


def compact_ivs(func: Function, block: BasicBlock) -> bool:
    """Fold repeated IV increments into displacements + one increment.

    Treats the block as a single-block loop body: registers whose only
    in-block definitions are ``r = r ± const`` are compactable.  Non-memory
    uses at a nonzero offset get a materialized add (rare; the loop-closing
    compare sits after the combined increment, at offset zero).
    """
    # Identify compactable registers and their per-def increments.
    increments: Dict[int, List[int]] = {}
    disqualified: Set[int] = set()
    for index, instr in enumerate(block.instrs):
        for reg in instr.defs():
            amount = _increment_pattern(instr, reg.index)
            if amount is None:
                disqualified.add(reg.index)
            else:
                increments.setdefault(reg.index, []).append(index)
    targets = {
        reg_index: sites
        for reg_index, sites in increments.items()
        if reg_index not in disqualified and len(sites) > 1
    }
    if not targets:
        return False

    offsets: Dict[int, int] = {reg_index: 0 for reg_index in targets}
    remaining: Dict[int, int] = {
        reg_index: len(sites) for reg_index, sites in targets.items()
    }
    new_instrs: List[Instr] = []
    for index, instr in enumerate(block.instrs):
        # Is this one of the increments being folded?
        folded = False
        for reg_index in targets:
            if index in targets[reg_index]:
                amount = _increment_pattern(instr, reg_index)
                offsets[reg_index] += amount
                remaining[reg_index] -= 1
                if remaining[reg_index] == 0:
                    # Last site: emit the combined increment here.
                    reg = instr.defs()[0]
                    new_instrs.append(
                        BinOp("add", reg, reg, Const(offsets[reg_index]))
                    )
                    offsets[reg_index] = 0
                folded = True
                break
        if folded:
            continue
        # Fold pending offsets into memory displacements.
        if isinstance(instr, (Load, Store)):
            base_offset = offsets.get(instr.base.index, 0)
            if base_offset:
                instr.disp += base_offset
            # Store value operands handled below like any other use.
        for reg in list(instr.uses()):
            pending = offsets.get(reg.index, 0)
            if pending == 0:
                continue
            if isinstance(instr, (Load, Store)) and (
                reg.index == instr.base.index
            ):
                continue  # already folded into disp
            shifted = func.new_reg("adj")
            new_instrs.append(BinOp("add", shifted, reg, Const(pending)))
            instr.substitute_uses({reg: shifted})
        new_instrs.append(instr)
    block.instrs = new_instrs
    return True


def _increment_pattern(instr: Instr, reg_index: int) -> Optional[int]:
    if not isinstance(instr, BinOp) or instr.dst.index != reg_index:
        return None
    if instr.op == "add":
        if (
            isinstance(instr.a, Reg)
            and instr.a.index == reg_index
            and isinstance(instr.b, Const)
        ):
            return instr.b.value
        if (
            isinstance(instr.b, Reg)
            and instr.b.index == reg_index
            and isinstance(instr.a, Const)
        ):
            return instr.a.value
    if (
        instr.op == "sub"
        and isinstance(instr.a, Reg)
        and instr.a.index == reg_index
        and isinstance(instr.b, Const)
    ):
        return -instr.b.value
    return None


def unroll_counted_loop(
    func: Function,
    ctx: PassContext,
    loop: Loop,
    factor: int,
) -> bool:
    """Unroll a single-block counted loop by ``factor`` (remainder first).

    Returns False (leaving the function untouched) when the loop shape is
    unsupported.  Raises :class:`PassError` for nonsensical factors.
    """
    if factor < 2:
        raise PassError(f"unroll factor must be >= 2, got {factor}")
    if len(loop.blocks) != 1 or loop.header not in loop.latches:
        return False
    trip = analyze_trip_count(func, loop)
    if trip is None:
        return False
    header = func.block(loop.header)
    body = header.body
    terminator = header.terminator
    if not isinstance(terminator, CondJump):
        return False

    preheader = ensure_preheader(func, loop)

    # 1. Preheader arithmetic: trips, remainder, and the shifted bound the
    #    main loop runs against.
    setup: List[Instr] = []
    trips = emit_trip_count(func, setup, trip)
    remainder = _emit_umod_const(func, setup, trips, factor)
    magnitude = abs(trip.step)
    adjust: Reg = remainder
    if magnitude != 1:
        adjust = func.new_reg("adj")
        if _is_power_of_two(magnitude):
            setup.append(
                BinOp(
                    "shl", adjust, remainder,
                    Const(magnitude.bit_length() - 1),
                )
            )
        else:
            setup.append(BinOp("mul", adjust, remainder, Const(magnitude)))
    main_bound = func.new_reg("mbound")
    direction = "sub" if trip.step > 0 else "add"
    setup.append(BinOp(direction, main_bound, trip.bound, adjust))
    preheader.instrs = (
        preheader.instrs[:-1] + setup + [preheader.instrs[-1]]
    )

    entry_label = func.new_label("unentry")
    guard_label = func.new_label("unguard")
    epiguard_label = func.new_label("epiguard")
    epilogue_label = func.new_label("epilogue")

    preheader.retarget(loop.header, entry_label)

    # Post-tested (do-while style) loops can be entered with the continue
    # condition already false, yet must run once; the trip-count
    # arithmetic above is meaningless in that case.  Route such entries
    # straight to the epilogue, which preserves run-at-least-once
    # semantics exactly.
    entry_check = BasicBlock(
        entry_label,
        [
            CondJump(
                trip.rel, trip.iv.reg, trip.bound,
                guard_label, epilogue_label,
            )
        ],
    )
    guard = BasicBlock(
        guard_label,
        [
            CondJump(
                trip.rel, trip.iv.reg, main_bound,
                loop.header, epiguard_label,
            )
        ],
    )
    epiguard = BasicBlock(
        epiguard_label,
        [
            CondJump(
                trip.rel, trip.iv.reg, trip.bound,
                epilogue_label, trip.exit_label,
            )
        ],
    )
    epilogue_instrs = [i.clone() for i in body]
    epilogue_instrs.append(
        CondJump(
            trip.rel, trip.iv.reg, trip.bound,
            epilogue_label, trip.exit_label,
        )
    )
    epilogue = BasicBlock(epilogue_label, epilogue_instrs)

    func.blocks.insert(func.block_index(loop.header), entry_check)
    func.blocks.insert(func.block_index(loop.header), guard)
    after = func.block_index(loop.header) + 1
    func.blocks.insert(after, epiguard)
    func.blocks.insert(after + 1, epilogue)

    # 2. The unrolled main body: k copies, iteration-locals renamed; the
    #    loop-closing test now runs against the shifted bound.
    exposed = _upward_exposed(body)
    unrolled: List[Instr] = [i for i in body]
    for _ in range(factor - 1):
        unrolled.extend(_clone_body_renamed(func, body, exposed))
    header.instrs = unrolled + [
        CondJump(
            trip.rel, trip.iv.reg, main_bound,
            loop.header, epiguard_label,
        )
    ]

    # 3. Compact the now-repeated IV increments into displacements.
    compact_ivs(func, header)
    return True


def estimate_unrolled_footprint(
    body_instr_count: int, factor: int, ctx: PassContext
) -> int:
    """Estimated I-cache bytes of the unrolled, *lowered* loop body.

    Machines without narrow memory operations (the Alpha) roughly triple a
    narrow-reference body during lowering, so the estimate is generous.
    """
    machine = ctx.machine
    expansion = 3 if machine.load_widths != (1, 2, 4) else 2
    return body_instr_count * factor * expansion * machine.instr_bytes


def choose_unroll_factor(
    func: Function, ctx: PassContext, loop: Loop
) -> UnrollDecision:
    """The paper's heuristic: coalescing-sized factor, shrunk to fit the
    instruction cache."""
    machine = ctx.machine
    header = func.block(loop.header)
    narrow_widths = [
        i.width
        for i in header.instrs
        if isinstance(i, (Load, Store)) and i.width < machine.word_bytes
        and not i.unaligned
    ]
    if narrow_widths:
        factor = machine.word_bytes // min(narrow_widths)
        reason = "coalescing width"
    else:
        factor = 4
        reason = "default"
    body_count = len(header.instrs)
    while factor >= 2 and (
        estimate_unrolled_footprint(body_count, factor, ctx)
        > machine.icache.size_bytes
    ):
        factor //= 2
        reason = "shrunk to fit the instruction cache"
    if factor < 2:
        return UnrollDecision(1, "body too large for the instruction cache")
    return UnrollDecision(factor, reason)


def unroll_function(
    func: Function,
    ctx: PassContext,
    factor: Optional[int] = None,
) -> bool:
    """Unroll every eligible single-block counted loop of ``func``."""
    changed = False
    for loop in find_loops(func):
        if len(loop.blocks) != 1:
            continue
        if not func.has_block(loop.header):
            continue
        decision = (
            UnrollDecision(factor, "caller override")
            if factor is not None
            else choose_unroll_factor(func, ctx, loop)
        )
        if decision.factor < 2:
            continue
        if unroll_counted_loop(func, ctx, loop, decision.factor):
            changed = True
    return changed
