"""Constant folding and algebraic simplification.

All arithmetic is evaluated with the target's word-size wraparound so the
fold is bit-identical to what the simulator would compute.
"""

from __future__ import annotations

from typing import Optional

from repro.ir.function import Function
from repro.ir.rtl import (
    BinOp,
    CondJump,
    Const,
    Jump,
    Mov,
    Operand,
    Reg,
    UnOp,
)
from repro.opt.pass_manager import PassContext


def _signed(value: int, bits: int) -> int:
    value &= (1 << bits) - 1
    if value & (1 << (bits - 1)):
        value -= 1 << bits
    return value


def eval_binop(op: str, a: int, b: int, bits: int) -> Optional[int]:
    """Evaluate a binary RTL operator on word-sized values; None on traps."""
    mask = (1 << bits) - 1
    a &= mask
    b &= mask
    if op == "add":
        return (a + b) & mask
    if op == "sub":
        return (a - b) & mask
    if op == "mul":
        return (a * b) & mask
    if op == "and":
        return a & b
    if op == "or":
        return a | b
    if op == "xor":
        return a ^ b
    if op == "shl":
        return (a << (b & (bits - 1))) & mask
    if op == "shrl":
        return a >> (b & (bits - 1))
    if op == "shra":
        return (_signed(a, bits) >> (b & (bits - 1))) & mask
    if op in ("div", "rem"):
        sa, sb = _signed(a, bits), _signed(b, bits)
        if sb == 0:
            return None
        quotient = abs(sa) // abs(sb)
        if (sa < 0) != (sb < 0):
            quotient = -quotient
        return (quotient if op == "div" else sa - quotient * sb) & mask
    if op in ("divu", "remu"):
        if b == 0:
            return None
        return (a // b if op == "divu" else a % b) & mask
    return None


def eval_unop(op: str, a: int, bits: int) -> Optional[int]:
    mask = (1 << bits) - 1
    a &= mask
    if op == "neg":
        return (-a) & mask
    if op == "not":
        return (~a) & mask
    if op[1:4] == "ext":
        width = int(op[4:])
        low = a & ((1 << (8 * width)) - 1)
        if op[0] == "s" and low & (1 << (8 * width - 1)):
            low -= 1 << (8 * width)
        return low & mask
    return None


def eval_relation(rel: str, a: int, b: int, bits: int) -> bool:
    mask = (1 << bits) - 1
    a &= mask
    b &= mask
    if rel == "eq":
        return a == b
    if rel == "ne":
        return a != b
    if rel in ("ltu", "leu", "gtu", "geu"):
        return {"ltu": a < b, "leu": a <= b,
                "gtu": a > b, "geu": a >= b}[rel]
    sa, sb = _signed(a, bits), _signed(b, bits)
    return {"lt": sa < sb, "le": sa <= sb, "gt": sa > sb, "ge": sa >= sb}[rel]


def _simplify_algebraic(instr: BinOp) -> Optional[object]:
    """Identity simplifications returning a replacement instruction."""
    a, b = instr.a, instr.b
    op = instr.op
    if isinstance(b, Const):
        value = b.value
        if op in ("add", "sub", "or", "xor", "shl", "shrl", "shra") and (
            value == 0
        ):
            return Mov(instr.dst, a)
        if op == "mul" and value == 1:
            return Mov(instr.dst, a)
        if op == "mul" and value == 0:
            return Mov(instr.dst, Const(0))
        if op in ("div", "divu") and value == 1:
            return Mov(instr.dst, a)
        if op == "and" and value == 0:
            return Mov(instr.dst, Const(0))
    if isinstance(a, Const):
        value = a.value
        if op in ("add", "or", "xor") and value == 0:
            return Mov(instr.dst, b)
        if op == "mul" and value == 1:
            return Mov(instr.dst, b)
        if op == "mul" and value == 0:
            return Mov(instr.dst, Const(0))
        if op == "and" and value == 0:
            return Mov(instr.dst, Const(0))
    if (
        op in ("sub", "xor")
        and isinstance(a, Reg)
        and isinstance(b, Reg)
        and a.index == b.index
    ):
        return Mov(instr.dst, Const(0))
    return None


def constant_fold(func: Function, ctx: PassContext) -> bool:
    """Fold constant expressions and resolve constant branches."""
    bits = ctx.machine.word_bits
    changed = False
    for block in func.blocks:
        new_instrs = []
        for instr in block.instrs:
            replacement = instr
            if isinstance(instr, BinOp):
                if isinstance(instr.a, Const) and isinstance(instr.b, Const):
                    value = eval_binop(
                        instr.op, instr.a.value, instr.b.value, bits
                    )
                    if value is not None:
                        replacement = Mov(instr.dst, Const(value))
                else:
                    simplified = _simplify_algebraic(instr)
                    if simplified is not None:
                        replacement = simplified
            elif isinstance(instr, UnOp) and isinstance(instr.a, Const):
                value = eval_unop(instr.op, instr.a.value, bits)
                if value is not None:
                    replacement = Mov(instr.dst, Const(value))
            elif isinstance(instr, CondJump):
                if isinstance(instr.a, Const) and isinstance(instr.b, Const):
                    taken = eval_relation(
                        instr.rel, instr.a.value, instr.b.value, bits
                    )
                    replacement = Jump(
                        instr.iftrue if taken else instr.iffalse
                    )
            elif isinstance(instr, Mov):
                if (
                    isinstance(instr.src, Reg)
                    and instr.src.index == instr.dst.index
                ):
                    changed = True
                    continue  # self-copy: drop
            if replacement is not instr:
                changed = True
            new_instrs.append(replacement)
        block.instrs = new_instrs
    return changed
