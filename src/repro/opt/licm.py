"""Loop-invariant code motion.

Hoists pure computations whose operands are loop-invariant into the loop
preheader.  Deliberately conservative: the hoisted instruction must be the
register's only definition in the loop, must execute on every iteration
(its block dominates every latch), and the register must not be live into
the loop header from outside.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.analysis.dominators import dominates, immediate_dominators
from repro.analysis.liveness import liveness
from repro.analysis.loops import ensure_preheader, find_loops
from repro.ir.function import Function
from repro.ir.rtl import (
    BinOp,
    Extract,
    FrameAddr,
    GlobalAddr,
    Instr,
    Mov,
    Reg,
    UnOp,
)
from repro.opt.pass_manager import PassContext

_PURE_KINDS = (BinOp, UnOp, Mov, FrameAddr, GlobalAddr, Extract)


def _loop_defs(func: Function, loop) -> Dict[int, int]:
    """Count of in-loop definitions per register index."""
    counts: Dict[int, int] = {}
    for label in loop.blocks:
        for instr in func.block(label).instrs:
            for reg in instr.defs():
                counts[reg.index] = counts.get(reg.index, 0) + 1
    return counts


def loop_invariant_code_motion(func: Function, ctx: PassContext) -> bool:
    changed = False
    for loop in find_loops(func):
        idom = immediate_dominators(func)
        def_counts = _loop_defs(func, loop)
        live = liveness(func)
        preheader = None

        moved = True
        while moved:
            moved = False
            for label in list(loop.blocks):
                if not all(
                    dominates(idom, label, latch) for latch in loop.latches
                ):
                    continue
                block = func.block(label)
                for index, instr in enumerate(block.body):
                    if not isinstance(instr, _PURE_KINDS):
                        continue
                    if isinstance(instr, BinOp) and instr.op in (
                        "div", "divu", "rem", "remu"
                    ):
                        continue
                    dst = instr.defs()[0]
                    if def_counts.get(dst.index, 0) != 1:
                        continue
                    if any(
                        def_counts.get(r.index, 0) > 0 for r in instr.uses()
                    ):
                        continue
                    if dst.index in live.live_in[loop.header]:
                        continue
                    # Hoist.
                    if preheader is None:
                        preheader = ensure_preheader(func, loop)
                        idom = immediate_dominators(func)
                    block.instrs.pop(index)
                    preheader.instrs.insert(-1, instr)
                    def_counts[dst.index] = 0
                    changed = moved = True
                    break
                if moved:
                    break
    return changed
