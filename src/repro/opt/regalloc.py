"""Linear-scan register allocation (Poletto–Sarkar).

The rest of the pipeline works on unlimited virtual registers, as vpo's
RTL does before its allocator runs; this pass binds them to the target's
finite register file so register pressure becomes observable (spill code
is real loads and stores that the cycle model charges).

Intervals are conservative: one ``[first, last]`` position range per
virtual register over the linearized function, widened to block
boundaries wherever the register is live-in/live-out, which is safe for
any block layout including loops.  When the active set overflows, the
interval with the furthest end spills to a frame slot; spilled registers
are rewritten load-before-use / store-after-def through reserved scratch
registers.

Opt-in (``PipelineConfig.regalloc=True``): the paper's kernels fit the
32-register machines comfortably, and keeping virtual registers by
default makes the transformation tests independent of allocation noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.liveness import liveness
from repro.errors import PassError
from repro.ir.function import Function
from repro.ir.rtl import Instr, Load, Reg, Store
from repro.opt.pass_manager import PassContext

# Registers reserved for spill-code temporaries (an instruction reads at
# most three registers).
SCRATCH_COUNT = 3


@dataclass
class Interval:
    reg_index: int
    start: int
    end: int

    def __repr__(self) -> str:
        return f"<Interval r{self.reg_index} [{self.start},{self.end}]>"


@dataclass
class AllocationResult:
    """What the allocator did — useful for tests and reports."""

    assignment: Dict[int, int]      # virtual index -> physical index
    spilled: Set[int]
    spill_loads: int = 0
    spill_stores: int = 0

    @property
    def registers_used(self) -> int:
        return len(set(self.assignment.values()))


def _build_intervals(func: Function) -> List[Interval]:
    info = liveness(func)
    first: Dict[int, int] = {}
    last: Dict[int, int] = {}

    def touch(reg_index: int, position: int) -> None:
        if reg_index not in first or position < first[reg_index]:
            first[reg_index] = position
        if reg_index not in last or position > last[reg_index]:
            last[reg_index] = position

    position = 0
    for param in func.params:
        touch(param.index, 0)
    for block in func.blocks:
        block_start = position
        for instr in block.instrs:
            for reg in instr.uses():
                touch(reg.index, position)
            for reg in instr.defs():
                touch(reg.index, position)
            position += 1
        block_end = position - 1 if position > block_start else block_start
        for reg_index in info.live_in[block.label]:
            touch(reg_index, block_start)
        for reg_index in info.live_out[block.label]:
            touch(reg_index, block_end)
    return sorted(
        (Interval(reg_index, first[reg_index], last[reg_index])
         for reg_index in first),
        key=lambda interval: (interval.start, interval.end),
    )


def _scan(
    intervals: List[Interval], available: int
) -> Tuple[Dict[int, int], Set[int]]:
    """Classic linear scan; returns (assignment, spilled set)."""
    free = list(range(available - 1, -1, -1))  # pop() yields r0 first
    active: List[Interval] = []
    assignment: Dict[int, int] = {}
    spilled: Set[int] = set()

    for interval in intervals:
        # Expire finished intervals.
        still_active = []
        for old in active:
            if old.end < interval.start:
                free.append(assignment[old.reg_index])
            else:
                still_active.append(old)
        active = still_active

        if free:
            assignment[interval.reg_index] = free.pop()
            active.append(interval)
            active.sort(key=lambda i: i.end)
            continue

        # Spill the interval that ends furthest away.
        victim = active[-1]
        if victim.end > interval.end:
            assignment[interval.reg_index] = assignment.pop(
                victim.reg_index
            )
            spilled.add(victim.reg_index)
            active[-1] = interval
            active.sort(key=lambda i: i.end)
        else:
            spilled.add(interval.reg_index)
    return assignment, spilled


def allocate_registers(
    func: Function,
    ctx: PassContext,
    num_registers: Optional[int] = None,
) -> AllocationResult:
    """Bind ``func``'s virtual registers to the machine's register file."""
    total = num_registers or ctx.machine.num_registers
    if total <= SCRATCH_COUNT + 1:
        raise PassError(
            f"cannot allocate with only {total} registers"
        )
    available = total - SCRATCH_COUNT
    scratch_base = available  # scratch regs live above the allocatable set

    intervals = _build_intervals(func)
    assignment, spilled = _scan(intervals, available)
    result = AllocationResult(assignment, spilled)

    # Frame slots for the spilled registers.
    slot_of: Dict[int, str] = {}
    word = ctx.machine.word_bytes
    for reg_index in sorted(spilled):
        slot_of[reg_index] = func.add_frame_slot(
            f"spill.r{reg_index}", word, word
        )

    def physical(reg: Reg) -> Reg:
        return Reg(assignment[reg.index], reg.name)

    for block in func.blocks:
        rewritten: List[Instr] = []
        for instr in block.instrs:
            prologue: List[Instr] = []
            epilogue: List[Instr] = []
            use_map: Dict[Reg, Reg] = {}
            scratch_next = 0
            for reg in instr.uses():
                if reg.index in spilled and reg not in use_map:
                    scratch = Reg(scratch_base + scratch_next,
                                  f"sp{reg.index}")
                    scratch_next += 1
                    prologue.extend(
                        _frame_load(func, slot_of[reg.index], scratch,
                                    word)
                    )
                    use_map[reg] = scratch
                    result.spill_loads += 1
                elif reg.index not in spilled:
                    use_map[reg] = physical(reg)
            if use_map:
                instr.substitute_uses(dict(use_map))
            def_map: Dict[Reg, Reg] = {}
            for reg in instr.defs():
                if reg.index in spilled:
                    scratch = Reg(scratch_base + SCRATCH_COUNT - 1,
                                  f"sp{reg.index}")
                    def_map[reg] = scratch
                    epilogue.extend(
                        _frame_store(
                            func, slot_of[reg.index], scratch,
                            Reg(scratch_base, "spaddr"), word,
                        )
                    )
                    result.spill_stores += 1
                else:
                    def_map[reg] = physical(reg)
            if def_map:
                instr.substitute_defs(def_map)
            rewritten.extend(prologue)
            rewritten.append(instr)
            rewritten.extend(epilogue)
        # Terminator must stay last: spill stores after a terminator are
        # impossible (terminators define nothing), but keep the invariant
        # explicit.
        block.instrs = rewritten

    # Parameters arrive in their virtual registers; rebind them.
    new_params: List[Reg] = []
    entry_prologue: List[Instr] = []
    spilled_param_count = sum(
        1 for p in func.params if p.index in spilled
    )
    if spilled_param_count >= SCRATCH_COUNT:
        raise PassError(
            f"{func.name}: too many spilled parameters "
            f"({spilled_param_count})"
        )
    next_incoming = 0
    for param in func.params:
        if param.index in spilled:
            # Land the incoming value in a scratch and store it; the
            # address goes through the last scratch register.
            incoming = Reg(scratch_base + next_incoming, param.name)
            next_incoming += 1
            entry_prologue.extend(
                _frame_store(
                    func, slot_of[param.index], incoming,
                    Reg(scratch_base + SCRATCH_COUNT - 1, "spaddr"),
                    word,
                )
            )
            new_params.append(incoming)
        else:
            new_params.append(physical(param))
    if entry_prologue:
        entry = func.entry
        entry.instrs = entry_prologue + entry.instrs
    func.params = new_params
    func.reserve_reg_index(total)
    return result


def _frame_load(func: Function, slot: str, dst: Reg, word: int) -> List[Instr]:
    """Reload a spilled value: materialize the slot address into ``dst``
    then load through it — two instructions, no extra scratch needed."""
    from repro.ir.rtl import FrameAddr

    return [
        FrameAddr(dst, slot),
        Load(dst, dst, 0, word, signed=False),
    ]


def _frame_store(
    func: Function, slot: str, src: Reg, addr_scratch: Reg, word: int
) -> List[Instr]:
    """Store a spilled definition back to its frame slot."""
    from repro.ir.rtl import FrameAddr

    return [
        FrameAddr(addr_scratch, slot),
        Store(addr_scratch, 0, src, word),
    ]
