"""Global (cross-block) constant propagation.

Block-local propagation misses the common pattern where a counter is
zeroed in the entry block and consumed in a loop preheader; this pass
closes that gap: a use is replaced when *every* definition reaching it
moves the same constant.

The engine is a sparse worklist over the cached def-use chains
(:mod:`repro.analysis.defuse`, via the context's
:class:`repro.analysis.manager.AnalysisManager`): constant-moving
definitions seed the worklist, each one visits only its recorded uses,
and a copy whose source collapses to a constant re-enters the worklist —
so a whole chain ``a = 3; b = a; c = b`` retires in one invocation
instead of one fixpoint round per link.  The old implementation re-solved
reaching definitions and re-walked a block prefix per use
(``O(instructions²)``); this one touches each use a constant number of
times.

When a merge of *conflicting* constants blocks propagation the pass
reports a note through ``ctx.sink`` (when the sanitizer is listening), so
a differential failure attributed to this pass comes with the merge
points that decided what it did and did not rewrite.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional, Set

from repro.analysis.defuse import DefUseChains, def_use_chains
from repro.ir.function import Function
from repro.ir.rtl import Const, Load, Mov, Reg, Store
from repro.opt.pass_manager import PassContext


def global_const_prop(func: Function, ctx: PassContext) -> bool:
    analyses = getattr(ctx, "analyses", None)
    chains: DefUseChains = (
        analyses.defuse(func) if analyses is not None
        else def_use_chains(func)
    )

    # Seed: every definition site that moves a constant.
    const_of: Dict[tuple, int] = {}
    worklist = deque()
    for sites in chains.reaching.defs_of.values():
        for site in sites:
            label, index = site
            instr = func.block(label).instrs[index]
            if isinstance(instr, Mov) and isinstance(instr.src, Const):
                const_of[site] = instr.src.value
                worklist.append(site)

    changed = False
    rewritten: Set[tuple] = set()
    reported: Set[tuple] = set()
    while worklist:
        site = worklist.popleft()
        for use in chains.uses_of.get(site, ()):
            if use in rewritten:
                continue
            label, index, reg_index = use
            sites = chains.defs_for[use]
            if not sites:
                continue  # undefined (a parameter): leave alone
            values = []
            for def_site in sites:
                value = const_of.get(def_site)
                if value is None and def_site not in const_of:
                    break  # a non-constant definition reaches too
                values.append(value)
            else:
                if len(set(values)) != 1:
                    _report_conflict(
                        ctx, func, use, sorted(set(values)), reported
                    )
                    continue
                instr = func.block(label).instrs[index]
                if (
                    isinstance(instr, (Load, Store))
                    and instr.base.index == reg_index
                ):
                    continue  # an address must stay in a register
                instr.substitute_uses(
                    {Reg(reg_index): Const(values[0])}
                )
                rewritten.add(use)
                changed = True
                # A copy that just collapsed to `dst = const` is a new
                # constant source: revisit its uses.
                if isinstance(instr, Mov) and isinstance(instr.src, Const):
                    own_site = (label, index)
                    if own_site not in const_of:
                        const_of[own_site] = instr.src.value
                        worklist.append(own_site)
    return changed


#: Rewrites operands in place: definition sites, the CFG, and therefore
#: the reaching-definition solution all survive unchanged.  (The def-use
#: chains do not — this pass consumes the uses it rewrites.)
global_const_prop.preserves = frozenset({"reaching", "dominators"})


def _report_conflict(
    ctx: PassContext,
    func: Function,
    use: tuple,
    values,
    reported: Set[tuple],
) -> None:
    """Note a constant merge conflict through the sanitizer sink."""
    if ctx.sink is None or use in reported:
        return
    reported.add(use)
    from repro.sanitize.diagnostics import Location

    label, index, reg_index = use
    ctx.sink.note(
        "global-const-prop",
        f"r{reg_index} merges conflicting constants "
        f"({', '.join(str(v) for v in values)}); not propagated",
        location=Location(func.name, label, index),
        provenance="global_const_prop",
        hint="the register is a loop-carried or path-dependent value; "
             "propagation correctly stops at the merge",
    )
