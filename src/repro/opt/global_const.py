"""Global (cross-block) constant propagation.

Block-local propagation misses the common pattern where a counter is
zeroed in the entry block and consumed in a loop preheader; this pass uses
reaching definitions to close that gap: a use is replaced when *every*
definition reaching it moves the same constant.

Deliberately simple (no conditional constant propagation); combined with
the rest of the cleanup bundle run to a fixpoint it retires the dead
original counters left behind by linear function test replacement.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.analysis.reaching import reaching_definitions
from repro.ir.function import Function
from repro.ir.rtl import Const, Mov, Reg
from repro.opt.pass_manager import PassContext


def global_const_prop(func: Function, ctx: PassContext) -> bool:
    reaching = reaching_definitions(func)
    changed = False
    for block in func.blocks:
        if block.label not in reaching.reach_in:
            continue  # unreachable
        for index, instr in enumerate(block.instrs):
            mapping: Dict[Reg, Const] = {}
            for reg in instr.uses():
                value = _constant_at(
                    reaching, block.label, index, reg.index
                )
                if value is not None:
                    mapping[reg] = Const(value)
            if mapping:
                before = repr(instr)
                instr.substitute_uses(mapping)
                if repr(instr) != before:
                    changed = True
    return changed


def _constant_at(
    reaching, label: str, index: int, reg_index: int
) -> Optional[int]:
    sites = reaching.reaching_at(label, index, reg_index)
    if not sites:
        return None  # undefined (a parameter): leave alone
    value: Optional[int] = None
    for site_label, site_index in sites:
        instr = reaching.func.block(site_label).instrs[site_index]
        if not isinstance(instr, Mov) or not isinstance(instr.src, Const):
            return None
        if value is None:
            value = instr.src.value
        elif value != instr.src.value:
            return None
    return value
