"""Strength reduction of affine induction expressions + linear function
test replacement (LFTR).

Array addressing reaching this pass looks like::

    t1 = sub  y, 1            # loop-invariant pieces
    t2 = mul  t1, width
    t3 = add  x, 1            # x is the induction variable
    t4 = add  t2, t3
    a  = add  src, t4
    r  = load.1u [a]

The pass resolves each address register into a **linear form**
``c + Σ coef_i · inv_i + m · iv`` by walking single-definition chains
inside the loop body, then rewrites it into a pointer induction variable::

    preheader:  p = c + Σ coef_i·inv_i + m·iv     (iv holds its start here)
    loop:       ... M[p + d] ...
                p = p + m·step                    (after each iv increment)

LFTR afterwards replaces the loop-closing test ``iv REL bound`` with the
pointer test ``p REL' (p + m·(bound − iv))`` — computed in the preheader —
after which dead-code elimination retires the original counter.  ``REL'``
is the unsigned image of ``REL``, direction-flipped when ``m < 0`` (a
backwards-walking pointer, e.g. the mirror benchmark's ``dst[w-1-x]``).

The result is the canonical pointer-increment loop of the paper's
Figure 1b, the shape the unroller and the coalescer consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.induction import BasicIV, find_basic_ivs
from repro.analysis.loops import Loop, ensure_preheader, find_loops
from repro.analysis.tripcount import analyze_trip_count
from repro.ir.function import BasicBlock, Function
from repro.ir.rtl import BinOp, CondJump, Const, Instr, Load, Mov, Reg, Store
from repro.opt.pass_manager import PassContext

_TO_UNSIGNED = {
    "lt": "ltu", "le": "leu", "gt": "gtu", "ge": "geu",
    "eq": "eq", "ne": "ne",
    "ltu": "ltu", "leu": "leu", "gtu": "gtu", "geu": "geu",
}
_FLIP = {
    "ltu": "gtu", "leu": "geu", "gtu": "ltu", "geu": "leu",
    "eq": "eq", "ne": "ne",
}


@dataclass
class LinearForm:
    """``constant + Σ coefs[reg_index]·reg + iv_coef·iv``."""

    constant: int = 0
    coefs: Dict[int, int] = field(default_factory=dict)  # invariant regs
    iv_index: Optional[int] = None
    iv_coef: int = 0

    def add(self, other: "LinearForm", sign: int) -> Optional["LinearForm"]:
        result = LinearForm(self.constant + sign * other.constant,
                            dict(self.coefs), self.iv_index, self.iv_coef)
        for reg_index, coef in other.coefs.items():
            result.coefs[reg_index] = (
                result.coefs.get(reg_index, 0) + sign * coef
            )
        if other.iv_index is not None:
            if result.iv_index is None:
                result.iv_index = other.iv_index
                result.iv_coef = sign * other.iv_coef
            elif result.iv_index == other.iv_index:
                result.iv_coef += sign * other.iv_coef
            else:
                return None  # two different IVs: out of scope
        result.coefs = {r: c for r, c in result.coefs.items() if c}
        if result.iv_coef == 0:
            result.iv_index = None
        return result

    def scale(self, factor: int) -> "LinearForm":
        return LinearForm(
            self.constant * factor,
            {r: c * factor for r, c in self.coefs.items() if c * factor},
            self.iv_index if self.iv_coef * factor else None,
            self.iv_coef * factor,
        )

    @property
    def is_constant(self) -> bool:
        return not self.coefs and self.iv_index is None


class _Resolver:
    """Resolve registers to linear forms inside one loop block."""

    def __init__(
        self,
        func: Function,
        block: BasicBlock,
        ivs: Dict[int, BasicIV],
        def_counts: Dict[int, int],
    ):
        self.func = func
        self.block = block
        self.ivs = ivs
        self.def_counts = def_counts
        # Single in-loop definition sites within this block.
        self.def_site: Dict[int, int] = {}
        for index, instr in enumerate(block.instrs):
            for reg in instr.defs():
                if def_counts.get(reg.index, 0) == 1:
                    self.def_site[reg.index] = index
        self.cache: Dict[int, Optional[LinearForm]] = {}

    def resolve_reg(self, reg_index: int, depth: int = 0) -> Optional[LinearForm]:
        if depth > 16:
            return None
        if reg_index in self.cache:
            return self.cache[reg_index]
        self.cache[reg_index] = None  # cycle guard
        result = self._resolve_uncached(reg_index, depth)
        self.cache[reg_index] = result
        return result

    def _resolve_uncached(
        self, reg_index: int, depth: int
    ) -> Optional[LinearForm]:
        if reg_index in self.ivs:
            return LinearForm(0, {}, reg_index, 1)
        if self.def_counts.get(reg_index, 0) == 0:
            return LinearForm(0, {reg_index: 1})  # loop-invariant
        site = self.def_site.get(reg_index)
        if site is None:
            return None
        instr = self.block.instrs[site]
        if isinstance(instr, Mov):
            return self.resolve_operand(instr.src, depth + 1)
        if not isinstance(instr, BinOp):
            return None
        a = self.resolve_operand(instr.a, depth + 1)
        b = self.resolve_operand(instr.b, depth + 1)
        if a is None or b is None:
            return None
        if instr.op == "add":
            return a.add(b, 1)
        if instr.op == "sub":
            return a.add(b, -1)
        if instr.op == "mul":
            if b.is_constant:
                return a.scale(b.constant)
            if a.is_constant:
                return b.scale(a.constant)
            return None
        if instr.op == "shl" and b.is_constant and 0 <= b.constant < 32:
            return a.scale(1 << b.constant)
        return None

    def resolve_operand(self, operand, depth: int) -> Optional[LinearForm]:
        if isinstance(operand, Const):
            return LinearForm(operand.value)
        return self.resolve_reg(operand.index, depth)


@dataclass
class _Candidate:
    loop: Loop
    iv: BasicIV
    block_label: str
    addr_index: int
    addr_reg: Reg
    form: LinearForm
    use_indices: List[int]

    def sharing_key(self) -> Tuple:
        """Two candidates with equal keys differ only by a constant, so
        they can share one pointer (``src[x-1]``/``src[x]``/``src[x+1]``
        all ride the same register, distinguished by displacement)."""
        return (
            self.form.iv_index,
            self.form.iv_coef,
            tuple(sorted(self.form.coefs.items())),
        )

    def only_memory_base_uses(self, block: BasicBlock) -> bool:
        """Whether every use is as a Load/Store base register (required
        for folding a constant delta into displacements)."""
        for index in self.use_indices:
            instr = block.instrs[index]
            if not isinstance(instr, (Load, Store)):
                return False
            if instr.base.index != self.addr_reg.index:
                return False
            if (
                isinstance(instr, Store)
                and isinstance(instr.src, Reg)
                and instr.src.index == self.addr_reg.index
            ):
                return False
        return True


def _loop_def_counts(func: Function, loop: Loop) -> Dict[int, int]:
    counts: Dict[int, int] = {}
    for label in loop.blocks:
        for instr in func.block(label).instrs:
            for reg in instr.defs():
                counts[reg.index] = counts.get(reg.index, 0) + 1
    return counts


def _find_candidate(
    func: Function, loop: Loop, ivs: Dict[int, BasicIV]
) -> Optional[_Candidate]:
    """Find an address register with an affine form worth reducing."""
    def_counts = _loop_def_counts(func, loop)
    for label in loop.blocks:
        block = func.block(label)
        resolver = _Resolver(func, block, ivs, def_counts)
        # Candidate address registers: bases of memory references whose
        # defining instruction lives in this block.
        seen: Set[int] = set()
        for instr in block.instrs:
            if not isinstance(instr, (Load, Store)):
                continue
            base = instr.base
            if base.index in seen or base.index in ivs:
                continue
            seen.add(base.index)
            if def_counts.get(base.index, 0) != 1:
                continue
            site = resolver.def_site.get(base.index)
            if site is None:
                continue
            form = resolver.resolve_reg(base.index)
            if form is None or form.iv_index is None:
                continue
            candidate = _build_candidate(
                func, loop, ivs[form.iv_index], label, site,
                block.instrs[site].defs()[0], form,
            )
            if candidate is not None:
                return candidate
    return None


def _build_candidate(
    func: Function,
    loop: Loop,
    iv: BasicIV,
    label: str,
    addr_index: int,
    addr_reg: Reg,
    form: LinearForm,
) -> Optional[_Candidate]:
    """Validate the rewrite window for an address computation."""
    block = func.block(label)
    increment_indices = {
        index for (site_label, index) in iv.sites if site_label == label
    }
    window_end = len(block.instrs)
    for index in range(addr_index + 1, len(block.instrs)):
        if index in increment_indices:
            window_end = index
            break
        if any(
            r.index == addr_reg.index for r in block.instrs[index].defs()
        ):
            window_end = index
            break

    use_indices: List[int] = []
    for index in range(addr_index + 1, window_end):
        if any(
            r.index == addr_reg.index for r in block.instrs[index].uses()
        ):
            use_indices.append(index)

    # Any use of addr_reg outside the window makes the rewrite unsafe.
    for other_label in loop.blocks:
        other_block = func.block(other_label)
        for index, instr in enumerate(other_block.instrs):
            if not any(r.index == addr_reg.index for r in instr.uses()):
                continue
            if other_label == label and index in use_indices:
                continue
            return None
    if not use_indices:
        return None
    return _Candidate(loop, iv, label, addr_index, addr_reg, form,
                      use_indices)


def _emit_linear(
    func: Function, out: List[Instr], form: LinearForm, iv_value
) -> Reg:
    """Emit instructions computing ``form`` with ``iv`` = ``iv_value``."""
    terms: List = []
    for reg_index, coef in sorted(form.coefs.items()):
        terms.append((Reg(reg_index), coef))
    if form.iv_index is not None:
        terms.append((iv_value, form.iv_coef))

    acc: Optional[Reg] = None
    for value, coef in terms:
        scaled = value
        magnitude = abs(coef)
        if magnitude != 1:
            scaled = func.new_reg("t")
            if magnitude & (magnitude - 1) == 0:
                out.append(
                    BinOp("shl", scaled, value,
                          Const(magnitude.bit_length() - 1))
                )
            else:
                out.append(BinOp("mul", scaled, value, Const(magnitude)))
        if acc is None:
            if coef < 0:
                negated = func.new_reg("t")
                from repro.ir.rtl import UnOp

                out.append(UnOp("neg", negated, scaled))
                acc = negated
            else:
                acc = scaled if isinstance(scaled, Reg) else None
                if acc is None:
                    acc = func.new_reg("t")
                    out.append(Mov(acc, scaled))
        else:
            combined = func.new_reg("t")
            out.append(
                BinOp("sub" if coef < 0 else "add", combined, acc, scaled)
            )
            acc = combined
    if acc is None:
        acc = func.new_reg("t")
        out.append(Mov(acc, Const(form.constant)))
        return acc
    if form.constant:
        combined = func.new_reg("t")
        out.append(BinOp("add", combined, acc, Const(form.constant)))
        acc = combined
    return acc


def _apply_candidate(
    func: Function, candidate: _Candidate
) -> Tuple[Reg, int, int]:
    """Perform the rewrite; returns (pointer, iv_coef, iv index)."""
    loop = candidate.loop
    iv = candidate.iv
    preheader = ensure_preheader(func, loop)

    init: List[Instr] = []
    pointer = _emit_linear(func, init, candidate.form, iv.reg)
    preheader.instrs = preheader.instrs[:-1] + init + [preheader.instrs[-1]]

    block = func.block(candidate.block_label)
    mapping = {candidate.addr_reg: pointer}
    for index in candidate.use_indices:
        block.instrs[index].substitute_uses(mapping)

    # Advance the pointer wherever the IV advances.
    sites_by_block: Dict[str, List[int]] = {}
    for site_label, index in iv.sites:
        sites_by_block.setdefault(site_label, []).append(index)
    for site_label, indices in sites_by_block.items():
        site_block = func.block(site_label)
        for index in sorted(indices, reverse=True):
            increment = site_block.instrs[index]
            step = _increment_amount(increment, iv.reg.index)
            site_block.instrs.insert(
                index + 1,
                BinOp("add", pointer, pointer,
                      Const(step * candidate.form.iv_coef)),
            )
    return pointer, candidate.form.iv_coef, iv.reg.index


def _increment_amount(instr: Instr, reg_index: int) -> int:
    assert isinstance(instr, BinOp)
    if instr.op == "add":
        const = instr.b if isinstance(instr.b, Const) else instr.a
        return const.value
    return -instr.b.value  # sub


def _apply_lftr(
    func: Function,
    header: str,
    derived: Tuple[Reg, int, int],
) -> bool:
    """Replace the loop-closing IV test with the pointer test."""
    pointer, iv_coef, iv_index = derived
    loops = [l for l in find_loops(func) if l.header == header]
    if not loops:
        return False
    loop = loops[0]
    ivs = find_basic_ivs(func, loop)
    if iv_index not in ivs or pointer.index not in ivs:
        return False
    trip = analyze_trip_count(func, loop, ivs)
    if trip is None or trip.iv.reg.index != iv_index:
        return False
    if iv_coef == 0:
        return False

    # pend = p + iv_coef * (bound - iv), computed in the preheader where
    # both p and iv hold their start values.
    preheader = ensure_preheader(func, loop)
    init: List[Instr] = []
    distance = func.new_reg("t")
    init.append(BinOp("sub", distance, trip.bound, trip.iv.reg))
    scaled: Reg = distance
    magnitude = abs(iv_coef)
    if magnitude != 1:
        scaled = func.new_reg("t")
        if magnitude & (magnitude - 1) == 0:
            init.append(
                BinOp("shl", scaled, distance,
                      Const(magnitude.bit_length() - 1))
            )
        else:
            init.append(BinOp("mul", scaled, distance, Const(magnitude)))
    new_bound = func.new_reg("pend")
    init.append(
        BinOp("sub" if iv_coef < 0 else "add", new_bound, pointer, scaled)
    )
    preheader.instrs = preheader.instrs[:-1] + init + [preheader.instrs[-1]]

    rel = _TO_UNSIGNED[trip.rel]
    if iv_coef < 0:
        rel = _FLIP[rel]
    latch = func.block(trip.latch_label)
    latch.instrs[-1] = CondJump(
        rel, pointer, new_bound, loop.header, trip.exit_label
    )
    return True


def _reuse_pointer(
    func: Function,
    candidate: _Candidate,
    pointer: Reg,
    pointer_constant: int,
) -> None:
    """Rewrite a candidate onto an existing shared pointer.

    The delta between the two linear forms folds into the memory
    displacements (``src[x+1]`` becomes ``[p + 2]`` when ``p`` tracks
    ``src[x-1]``), so no new register or increment is needed.
    """
    delta = candidate.form.constant - pointer_constant
    block = func.block(candidate.block_label)
    for index in candidate.use_indices:
        instr = block.instrs[index]
        assert isinstance(instr, (Load, Store))
        instr.base = pointer
        instr.disp += delta


def strength_reduce(func: Function, ctx: PassContext) -> bool:
    """Run strength reduction + LFTR over every loop of ``func``."""
    changed = False
    derived_by_header: Dict[str, Tuple[Reg, int, int]] = {}
    # (header, sharing_key) -> (pointer reg, its form's constant)
    shared: Dict[Tuple, Tuple[Reg, int]] = {}

    for _ in range(100):
        applied = False
        for loop in find_loops(func):
            ivs = find_basic_ivs(func, loop)
            if not ivs:
                continue
            candidate = _find_candidate(func, loop, ivs)
            if candidate is None:
                continue
            share_key = (loop.header,) + candidate.sharing_key()
            block = func.block(candidate.block_label)
            memory_only = candidate.only_memory_base_uses(block)
            if share_key in shared and memory_only:
                pointer, constant = shared[share_key]
                _reuse_pointer(func, candidate, pointer, constant)
            else:
                derived = _apply_candidate(func, candidate)
                derived_by_header.setdefault(loop.header, derived)
                if memory_only:
                    shared[share_key] = (
                        derived[0], candidate.form.constant
                    )
            applied = changed = True
            break
        if not applied:
            break

    for header, derived in derived_by_header.items():
        if func.has_block(header):
            if _apply_lftr(func, header, derived):
                changed = True
    return changed
