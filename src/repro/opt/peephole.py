"""Block-local peephole simplifications with def-chain awareness.

Three rules, all variations of "a value already known to fit its field
needs no re-masking":

* ``and x, m`` where ``x`` was produced by ``zextN`` and ``m`` covers the
  low ``N`` bytes — the AND is a no-op.  (This is what makes the Motorola
  88100's expanded field-insert sequences as tight as its real ``mak``
  idiom: the inserted value usually comes straight out of a ``zext``.)
* ``store.N [..], x`` where ``x`` was produced by ``(s|z)extM`` of some
  ``y`` with ``M >= N`` — the store truncates anyway, so store ``y``.
* ``ins.N ..., src=x, ...`` where ``x`` was produced by ``zextM`` of ``y``
  with ``M <= N`` — the insert masks its source to the field width, so
  feed it ``y`` directly (the extension often dies afterwards).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.ir.function import Function
from repro.ir.rtl import BinOp, Const, Insert, Instr, Mov, Reg, Store, UnOp
from repro.opt.pass_manager import PassContext


def _ext_info(instr: Optional[Instr]) -> Optional[Tuple[str, int, Reg]]:
    """(kind, bytes, operand) when ``instr`` is a sign/zero extension of a
    register."""
    if isinstance(instr, UnOp) and instr.op[1:4] == "ext":
        if isinstance(instr.a, Reg):
            return instr.op[0], int(instr.op[4:]), instr.a
    return None


def peephole(func: Function, ctx: PassContext) -> bool:
    changed = False
    for block in func.blocks:
        last_def: Dict[int, Instr] = {}
        for position, instr in enumerate(block.instrs):
            replacement = instr

            if (
                isinstance(instr, BinOp)
                and instr.op == "and"
                and isinstance(instr.a, Reg)
                and isinstance(instr.b, Const)
            ):
                info = _ext_info(last_def.get(instr.a.index))
                if info is not None:
                    kind, width, _source = info
                    mask = (1 << (8 * width)) - 1
                    # x's high bits are zero, so the AND is an identity
                    # exactly when the mask keeps all of x's low bits.
                    if kind == "z" and (instr.b.value & mask) == mask:
                        replacement = Mov(instr.dst, instr.a)

            elif isinstance(instr, Store) and isinstance(instr.src, Reg):
                info = _ext_info(last_def.get(instr.src.index))
                if info is not None:
                    _kind, width, source = info
                    if width >= instr.width and _still_valid(
                        block.instrs, position, source,
                        last_def.get(instr.src.index),
                    ):
                        instr.src = source
                        changed = True

            elif isinstance(instr, Insert) and isinstance(instr.src, Reg):
                info = _ext_info(last_def.get(instr.src.index))
                if info is not None:
                    kind, width, source = info
                    if kind == "z" and width <= instr.width and _still_valid(
                        block.instrs, position, source,
                        last_def.get(instr.src.index),
                    ):
                        instr.src = source
                        changed = True

            if replacement is not instr:
                block.instrs[position] = replacement
                changed = True
                instr = replacement
            for reg in instr.defs():
                last_def[reg.index] = instr
        # Refresh def map correctness: conservative single pass is fine
        # because rules only consult the most recent def.
    return changed


def _still_valid(
    instrs, use_position: int, source: Reg, ext_instr: Optional[Instr]
) -> bool:
    """``source`` must not be redefined between the extension and the use."""
    if ext_instr is None:
        return False
    try:
        ext_position = instrs.index(ext_instr)
    except ValueError:
        return False
    for middle in instrs[ext_position + 1:use_position]:
        if any(r.index == source.index for r in middle.defs()):
            return False
    return True


#: Pure instruction rewrites: the CFG (and so the dominator tree)
#: survives untouched.
peephole.preserves = frozenset({"dominators"})
