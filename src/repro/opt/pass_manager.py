"""Pass management.

A pass is a callable ``pass_fn(func, ctx) -> bool`` returning whether it
changed anything.  The manager runs passes in order, optionally to a
fixpoint, verifying the IR after each pass so a transformation bug is
caught at its source.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.ir.function import Function, Module
from repro.ir.verifier import verify_function
from repro.machine.machine import MachineDescription

PassFn = Callable[[Function, "PassContext"], bool]


@dataclass
class PassContext:
    """Target information every pass may need."""

    machine: MachineDescription
    verify: bool = True

    @property
    def word_bytes(self) -> int:
        return self.machine.word_bytes

    @property
    def word_mask(self) -> int:
        return self.machine.word_mask


class PassManager:
    """Runs a pipeline of function passes over a module."""

    def __init__(self, ctx: PassContext):
        self.ctx = ctx
        self.passes: List[Tuple[str, PassFn]] = []

    def add(self, name: str, pass_fn: PassFn) -> "PassManager":
        self.passes.append((name, pass_fn))
        return self

    def run(self, module: Module) -> None:
        for func in module:
            self.run_on_function(func)

    def run_on_function(self, func: Function) -> None:
        for name, pass_fn in self.passes:
            pass_fn(func, self.ctx)
            if self.ctx.verify:
                verify_function(func)


def run_to_fixpoint(
    func: Function,
    ctx: PassContext,
    passes: List[PassFn],
    max_rounds: int = 20,
) -> bool:
    """Iterate ``passes`` until none of them changes the function."""
    ever_changed = False
    for _ in range(max_rounds):
        changed = False
        for pass_fn in passes:
            if pass_fn(func, ctx):
                changed = True
                if ctx.verify:
                    verify_function(func)
        ever_changed = ever_changed or changed
        if not changed:
            return ever_changed
    return ever_changed


def cleanup(func: Function, ctx: PassContext) -> bool:
    """The standard scalar cleanup bundle, run to a fixpoint."""
    from repro.opt.constant_fold import constant_fold
    from repro.opt.copy_prop import copy_propagate
    from repro.opt.cse import local_cse
    from repro.opt.dce import dead_code_elimination
    from repro.opt.global_const import global_const_prop
    from repro.opt.peephole import peephole
    from repro.opt.simplify_cfg import simplify_cfg

    return run_to_fixpoint(
        func,
        ctx,
        [
            simplify_cfg,
            constant_fold,
            copy_propagate,
            global_const_prop,
            local_cse,
            peephole,
            dead_code_elimination,
        ],
    )


# Names usable with Pipeline configuration.
STANDARD_PASSES = (
    "simplify_cfg",
    "constant_fold",
    "copy_propagate",
    "local_cse",
    "dead_code_elimination",
)
