"""Pass management.

A pass is a callable ``pass_fn(func, ctx) -> bool`` returning whether it
changed anything.  The manager runs passes in order, optionally to a
fixpoint, verifying the IR after each pass so a transformation bug is
caught at its source.

The context also carries the sanitizer hooks: a ``sink`` collects
diagnostics from anything that wants to report instead of raise, and
``differential=True`` makes the manager snapshot each function before
every pass and compare observable behaviour afterwards (see
:mod:`repro.sanitize.differential`), so a miscompile is pinned to the
pass that introduced it.  ``stats`` records per-pass changed/unchanged
and wall-clock timing for every invocation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis.manager import AnalysisManager, invalidate_after
from repro.ir.function import Function, Module
from repro.ir.verifier import verify_function
from repro.machine.machine import MachineDescription

PassFn = Callable[[Function, "PassContext"], bool]


@dataclass
class PassContext:
    """Target information and sanitizer hooks every pass may need."""

    machine: MachineDescription
    verify: bool = True
    # Sanitizer integration: diagnostics land in the sink; differential
    # mode re-executes each function before/after every pass.
    sink: Optional[object] = None
    differential: bool = False
    # Fault isolation: what to do when a pass raises/corrupts/miscompiles
    # ('raise' | 'skip' | 'fallback', see repro.resilience.transaction),
    # and an optional repro.resilience.FaultPlan to chaos-test with.
    on_pass_failure: str = "raise"
    faults: Optional[object] = None
    # pass name -> {"runs": int, "changed": int, "seconds": float}
    stats: Dict[str, Dict[str, float]] = field(default_factory=dict)
    # Cached dataflow (repro.analysis.manager).  A pass that changes a
    # function must let the manager know; declaring a ``preserves`` set
    # on the pass callable keeps the named analyses alive across it.
    analyses: AnalysisManager = field(default_factory=AnalysisManager)

    @property
    def word_bytes(self) -> int:
        return self.machine.word_bytes

    @property
    def word_mask(self) -> int:
        return self.machine.word_mask

    def record_pass(self, name: str, changed: bool, seconds: float) -> None:
        entry = self.stats.setdefault(
            name, {"runs": 0, "changed": 0, "seconds": 0.0}
        )
        entry["runs"] += 1
        entry["changed"] += 1 if changed else 0
        entry["seconds"] += seconds


class PassManager:
    """Runs a pipeline of function passes over a module."""

    def __init__(self, ctx: PassContext):
        self.ctx = ctx
        self.passes: List[Tuple[str, PassFn]] = []

    def add(self, name: str, pass_fn: PassFn) -> "PassManager":
        self.passes.append((name, pass_fn))
        return self

    def _sanitizer(self, module: Optional[Module]):
        if not (self.ctx.differential and module is not None
                and self.ctx.sink is not None):
            return None
        from repro.sanitize.differential import DifferentialSanitizer

        return DifferentialSanitizer(
            module, self.ctx.machine, self.ctx.sink
        )

    def run(self, module: Module) -> None:
        sanitizer = self._sanitizer(module)
        for func in module:
            self.run_on_function(func, module, _sanitizer=sanitizer)

    def run_on_function(
        self,
        func: Function,
        module: Optional[Module] = None,
        _sanitizer=None,
    ) -> None:
        sanitizer = _sanitizer
        if sanitizer is None:
            sanitizer = self._sanitizer(module)
        guard = self._guard(func, module, sanitizer)
        if guard is not None:
            for name, pass_fn in self.passes:
                outcome = guard.stage(
                    self.ctx, name,
                    lambda pass_fn=pass_fn: pass_fn(func, self.ctx),
                    func=func, verify_after=self.ctx.verify,
                )
                invalidate_after(
                    pass_fn, self.ctx.analyses, func, outcome
                )
            return
        for name, pass_fn in self.passes:
            snapshot = sanitizer.snapshot(func) if sanitizer else None
            started = time.perf_counter()
            changed = bool(pass_fn(func, self.ctx))
            self.ctx.record_pass(
                name, changed, time.perf_counter() - started
            )
            invalidate_after(pass_fn, self.ctx.analyses, func, changed)
            if self.ctx.verify:
                verify_function(func)
            if sanitizer is not None and changed:
                sanitizer.compare(snapshot, func, name)

    def _guard(self, func: Function, module: Optional[Module], sanitizer):
        """A PassGuard when fault isolation is on; ``None`` keeps the
        legacy fast path (and its exact behaviour) otherwise."""
        if self.ctx.on_pass_failure == "raise" and not self.ctx.faults:
            return None
        from repro.resilience.transaction import PassGuard

        scope = module
        if scope is None:
            # Snapshot scope for standalone runs: a throwaway module
            # wrapping just this function.
            scope = Module(name=f"<pm:{func.name}>")
            scope.functions[func.name] = func
        return PassGuard(
            scope,
            self.ctx.machine,
            policy=self.ctx.on_pass_failure,
            faults=self.ctx.faults,
            sink=self.ctx.sink,
            sanitizer=sanitizer,
            verify=self.ctx.verify,
        )


def run_to_fixpoint(
    func: Function,
    ctx: PassContext,
    passes: List[PassFn],
    max_rounds: int = 20,
) -> bool:
    """Iterate ``passes`` until none of them changes the function."""
    ever_changed = False
    for _ in range(max_rounds):
        changed = False
        for pass_fn in passes:
            name = getattr(pass_fn, "__name__", str(pass_fn))
            started = time.perf_counter()
            pass_changed = bool(pass_fn(func, ctx))
            ctx.record_pass(
                name, pass_changed, time.perf_counter() - started
            )
            invalidate_after(pass_fn, ctx.analyses, func, pass_changed)
            if pass_changed:
                changed = True
                if ctx.verify:
                    verify_function(func)
        ever_changed = ever_changed or changed
        if not changed:
            return ever_changed
    return ever_changed


def cleanup(func: Function, ctx: PassContext) -> bool:
    """The standard scalar cleanup bundle, run to a fixpoint."""
    from repro.opt.constant_fold import constant_fold
    from repro.opt.copy_prop import copy_propagate
    from repro.opt.cse import local_cse
    from repro.opt.dce import dead_code_elimination
    from repro.opt.global_const import global_const_prop
    from repro.opt.peephole import peephole
    from repro.opt.simplify_cfg import simplify_cfg

    return run_to_fixpoint(
        func,
        ctx,
        [
            simplify_cfg,
            constant_fold,
            copy_propagate,
            global_const_prop,
            local_cse,
            peephole,
            dead_code_elimination,
        ],
    )


# Names usable with Pipeline configuration.
STANDARD_PASSES = (
    "simplify_cfg",
    "constant_fold",
    "copy_propagate",
    "local_cse",
    "dead_code_elimination",
)
