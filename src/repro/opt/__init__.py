"""Classic scalar and loop optimizations.

The paper embeds memory access coalescing in vpo's existing repertoire of
code improvements; this package is that repertoire: CFG simplification,
constant folding, copy propagation, local CSE, dead code elimination,
strength reduction with linear function test replacement, and loop
unrolling — everything needed to shape naive front-end output into the
canonical pointer-increment loops of Figure 1b.
"""

from repro.opt.pass_manager import PassContext, PassManager, STANDARD_PASSES
from repro.opt.simplify_cfg import simplify_cfg
from repro.opt.constant_fold import constant_fold
from repro.opt.copy_prop import copy_propagate
from repro.opt.cse import local_cse
from repro.opt.dce import dead_code_elimination
from repro.opt.strength_reduction import strength_reduce
from repro.opt.licm import loop_invariant_code_motion
from repro.opt.unroll import UnrollDecision, unroll_counted_loop, unroll_function

__all__ = [
    "PassContext",
    "PassManager",
    "STANDARD_PASSES",
    "UnrollDecision",
    "constant_fold",
    "copy_propagate",
    "dead_code_elimination",
    "local_cse",
    "loop_invariant_code_motion",
    "simplify_cfg",
    "strength_reduce",
    "unroll_counted_loop",
    "unroll_function",
]
