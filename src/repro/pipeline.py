"""End-to-end compilation driver.

``compile_minic`` takes MiniC source through the whole stack::

    front end -> cleanup -> LICM -> strength reduction -> unroll
              -> memory access coalescing -> machine lowering
              -> cleanup -> list scheduling

Four preset configurations reproduce the paper's measurement columns:

=================  ==========================================================
``cc``             the native-compiler proxy: everything except scheduling
``vpo``            the full optimizer, loops unrolled (Table II/III col. 3)
``coalesce-loads`` ``vpo`` + coalescing of loads only (col. 4)
``coalesce-all``   ``vpo`` + coalescing of loads and stores (col. 5)
=================  ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Union

from repro.coalesce import CoalesceReport, coalesce_function
from repro.errors import ReproError
from repro.frontend import compile_source
from repro.ir.function import Module
from repro.ir.verifier import verify_module
from repro.machine import MachineDescription, get_machine, lower_module
from repro.opt import loop_invariant_code_motion, strength_reduce, unroll_function
from repro.opt.pass_manager import PassContext, cleanup
from repro.sched.block_cost import schedule_module
from repro.sim import Simulator


@dataclass
class PipelineConfig:
    """Knobs of the compilation pipeline."""

    name: str = "custom"
    optimize: bool = True
    unroll: bool = True
    unroll_factor: Optional[int] = None
    coalesce: str = "none"           # 'none' | 'loads' | 'all'
    force_coalesce: bool = False
    schedule: bool = True
    verify: bool = True
    # Add the paper's "n % k" preheader check instead of relying on the
    # remainder prologue (mainly for demonstrating Figure 5's exact shape).
    versioned_divisibility: bool = False
    # Rewrite load runs with unaligned wide accesses (Figure 3's
    # UnAlignedWideType): ldq_u pairs + shifts, no alignment check needed.
    # Only effective on machines with unaligned wide loads (the Alpha).
    unaligned_loads: bool = False
    # Bind virtual registers to the machine's register file (linear scan
    # with spilling).  Off by default: the paper's kernels fit 32
    # registers, and virtual registers keep tests allocation-independent.
    regalloc: bool = False

    def __post_init__(self) -> None:
        if self.coalesce not in ("none", "loads", "all"):
            raise ReproError(f"bad coalesce mode {self.coalesce!r}")


PRESETS: Dict[str, PipelineConfig] = {
    "naive": PipelineConfig(
        name="naive", optimize=False, unroll=False, schedule=False
    ),
    "cc": PipelineConfig(name="cc", schedule=False),
    "vpo": PipelineConfig(name="vpo"),
    "coalesce-loads": PipelineConfig(name="coalesce-loads",
                                     coalesce="loads"),
    "coalesce-all": PipelineConfig(name="coalesce-all", coalesce="all"),
}


def get_config(
    config: Union[str, PipelineConfig, None], **overrides
) -> PipelineConfig:
    if config is None:
        config = "vpo"
    if isinstance(config, str):
        try:
            config = PRESETS[config]
        except KeyError:
            raise ReproError(
                f"unknown pipeline preset {config!r}; known: "
                f"{', '.join(sorted(PRESETS))}"
            ) from None
    if overrides:
        config = replace(config, **overrides)
    return config


@dataclass
class CompiledProgram:
    """A lowered, scheduled module plus everything learned on the way."""

    module: Module
    machine: MachineDescription
    config: PipelineConfig
    coalesce_reports: List[CoalesceReport] = field(default_factory=list)

    def simulator(self, **kwargs) -> Simulator:
        return Simulator(self.module, self.machine, **kwargs)

    @property
    def coalesced_loops(self) -> int:
        return sum(1 for r in self.coalesce_reports if r.applied)


def compile_minic(
    source: str,
    machine: Union[str, MachineDescription] = "alpha",
    config: Union[str, PipelineConfig, None] = None,
    **overrides,
) -> CompiledProgram:
    """Compile MiniC ``source`` for ``machine`` under ``config``."""
    if isinstance(machine, str):
        machine = get_machine(machine)
    config = get_config(config, **overrides)

    module = compile_source(source, word_bytes=machine.word_bytes)
    if config.verify:
        verify_module(module)

    ctx = PassContext(machine, verify=config.verify)
    reports: List[CoalesceReport] = []

    for func in module:
        if config.optimize:
            cleanup(func, ctx)
            loop_invariant_code_motion(func, ctx)
            cleanup(func, ctx)
            strength_reduce(func, ctx)
            cleanup(func, ctx)
        if config.unroll:
            unroll_function(func, ctx, factor=config.unroll_factor)
            cleanup(func, ctx)
        if config.coalesce != "none":
            divisibility = None
            if config.versioned_divisibility:
                divisibility = config.unroll_factor or machine.word_bytes
            reports.extend(
                coalesce_function(
                    func,
                    ctx,
                    include_stores=config.coalesce == "all",
                    force=config.force_coalesce,
                    divisibility_factor=divisibility,
                    unaligned_loads=config.unaligned_loads,
                )
            )
            if config.optimize:
                cleanup(func, ctx)

    lower_module(module, machine)
    if config.verify:
        verify_module(module)

    ctx_post = PassContext(machine, verify=config.verify)
    if config.optimize:
        for func in module:
            cleanup(func, ctx_post)
    if config.schedule:
        schedule_module(module, machine)
    if config.regalloc:
        from repro.opt.regalloc import allocate_registers

        for func in module:
            allocate_registers(func, ctx_post)
    if config.verify:
        verify_module(module)

    return CompiledProgram(module, machine, config, reports)


def compile_and_run(
    source: str,
    entry: str,
    args: List[int],
    machine: Union[str, MachineDescription] = "alpha",
    config: Union[str, PipelineConfig, None] = None,
    **overrides,
):
    """One-call convenience: compile, simulate, return (result, report)."""
    program = compile_minic(source, machine, config, **overrides)
    sim = program.simulator()
    result = sim.call(entry, *args)
    return result, sim.report()
