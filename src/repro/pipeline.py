"""End-to-end compilation driver.

``compile_minic`` takes MiniC source through the whole stack::

    front end -> cleanup -> LICM -> strength reduction -> unroll
              -> memory access coalescing -> machine lowering
              -> cleanup -> list scheduling

Four preset configurations reproduce the paper's measurement columns:

=================  ==========================================================
``cc``             the native-compiler proxy: everything except scheduling
``vpo``            the full optimizer, loops unrolled (Table II/III col. 3)
``coalesce-loads`` ``vpo`` + coalescing of loads only (col. 4)
``coalesce-all``   ``vpo`` + coalescing of loads and stores (col. 5)
=================  ==========================================================
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple, Union

from repro.coalesce import CoalesceReport, coalesce_function
from repro.errors import ReproError
from repro.frontend import compile_source
from repro.ir.function import Function, Module
from repro.ir.verifier import verify_module
from repro.machine import MachineDescription, get_machine, lower_module
from repro.opt import loop_invariant_code_motion, strength_reduce, unroll_function
from repro.opt.pass_manager import PassContext, cleanup
from repro.resilience.transaction import (
    PASS_FAILURE_POLICIES,
    PassFailure,
    PassGuard,
)
from repro.sched.block_cost import schedule_module
from repro.sim import Simulator


@dataclass
class PipelineConfig:
    """Knobs of the compilation pipeline."""

    name: str = "custom"
    optimize: bool = True
    unroll: bool = True
    unroll_factor: Optional[int] = None
    coalesce: str = "none"           # 'none' | 'loads' | 'all'
    force_coalesce: bool = False
    # Let the static alias engine discharge Figure 5 run-time checks it
    # can prove (overlap, alignment, divisibility).  Automatically
    # disabled when faults are being injected: the chaos path must
    # exercise the full check chain and the original-loop fallback.
    elide_checks: bool = True
    schedule: bool = True
    verify: bool = True
    # Add the paper's "n % k" preheader check instead of relying on the
    # remainder prologue (mainly for demonstrating Figure 5's exact shape).
    versioned_divisibility: bool = False
    # Rewrite load runs with unaligned wide accesses (Figure 3's
    # UnAlignedWideType): ldq_u pairs + shifts, no alignment check needed.
    # Only effective on machines with unaligned wide loads (the Alpha).
    unaligned_loads: bool = False
    # Bind virtual registers to the machine's register file (linear scan
    # with spilling).  Off by default: the paper's kernels fit 32
    # registers, and virtual registers keep tests allocation-independent.
    regalloc: bool = False
    # Run the sanitizer checkers over the final module; findings land in
    # CompiledProgram.diagnostics instead of raising.
    sanitize: bool = False
    # Differential pass-sanitizer: snapshot each function before every
    # stage, re-execute both versions on auto-generated fixtures, and
    # report the offending stage on any behaviour divergence.  Expensive;
    # off by default.
    differential: bool = False
    # What to do when a pass raises, breaks the IR verifier, or
    # miscompiles (differential mode): 'raise' propagates (legacy),
    # 'skip' rolls the module back to the pre-pass snapshot and keeps
    # going, 'fallback' additionally disables the pass for the rest of
    # the compilation — the compile-time mirror of the paper's Fig. 5
    # run-time fallback loop.
    on_pass_failure: str = "raise"
    # Stage names never run at all (bisection uses this to pin failures).
    disabled_passes: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.coalesce not in ("none", "loads", "all"):
            raise ReproError(f"bad coalesce mode {self.coalesce!r}")
        if self.on_pass_failure not in PASS_FAILURE_POLICIES:
            raise ReproError(
                f"bad on_pass_failure {self.on_pass_failure!r}; known: "
                f"{', '.join(PASS_FAILURE_POLICIES)}"
            )
        if not isinstance(self.disabled_passes, tuple):
            object.__setattr__(  # tolerate lists from JSON manifests
                self, "disabled_passes", tuple(self.disabled_passes)
            )


PRESETS: Dict[str, PipelineConfig] = {
    "naive": PipelineConfig(
        name="naive", optimize=False, unroll=False, schedule=False
    ),
    "cc": PipelineConfig(name="cc", schedule=False),
    "vpo": PipelineConfig(name="vpo"),
    "coalesce-loads": PipelineConfig(name="coalesce-loads",
                                     coalesce="loads"),
    "coalesce-all": PipelineConfig(name="coalesce-all", coalesce="all"),
}


def get_config(
    config: Union[str, PipelineConfig, None], **overrides
) -> PipelineConfig:
    if config is None:
        config = "vpo"
    if isinstance(config, str):
        try:
            config = PRESETS[config]
        except KeyError:
            raise ReproError(
                f"unknown pipeline preset {config!r}; known: "
                f"{', '.join(sorted(PRESETS))}"
            ) from None
    if overrides:
        config = replace(config, **overrides)
    return config


@dataclass
class CompiledProgram:
    """A lowered, scheduled module plus everything learned on the way."""

    module: Module
    machine: MachineDescription
    config: PipelineConfig
    coalesce_reports: List[CoalesceReport] = field(default_factory=list)
    # Sanitizer findings (repro.sanitize.Diagnostic), populated when the
    # config enables sanitize/differential.
    diagnostics: List[object] = field(default_factory=list)
    # pass/stage name -> {"runs", "changed", "seconds"}
    pass_stats: Dict[str, Dict[str, float]] = field(default_factory=dict)
    # True when this program was revived from the compile-session cache
    # (repro.bench.cache) instead of being compiled in this process; its
    # pass_stats then describe the original compilation.
    cache_hit: bool = False
    # Recovered pass failures (repro.resilience.PassFailure), populated
    # when on_pass_failure is 'skip'/'fallback' or faults were injected.
    # Non-empty means the program is correct but less optimized than the
    # configuration asked for.
    pass_failures: List[PassFailure] = field(default_factory=list)

    def simulator(self, **kwargs) -> Simulator:
        return Simulator(self.module, self.machine, **kwargs)

    @property
    def coalesced_loops(self) -> int:
        return sum(1 for r in self.coalesce_reports if r.applied)

    @property
    def checks_elided(self) -> int:
        """Figure 5 run-time checks the alias engine discharged."""
        return sum(
            getattr(r, "checks_elided", 0) for r in self.coalesce_reports
        )

    @property
    def coalesced_by_shape(self) -> Dict[str, int]:
        """Applied runs per access-shape lattice kind (unit/strided/...)."""
        totals: Dict[str, int] = {}
        for report in self.coalesce_reports:
            if not report.applied:
                continue
            for kind, wins in getattr(report, "shape_wins", {}).items():
                totals[kind] = totals.get(kind, 0) + wins
        return totals

    @property
    def degraded(self) -> bool:
        """Did any pass fail and get rolled back during compilation?"""
        return bool(self.pass_failures)

    @property
    def lint_errors(self) -> List[object]:
        return [d for d in self.diagnostics if d.severity == "error"]


def compile_minic(
    source: str,
    machine: Union[str, MachineDescription] = "alpha",
    config: Union[str, PipelineConfig, None] = None,
    faults=None,
    crash_dir: Optional[str] = None,
    cancel=None,
    max_bundles: Optional[int] = None,
    **overrides,
) -> CompiledProgram:
    """Compile MiniC ``source`` for ``machine`` under ``config``.

    ``faults`` is an optional :class:`repro.resilience.FaultPlan`
    (defaulting to ``REPRO_FAULTS`` from the environment) used to
    chaos-test the recovery machinery.  ``crash_dir`` (default
    ``REPRO_CRASH_DIR``) enables reproducer-bundle serialization for
    every recovered pass failure; ``max_bundles`` caps how many bundles
    the directory keeps (default ``REPRO_MAX_BUNDLES`` or 20).

    ``cancel`` is an optional zero-argument callable invoked at every
    stage boundary (a *cancellation point*); raising from it — the
    compile service raises :class:`repro.errors.DeadlineExceeded` —
    aborts the compilation between passes without being mistaken for a
    pass failure.  It is also installed as the fault plan's
    ``cancel_check`` so an injected ``sleep`` stall is cut short.
    """
    if isinstance(machine, str):
        machine = get_machine(machine)
    config = get_config(config, **overrides)
    if faults is None:
        from repro.resilience.faults import FaultPlan

        faults = FaultPlan.from_env()
    if faults is not None and cancel is not None:
        faults.cancel_check = cancel
    if crash_dir is None:
        crash_dir = os.environ.get("REPRO_CRASH_DIR") or None

    if cancel is not None:
        cancel()
    frontend_started = time.perf_counter()
    module = compile_source(source, word_bytes=machine.word_bytes)
    frontend_seconds = time.perf_counter() - frontend_started
    if config.verify:
        verify_module(module)

    sink = None
    sanitizer = None
    if (
        config.sanitize or config.differential
        or config.on_pass_failure != "raise" or faults
    ):
        from repro.sanitize import DiagnosticSink

        sink = DiagnosticSink()
    if config.differential:
        from repro.sanitize.differential import DifferentialSanitizer

        sanitizer = DifferentialSanitizer(module, machine, sink)

    ctx = PassContext(
        machine, verify=config.verify,
        sink=sink, differential=config.differential,
        on_pass_failure=config.on_pass_failure, faults=faults,
    )
    ctx.record_pass("frontend", True, frontend_seconds)
    reports: List[CoalesceReport] = []

    guard = PassGuard(
        module, machine,
        policy=config.on_pass_failure,
        faults=faults,
        sink=sink,
        sanitizer=sanitizer,
        source=source,
        config=config,
        crash_dir=crash_dir,
        disabled=config.disabled_passes,
        verify=config.verify,
        max_bundles=max_bundles,
    )

    def stage(func: Function, name: str, thunk) -> object:
        """Run one per-function stage as a guarded transaction.

        The ``cancel`` probe runs *outside* the guard: a deadline abort
        must propagate, never be rolled back as a pass failure.
        """
        if cancel is not None:
            cancel()
        result = guard.stage(ctx, name, thunk, func=func)
        # A stage that touched the function (or whose outcome is unknown
        # after a rollback) retires its cached dataflow; the passes inside
        # run_to_fixpoint already invalidate at pass granularity.
        if result is not False:
            ctx.analyses.invalidate(func)
        return result

    def module_stage(name: str, thunk) -> None:
        if cancel is not None:
            cancel()
        guard.stage(ctx, name, thunk)
        ctx.analyses.clear()

    for func in module:
        if config.optimize:
            stage(func, "cleanup", lambda: cleanup(func, ctx))
            stage(func, "licm",
                  lambda: loop_invariant_code_motion(func, ctx))
            stage(func, "cleanup", lambda: cleanup(func, ctx))
            stage(func, "strength_reduce",
                  lambda: strength_reduce(func, ctx))
            stage(func, "cleanup", lambda: cleanup(func, ctx))
        if config.unroll:
            stage(func, "unroll", lambda: unroll_function(
                func, ctx, factor=config.unroll_factor))
            stage(func, "cleanup", lambda: cleanup(func, ctx))
        if config.sanitize or config.differential:
            # Tag loads/stores with their resolved root objects while the
            # IR is still analyzable (pre-lowering); the differential
            # alias-consistency checker validates the claims later.
            from repro.analysis.alias import annotate_memory_roots

            annotate_memory_roots(func, ctx.analyses.memdep(func))
        if config.coalesce != "none":
            divisibility = None
            if config.versioned_divisibility:
                divisibility = config.unroll_factor or machine.word_bytes
            reports.extend(
                stage(func, "coalesce", lambda: coalesce_function(
                    func,
                    ctx,
                    include_stores=config.coalesce == "all",
                    force=config.force_coalesce,
                    divisibility_factor=divisibility,
                    unaligned_loads=config.unaligned_loads,
                    elide_checks=config.elide_checks and not faults,
                )) or []
            )
            if config.optimize:
                stage(func, "cleanup", lambda: cleanup(func, ctx))

    module_stage("lower", lambda: lower_module(module, machine))
    if config.verify:
        verify_module(module)

    if config.optimize:
        for func in module:
            stage(func, "cleanup", lambda: cleanup(func, ctx))
    if config.schedule:
        module_stage("schedule",
                     lambda: schedule_module(module, machine))
    if config.regalloc:
        from repro.opt.regalloc import allocate_registers

        for func in module:
            stage(func, "regalloc",
                  lambda: allocate_registers(func, ctx))
    if config.verify:
        verify_module(module)

    if config.sanitize:
        from repro.sanitize import lint_module

        lint_module(module, machine, sink=sink)

    return CompiledProgram(
        module, machine, config, reports,
        diagnostics=list(sink) if sink is not None else [],
        pass_stats=dict(ctx.stats),
        pass_failures=list(guard.failures),
    )


def compile_and_run(
    source: str,
    entry: str,
    args: List[int],
    machine: Union[str, MachineDescription] = "alpha",
    config: Union[str, PipelineConfig, None] = None,
    sim_backend: Optional[str] = None,
    **overrides,
):
    """One-call convenience: compile, simulate, return (result, report).

    ``sim_backend`` picks the simulator backend (``interp`` or
    ``compiled``); None defers to ``REPRO_SIM_BACKEND``.
    """
    program = compile_minic(source, machine, config, **overrides)
    sim = program.simulator(backend=sim_backend)
    result = sim.call(entry, *args)
    return result, sim.report()
