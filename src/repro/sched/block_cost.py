"""Static per-block cycle costs.

Two cost views exist on purpose:

* :func:`block_cycles` — an **in-order issue model** of the block *as laid
  out*: instructions issue in program order, stalling on operand latency,
  the issue width, and the memory port's initiation interval.  This is
  what the simulator charges per block execution, so instruction order
  matters — which is precisely the difference between the ``cc`` (no
  scheduling) and ``vpo`` (scheduled) measurement columns.
* :func:`repro.sched.list_scheduler.list_schedule` — the scheduler's own
  best-case estimate, used by the coalescer's profitability analysis
  (Figure 3) and by :func:`schedule_function` to reorder code.

A scheduled block's in-order cost approaches its list-schedule estimate,
keeping the profitability prediction consistent with the measurement.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.ir.function import Function, Module
from repro.machine.machine import MachineDescription, classify_instr
from repro.sched.list_scheduler import apply_schedule, list_schedule

_MEMORY_CLASSES = frozenset({"load", "store"})


def block_cycles(block, machine: MachineDescription) -> int:
    """In-order cycles for one pass through ``block``, all cache hits."""
    latency_of = machine.latency
    if not machine.pipelined:
        total = sum(latency_of(i) for i in block.instrs)
        return max(total, 1)

    ready: Dict[int, int] = {}
    cycle = 0
    issued_this_cycle = 0
    port_free = 0
    for instr in block.body:
        earliest = 0
        for reg in instr.uses():
            earliest = max(earliest, ready.get(reg.index, 0))
        is_memory = classify_instr(instr) in _MEMORY_CLASSES
        while True:
            if earliest > cycle:
                cycle = earliest
                issued_this_cycle = 0
            if issued_this_cycle >= machine.issue_width:
                cycle += 1
                issued_this_cycle = 0
                continue
            if is_memory and port_free > cycle:
                cycle = port_free
                issued_this_cycle = 0
                continue
            break
        issued_this_cycle += 1
        if is_memory:
            port_free = cycle + machine.memory_interval
        for reg in instr.defs():
            ready[reg.index] = cycle + latency_of(instr)

    if block.instrs and block.instrs[-1].is_terminator:
        term = block.instrs[-1]
        earliest = cycle + 1
        for reg in term.uses():
            earliest = max(earliest, ready.get(reg.index, 0))
        return max(earliest + latency_of(term), 1)
    return max(cycle + 1, 1)


def function_cycles(
    func: Function, machine: MachineDescription
) -> Dict[str, int]:
    """Static cycles of every block of ``func``."""
    return {b.label: block_cycles(b, machine) for b in func.blocks}


def module_block_cycles(
    module: Module, machine: MachineDescription
) -> Dict[Tuple[str, str], int]:
    """Static cycles of every block in ``module``."""
    table: Dict[Tuple[str, str], int] = {}
    for func in module:
        for block in func.blocks:
            table[(func.name, block.label)] = block_cycles(block, machine)
    return table


def schedule_function(func: Function, machine: MachineDescription) -> None:
    """Reorder every block of ``func`` into list-scheduled order."""
    for block in func.blocks:
        apply_schedule(block, machine)


def schedule_module(module: Module, machine: MachineDescription) -> None:
    """Reorder every block of every function of ``module``."""
    for func in module:
        schedule_function(func, machine)
