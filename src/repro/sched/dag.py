"""Dependence DAG construction over one basic block.

Edges encode every constraint a scheduler must respect:

* register RAW / WAR / WAW dependences;
* memory ordering: two memory operations conflict unless we can prove they
  are disjoint.  Disjointness is proved exactly the way the paper's hazard
  analysis reasons (``FindBaseAndDisplacementOfAddress``): both accesses
  use the *same base register value* (same register, no redefinition in
  between — tracked here with per-register version numbers) and their
  ``[disp, disp+width)`` ranges do not overlap.  Loads never conflict with
  loads.
* calls are barriers for memory and for register state across the call.

The terminator is excluded; it always issues last.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.ir.function import BasicBlock
from repro.ir.rtl import Call, Instr, Load, Store


class DependenceDAG:
    """Nodes are body-instruction indices; edges carry latency weights."""

    def __init__(self, instrs: List[Instr]):
        self.instrs = instrs
        self.succs: List[Dict[int, int]] = [dict() for _ in instrs]
        self.preds: List[Dict[int, int]] = [dict() for _ in instrs]

    def add_edge(self, src: int, dst: int, latency: int) -> None:
        if src == dst:
            return
        current = self.succs[src].get(dst, -1)
        if latency > current:
            self.succs[src][dst] = latency
            self.preds[dst][src] = latency

    def roots(self) -> List[int]:
        return [i for i in range(len(self.instrs)) if not self.preds[i]]

    def critical_heights(self, latency_of) -> List[int]:
        """Longest path (in cycles) from each node to any leaf."""
        heights = [0] * len(self.instrs)
        for index in range(len(self.instrs) - 1, -1, -1):
            own = latency_of(self.instrs[index])
            best = own
            for succ, edge_latency in self.succs[index].items():
                best = max(best, edge_latency + heights[succ])
            heights[index] = best
        return heights


def _mem_key(
    instr: Instr, versions: Dict[int, int]
) -> Optional[Tuple[int, int, int, int, bool]]:
    """(base reg, base version, disp, width, unaligned) for a memory op."""
    if isinstance(instr, Load):
        base = instr.base
        return (
            base.index,
            versions.get(base.index, 0),
            instr.disp,
            instr.width,
            instr.unaligned,
        )
    if isinstance(instr, Store):
        base = instr.base
        return (
            base.index,
            versions.get(base.index, 0),
            instr.disp,
            instr.width,
            instr.unaligned,
        )
    return None


def _may_conflict(
    a: Optional[Tuple[int, int, int, int, bool]],
    b: Optional[Tuple[int, int, int, int, bool]],
) -> bool:
    """Whether two memory operations might touch overlapping bytes."""
    if a is None or b is None:
        return True  # a call: conservatively conflicts with everything
    base_a, ver_a, disp_a, width_a, unaligned_a = a
    base_b, ver_b, disp_b, width_b, unaligned_b = b
    if (base_a, ver_a) != (base_b, ver_b):
        return True  # different base values: cannot disambiguate
    if unaligned_a or unaligned_b:
        # An unaligned access touches the whole containing word; widen both
        # ranges to word granularity to stay conservative.
        return True
    return not (disp_a + width_a <= disp_b or disp_b + width_b <= disp_a)


def build_dag(block: BasicBlock, latency_of) -> DependenceDAG:
    """Build the dependence DAG for ``block``'s body.

    ``latency_of(instr)`` supplies edge weights: a RAW edge from a producer
    carries the producer's latency; WAR/WAW/memory-order edges carry 1
    (issue order only).
    """
    body = block.body
    dag = DependenceDAG(body)

    last_def: Dict[int, int] = {}
    uses_since_def: Dict[int, List[int]] = {}
    versions: Dict[int, int] = {}
    mem_ops: List[Tuple[int, Optional[Tuple[int, int, int, int, bool]], bool]] = []

    for index, instr in enumerate(body):
        # Register dependences.
        for reg in instr.uses():
            if reg.index in last_def:
                producer = last_def[reg.index]
                dag.add_edge(producer, index, latency_of(body[producer]))
            uses_since_def.setdefault(reg.index, []).append(index)
        for reg in instr.defs():
            if reg.index in last_def:
                dag.add_edge(last_def[reg.index], index, 1)  # WAW
            for user in uses_since_def.get(reg.index, []):
                dag.add_edge(user, index, 1)  # WAR
            last_def[reg.index] = index
            uses_since_def[reg.index] = []
            versions[reg.index] = versions.get(reg.index, 0) + 1

        # Memory / call ordering.
        is_call = isinstance(instr, Call)
        is_store = isinstance(instr, Store) or is_call
        is_mem = instr.is_memory or is_call
        if is_mem:
            key = None if is_call else _mem_key(instr, versions)
            for prior_index, prior_key, prior_is_store in mem_ops:
                if not (is_store or prior_is_store):
                    continue  # load-load pairs always commute
                if _may_conflict(prior_key, key):
                    # A load following a conflicting store waits for the
                    # store to complete; other orderings are issue-order
                    # constraints only.
                    if prior_is_store and not is_store:
                        weight = latency_of(body[prior_index])
                    else:
                        weight = 1
                    dag.add_edge(prior_index, index, weight)
            mem_ops.append((index, key, is_store))
    return dag
