"""Latency-driven list scheduling.

The scheduler issues up to ``machine.issue_width`` instructions per cycle,
with at most one memory operation per cycle (a single memory port — true of
all three evaluation machines).  Ready instructions are prioritized by
critical-path height, the classic heuristic.

Two entry points:

* :func:`list_schedule` — compute a schedule and its length in cycles
  without touching the block (used by the paper's profitability analysis,
  Figure 3, ``Schedule(LOOP)`` / ``Schedule(LCOPY)``);
* :func:`apply_schedule` — reorder the block body to the schedule order
  (used by the optimization pipeline's scheduling pass).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.ir.function import BasicBlock
from repro.ir.rtl import Instr
from repro.machine.machine import MachineDescription, classify_instr
from repro.sched.dag import build_dag

_MEMORY_CLASSES = frozenset({"load", "store"})


@dataclass
class ScheduleResult:
    """Outcome of scheduling one block body."""

    order: List[int]        # body indices in issue order
    issue_cycle: List[int]  # cycle each body instruction issues at
    cycles: int             # total cycles including the terminator


def list_schedule(
    block: BasicBlock, machine: MachineDescription
) -> ScheduleResult:
    """Schedule ``block``'s body for ``machine``; the block is not modified."""
    body = block.body
    latency_of = machine.latency

    if not machine.pipelined:
        # Non-pipelined machine: nothing overlaps, order is irrelevant to
        # cost; every instruction occupies the machine for its latency.
        issue_cycles: List[int] = []
        cycle = 0
        for instr in body:
            issue_cycles.append(cycle)
            cycle += latency_of(instr)
        if block.instrs and block.instrs[-1].is_terminator:
            cycle += latency_of(block.instrs[-1])
        return ScheduleResult(
            list(range(len(body))), issue_cycles, max(cycle, 1)
        )
    dag = build_dag(block, latency_of)
    heights = dag.critical_heights(latency_of)

    count = len(body)
    remaining_preds = [len(dag.preds[i]) for i in range(count)]
    earliest = [0] * count
    issue_cycle = [-1] * count
    ready = [i for i in range(count) if remaining_preds[i] == 0]
    order: List[int] = []

    cycle = 0
    scheduled = 0
    port_free = 0
    while scheduled < count:
        issued_this_cycle = 0
        memory_used = False
        # Highest critical path first; stable tie-break on program order.
        ready.sort(key=lambda i: (-heights[i], i))
        index = 0
        while index < len(ready) and issued_this_cycle < machine.issue_width:
            node = ready[index]
            if earliest[node] > cycle:
                index += 1
                continue
            is_memory = classify_instr(body[node]) in _MEMORY_CLASSES
            if is_memory and (memory_used or port_free > cycle):
                index += 1
                continue
            # Issue it.
            ready.pop(index)
            issue_cycle[node] = cycle
            order.append(node)
            scheduled += 1
            issued_this_cycle += 1
            if is_memory:
                memory_used = True
                port_free = cycle + machine.memory_interval
            for succ, edge_latency in dag.succs[node].items():
                earliest[succ] = max(
                    earliest[succ], cycle + edge_latency
                )
                remaining_preds[succ] -= 1
                if remaining_preds[succ] == 0:
                    ready.append(succ)
        cycle += 1

    # Completion: last issue cycle is (cycle - 1); results the terminator
    # consumes must be available when it issues.
    finish = cycle - 1 if count else 0
    term_earliest = finish + 1 if count else 0
    if block.instrs and block.instrs[-1].is_terminator:
        term = block.instrs[-1]
        term_uses = {r.index for r in term.uses()}
        for node in range(count):
            if any(r.index in term_uses for r in body[node].defs()):
                term_earliest = max(
                    term_earliest,
                    issue_cycle[node] + latency_of(body[node]),
                )
        total = term_earliest + latency_of(term)
    else:
        total = term_earliest
    return ScheduleResult(order, issue_cycle, max(total, 1))


def apply_schedule(block: BasicBlock, machine: MachineDescription) -> int:
    """Reorder ``block``'s body into scheduled order; returns the cycles."""
    result = list_schedule(block, machine)
    body = block.body
    new_body = [body[i] for i in result.order]
    if block.instrs and block.instrs[-1].is_terminator:
        block.instrs = new_body + [block.instrs[-1]]
    else:
        block.instrs = new_body
    return result.cycles
