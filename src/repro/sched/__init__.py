"""Instruction scheduling.

The paper's profitability analysis (Figure 3) *schedules* the original and
the coalesced loop and keeps the coalesced version only if its schedule is
shorter.  This package provides that scheduler: a per-basic-block
dependence DAG (:mod:`repro.sched.dag`) and a latency-driven list scheduler
(:mod:`repro.sched.list_scheduler`).  The block cost model used by the
simulator (:mod:`repro.sched.block_cost`) is the same machinery, so the
profitability estimate and the measured cycles agree by construction —
mirroring how vpo's scheduler both orders the code and defines the cost.
"""

from repro.sched.dag import DependenceDAG, build_dag
from repro.sched.list_scheduler import ScheduleResult, list_schedule
from repro.sched.block_cost import block_cycles, function_cycles, schedule_function

__all__ = [
    "DependenceDAG",
    "ScheduleResult",
    "block_cycles",
    "build_dag",
    "function_cycles",
    "list_schedule",
    "schedule_function",
]
