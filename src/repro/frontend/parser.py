"""Recursive-descent parser for MiniC."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import ParseError
from repro.frontend import cast as ast
from repro.frontend.lexer import Token, tokenize

_TYPE_KEYWORDS = frozenset(
    {"void", "char", "short", "int", "long", "unsigned", "signed"}
)

# Binary operator precedence, higher binds tighter.
_BINARY_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_ASSIGN_OPS = {
    "=": "", "+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%",
    "&=": "&", "|=": "|", "^=": "^", "<<=": "<<", ">>=": ">>",
}


class Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing ------------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, ahead: int = 1) -> Token:
        index = min(self.pos + ahead, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.current
        if token.kind != "eof":
            self.pos += 1
        return token

    def _error(self, message: str, token: Optional[Token] = None) -> ParseError:
        token = token or self.current
        return ParseError(message, token.line, token.column)

    def expect_op(self, op: str) -> Token:
        if not self.current.is_op(op):
            raise self._error(f"expected {op!r}, found {self.current.text!r}")
        return self.advance()

    def accept_op(self, op: str) -> bool:
        if self.current.is_op(op):
            self.advance()
            return True
        return False

    # -- types -----------------------------------------------------------------
    def at_type(self) -> bool:
        return self.current.kind == "keyword" and (
            self.current.text in _TYPE_KEYWORDS
        )

    def parse_base_type(self) -> ast.CType:
        """Parse a type-specifier sequence like ``unsigned short``."""
        signedness: Optional[bool] = None
        rank: Optional[str] = None
        saw_void = False
        start = self.current
        while self.at_type():
            word = self.advance().text
            if word == "void":
                saw_void = True
            elif word == "unsigned":
                signedness = False
            elif word == "signed":
                signedness = True
            else:
                if rank is not None:
                    raise self._error(
                        f"conflicting type specifiers {rank!r} and {word!r}",
                        start,
                    )
                rank = word
        if saw_void:
            if rank is not None or signedness is not None:
                raise self._error("void cannot be qualified", start)
            return ast.VoidType()
        if rank is None:
            rank = "int"  # bare 'unsigned' / 'signed'
        return ast.IntType(rank, signed=signedness is not False)

    def parse_pointers(self, base: ast.CType) -> ast.CType:
        ctype = base
        while self.accept_op("*"):
            ctype = ast.PointerType(ctype)
        return ctype

    # -- top level ----------------------------------------------------------------
    def parse_program(self) -> ast.Program:
        decls: List[ast.Node] = []
        while self.current.kind != "eof":
            decls.append(self.parse_top_level())
        return ast.Program(decls)

    def parse_top_level(self) -> ast.Node:
        if not self.at_type():
            raise self._error(
                f"expected a declaration, found {self.current.text!r}"
            )
        line = self.current.line
        base = self.parse_base_type()
        ctype = self.parse_pointers(base)
        name_token = self.advance()
        if name_token.kind != "ident":
            raise self._error("expected a name", name_token)
        if self.current.is_op("("):
            return self.parse_function(ctype, name_token.text, line)
        ctype = self.parse_array_suffix(ctype)
        init = None
        if self.accept_op("="):
            init = self.parse_assignment()
        self.expect_op(";")
        return ast.VarDecl(ctype, name_token.text, init, line)

    def parse_array_suffix(self, ctype: ast.CType) -> ast.CType:
        sizes: List[int] = []
        while self.accept_op("["):
            size_token = self.advance()
            if size_token.kind != "number":
                raise self._error(
                    "array sizes must be integer literals", size_token
                )
            sizes.append(int(size_token.text.rstrip("uUlL"), 0))
            self.expect_op("]")
        for size in reversed(sizes):
            ctype = ast.ArrayType(ctype, size)
        return ctype

    def parse_function(
        self, ret_type: ast.CType, name: str, line: int
    ) -> ast.FuncDef:
        self.expect_op("(")
        params: List[ast.Param] = []
        if not self.current.is_op(")"):
            if self.current.is_keyword("void") and self.peek().is_op(")"):
                self.advance()
            else:
                while True:
                    if not self.at_type():
                        raise self._error("expected a parameter type")
                    param_line = self.current.line
                    base = self.parse_base_type()
                    ptype = self.parse_pointers(base)
                    pname_token = self.advance()
                    if pname_token.kind != "ident":
                        raise self._error(
                            "expected a parameter name", pname_token
                        )
                    # Array parameters decay to pointers, as in C.  Only
                    # the outermost dimension decays: ``m[][64]`` is a
                    # pointer to rows of 64 elements, so row arithmetic
                    # scales by the full row size.
                    if self.accept_op("["):
                        if self.current.kind == "number":
                            self.advance()
                        self.expect_op("]")
                        ptype = ast.PointerType(
                            self.parse_array_suffix(ptype)
                        )
                    params.append(
                        ast.Param(ptype, pname_token.text, param_line)
                    )
                    if not self.accept_op(","):
                        break
        self.expect_op(")")
        body = self.parse_block()
        return ast.FuncDef(ret_type, name, params, body, line)

    # -- statements ------------------------------------------------------------------
    def parse_block(self) -> ast.Block:
        line = self.current.line
        self.expect_op("{")
        stmts: List[ast.Stmt] = []
        while not self.current.is_op("}"):
            if self.current.kind == "eof":
                raise self._error("unterminated block")
            stmts.append(self.parse_statement())
        self.expect_op("}")
        return ast.Block(stmts, line)

    def parse_statement(self) -> ast.Stmt:
        token = self.current
        if token.is_op("{"):
            return self.parse_block()
        if self.at_type():
            return self.parse_local_decl()
        if token.is_keyword("if"):
            return self.parse_if()
        if token.is_keyword("while"):
            return self.parse_while()
        if token.is_keyword("do"):
            return self.parse_do_while()
        if token.is_keyword("for"):
            return self.parse_for()
        if token.is_keyword("return"):
            self.advance()
            value = None
            if not self.current.is_op(";"):
                value = self.parse_expression()
            self.expect_op(";")
            return ast.Return(value, token.line)
        if token.is_keyword("break"):
            self.advance()
            self.expect_op(";")
            return ast.Break(token.line)
        if token.is_keyword("continue"):
            self.advance()
            self.expect_op(";")
            return ast.Continue(token.line)
        if token.is_op(";"):
            self.advance()
            return ast.Block([], token.line)
        expr = self.parse_expression()
        self.expect_op(";")
        return ast.ExprStmt(expr, token.line)

    def parse_local_decl(self) -> ast.Stmt:
        line = self.current.line
        base = self.parse_base_type()
        decls: List[ast.Stmt] = []
        while True:
            ctype = self.parse_pointers(base)
            name_token = self.advance()
            if name_token.kind != "ident":
                raise self._error("expected a variable name", name_token)
            ctype = self.parse_array_suffix(ctype)
            init = None
            if self.accept_op("="):
                init = self.parse_assignment()
            decls.append(ast.VarDecl(ctype, name_token.text, init, line))
            if not self.accept_op(","):
                break
        self.expect_op(";")
        if len(decls) == 1:
            return decls[0]
        return ast.DeclGroup(decls, line)

    def parse_if(self) -> ast.If:
        line = self.advance().line  # 'if'
        self.expect_op("(")
        cond = self.parse_expression()
        self.expect_op(")")
        then = self.parse_statement()
        other = None
        if self.current.is_keyword("else"):
            self.advance()
            other = self.parse_statement()
        return ast.If(cond, then, other, line)

    def parse_while(self) -> ast.While:
        line = self.advance().line  # 'while'
        self.expect_op("(")
        cond = self.parse_expression()
        self.expect_op(")")
        body = self.parse_statement()
        return ast.While(cond, body, line)

    def parse_do_while(self) -> ast.DoWhile:
        line = self.advance().line  # 'do'
        body = self.parse_statement()
        if not self.current.is_keyword("while"):
            raise self._error("expected 'while' after do-body")
        self.advance()
        self.expect_op("(")
        cond = self.parse_expression()
        self.expect_op(")")
        self.expect_op(";")
        return ast.DoWhile(body, cond, line)

    def parse_for(self) -> ast.For:
        line = self.advance().line  # 'for'
        self.expect_op("(")
        init: Optional[ast.Stmt] = None
        if not self.current.is_op(";"):
            if self.at_type():
                init = self.parse_local_decl()
            else:
                init = ast.ExprStmt(self.parse_expression(), line)
                self.expect_op(";")
        else:
            self.advance()
        cond = None
        if not self.current.is_op(";"):
            cond = self.parse_expression()
        self.expect_op(";")
        step = None
        if not self.current.is_op(")"):
            step = self.parse_expression()
        self.expect_op(")")
        body = self.parse_statement()
        return ast.For(init, cond, step, body, line)

    # -- expressions ---------------------------------------------------------------------
    def parse_expression(self) -> ast.Expr:
        return self.parse_assignment()

    def parse_assignment(self) -> ast.Expr:
        left = self.parse_conditional()
        token = self.current
        if token.kind == "op" and token.text in _ASSIGN_OPS:
            self.advance()
            value = self.parse_assignment()  # right associative
            return ast.Assign(_ASSIGN_OPS[token.text], left, value, token.line)
        return left

    def parse_conditional(self) -> ast.Expr:
        cond = self.parse_binary(1)
        if self.current.is_op("?"):
            line = self.advance().line
            then = self.parse_expression()
            self.expect_op(":")
            other = self.parse_conditional()
            return ast.Conditional(cond, then, other, line)
        return cond

    def parse_binary(self, min_precedence: int) -> ast.Expr:
        left = self.parse_unary()
        while True:
            token = self.current
            precedence = (
                _BINARY_PRECEDENCE.get(token.text)
                if token.kind == "op"
                else None
            )
            if precedence is None or precedence < min_precedence:
                return left
            self.advance()
            right = self.parse_binary(precedence + 1)
            left = ast.Binary(token.text, left, right, token.line)

    def parse_unary(self) -> ast.Expr:
        token = self.current
        if token.is_op("-", "~", "!", "*", "&"):
            self.advance()
            return ast.Unary(token.text, self.parse_unary(), token.line)
        if token.is_op("+"):
            self.advance()
            return self.parse_unary()
        if token.is_op("++", "--"):
            self.advance()
            return ast.IncDec(
                token.text, self.parse_unary(), True, token.line
            )
        if token.is_keyword("sizeof"):
            self.advance()
            self.expect_op("(")
            if not self.at_type():
                raise self._error("sizeof expects a type")
            base = self.parse_base_type()
            ctype = self.parse_pointers(base)
            self.expect_op(")")
            return ast.SizeOf(ctype, token.line)
        if token.is_op("(") and self._starts_cast():
            self.advance()
            base = self.parse_base_type()
            ctype = self.parse_pointers(base)
            self.expect_op(")")
            return ast.Cast(ctype, self.parse_unary(), token.line)
        return self.parse_postfix()

    def _starts_cast(self) -> bool:
        """True when ``(`` begins a cast: next token is a type keyword."""
        next_token = self.peek()
        return next_token.kind == "keyword" and (
            next_token.text in _TYPE_KEYWORDS
        )

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while True:
            token = self.current
            if token.is_op("["):
                self.advance()
                index = self.parse_expression()
                self.expect_op("]")
                expr = ast.Index(expr, index, token.line)
            elif token.is_op("++", "--"):
                self.advance()
                expr = ast.IncDec(token.text, expr, False, token.line)
            else:
                return expr

    def parse_primary(self) -> ast.Expr:
        token = self.current
        if token.kind == "number":
            self.advance()
            return ast.IntLit(int(token.text.rstrip("uUlL"), 0), token.line)
        if token.kind == "ident":
            self.advance()
            if self.current.is_op("("):
                self.advance()
                args: List[ast.Expr] = []
                if not self.current.is_op(")"):
                    while True:
                        args.append(self.parse_assignment())
                        if not self.accept_op(","):
                            break
                self.expect_op(")")
                return ast.CallExpr(token.text, args, token.line)
            return ast.Ident(token.text, token.line)
        if token.is_op("("):
            self.advance()
            expr = self.parse_expression()
            self.expect_op(")")
            return expr
        raise self._error(f"unexpected token {token.text!r}")


def parse(source: str) -> ast.Program:
    """Parse MiniC ``source`` into an AST."""
    return Parser(tokenize(source)).parse_program()
